//! No-op derive macros standing in for `serde_derive` (offline build).
//!
//! The real derives generate (de)serialisation visitors; the paired `serde`
//! stand-in blanket-implements its marker traits instead, so these derives
//! only need to *accept* the syntax — including `#[serde(...)]` helper
//! attributes — and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
