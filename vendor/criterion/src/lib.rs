//! A minimal wall-clock benchmark harness standing in for `criterion`
//! (offline build).
//!
//! Exposes the subset of the criterion API the BDPS benches use —
//! [`Criterion`], [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and reports the median
//! time per iteration to stdout. There is no statistical analysis, HTML
//! report or regression detection; numbers are indicative only.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// How batched inputs are sized; accepted for API compatibility, ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Identifies one benchmark within a group, e.g. `EB/256`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures and measures their wall-clock time.
pub struct Bencher {
    /// Median nanoseconds per iteration of the last measurement.
    last_ns: f64,
    samples: usize,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            last_ns: 0.0,
            samples,
        }
    }

    /// Measures `routine` repeatedly and records the median time per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed().as_nanos() as f64);
        }
        self.last_ns = median(&mut times);
    }

    /// Measures `routine` on fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed().as_nanos() as f64);
        }
        self.last_ns = median(&mut times);
    }
}

fn median(times: &mut [f64]) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.samples = n.max(3);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 15 }
    }
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        println!(
            "{name:<50} {:>12}/iter (median of {})",
            format_ns(bencher.last_ns),
            self.samples
        );
    }
}

/// Declares a function running the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_formats() {
        let mut c = Criterion::default();
        c.benchmark_group("g")
            .sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut b = Bencher::new(3);
        b.iter_batched(|| 21, |x| x * 2, BatchSize::SmallInput);
        assert!(b.last_ns >= 0.0);
        assert_eq!(BenchmarkId::new("EB", 256).to_string(), "EB/256");
        assert_eq!(BenchmarkId::from_parameter("FIFO").to_string(), "FIFO");
        assert_eq!(format_ns(1_500.0), "1.500 µs");
    }
}
