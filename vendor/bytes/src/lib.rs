//! A reference-counted byte buffer standing in for the `bytes` crate
//! (offline build). Covers the subset of the API BDPS uses: construction,
//! cheap cloning, length queries and slice access.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Creates a buffer by copying a static slice.
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes {
            data: Arc::from(v.as_bytes()),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from("ab").as_slice(), b"ab");
    }
}
