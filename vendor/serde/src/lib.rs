//! Marker traits standing in for `serde` (offline build).
//!
//! Nothing in the BDPS workspace serialises at runtime today; the derives on
//! config and record types document *intent* and keep the door open for a
//! real backend. Blanket implementations make every type satisfy the traits
//! so generic bounds written against real serde keep compiling.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
