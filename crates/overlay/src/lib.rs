//! # bdps-overlay
//!
//! The broker overlay network of BDPS: the graph of brokers and links, the
//! topology generators used by the paper's evaluation, single-path routing by
//! minimum mean path transmission rate, per-path statistics, and the
//! subscription table each broker keeps (paper §3.1, §3.3, §4.2).
//!
//! * [`graph`] — the overlay graph: brokers, directed links, publisher and
//!   subscriber attachment, validation;
//! * [`topology`] — generators: the paper's 32-broker layered mesh (Fig. 3),
//!   the acyclic tree of Fig. 1(a), random meshes, lines and stars;
//! * [`pathstats`] — per-path `(NN_p, μ_p, σ_p²)` statistics (§4.2);
//! * [`routing`] — destination-rooted Dijkstra over mean link rates, giving
//!   every broker a consistent next hop and path statistics per destination;
//! * [`subtable`] — construction of each broker's subscription table
//!   `{(subscriber, filter, dl, pr, nb, NN_p, μ_p, σ_p²)}`;
//! * [`sparse`] — the sparse covering-aggregated table layout
//!   ([`TableLayout`], [`SparseTable`], the shared [`SharedPopulation`]
//!   registry and the layout-agnostic [`BrokerTable`]): per-broker state
//!   sublinear in the global population, pinned bit-identical to the dense
//!   oracle;
//! * [`multipath`] — a link-disjoint multi-path extension used as a baseline
//!   (the DCP-style "send over all paths" alternative the paper contrasts
//!   with).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod multipath;
pub mod pathstats;
pub mod routing;
pub mod sparse;
pub mod subtable;
pub mod topology;

pub use graph::{BrokerNode, OverlayGraph};
pub use pathstats::PathStats;
pub use routing::{RouteDelta, RouteEntry, Routing};
pub use sparse::{
    AggregateEntry, BrokerTable, PopulationHandle, QosEnvelope, ResolvedEntry, SharedPopulation,
    SparseTable, TableLayout,
};
pub use subtable::{RetargetOutcome, SubTableEntry, SubscriptionTable};
pub use topology::{LayeredMeshConfig, Topology};

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::graph::{BrokerNode, OverlayGraph};
    pub use crate::pathstats::PathStats;
    pub use crate::routing::{RouteDelta, RouteEntry, Routing};
    pub use crate::sparse::{
        BrokerTable, PopulationHandle, QosEnvelope, ResolvedEntry, SharedPopulation, SparseTable,
        TableLayout,
    };
    pub use crate::subtable::{RetargetOutcome, SubTableEntry, SubscriptionTable};
    pub use crate::topology::{LayeredMeshConfig, Topology};
}
