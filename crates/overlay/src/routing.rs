//! Single-path routing over the overlay.
//!
//! The paper uses single-path routing where "the criterion for path selection
//! is to minimize the mean value of the transmission rate of the path"
//! (§3.3). We compute, for every *destination* broker, a shortest-path tree
//! over the reversed graph with Dijkstra's algorithm, using each link's mean
//! per-KB rate as its weight. Rooting the computation at the destination
//! guarantees that the per-broker next hops are mutually consistent: the path
//! a message actually follows hop by hop is exactly the path whose statistics
//! each broker advertises.

use crate::graph::OverlayGraph;
use crate::pathstats::PathStats;
use bdps_types::error::{BdpsError, Result};
use bdps_types::id::{BrokerId, LinkId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The routing decision of one broker for one destination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// The neighbour to forward to (the paper's `nb`).
    pub next_hop: BrokerId,
    /// The outgoing link towards that neighbour.
    pub next_link: LinkId,
    /// Statistics of the whole remaining path to the destination.
    pub stats: PathStats,
}

/// All-pairs single-path routes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Routing {
    /// `table[dest][source]` — the route entry at `source` towards `dest`
    /// (`None` when `source == dest` or `dest` is unreachable from `source`).
    table: Vec<Vec<Option<RouteEntry>>>,
    broker_count: usize,
}

/// The outcome of an incremental routing update
/// ([`Routing::update_for_link_change`]): which `(source, destination)`
/// pairs' route entries changed — next hop, next link *or* path statistics —
/// so subscription tables can be patched instead of rebuilt.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouteDelta {
    /// `per_source[source]` — destinations whose route from `source`
    /// changed, in ascending destination order.
    per_source: Vec<Vec<BrokerId>>,
    /// Every destination that appears in at least one changed pair.
    changed_dests: Vec<BrokerId>,
    /// Total number of changed `(source, destination)` pairs.
    changed_pairs: usize,
    /// Destinations whose shortest-path tree was recomputed (a superset of
    /// [`changed_dests`](Self::changed_dests): a recompute can find the tree
    /// unchanged).
    dests_recomputed: usize,
}

impl RouteDelta {
    /// Returns true when no route entry changed.
    pub fn is_empty(&self) -> bool {
        self.changed_pairs == 0
    }

    /// Total number of changed `(source, destination)` pairs.
    pub fn changed_pairs(&self) -> usize {
        self.changed_pairs
    }

    /// Number of destination trees that were recomputed.
    pub fn dests_recomputed(&self) -> usize {
        self.dests_recomputed
    }

    /// The destinations whose route entry at `source` changed.
    pub fn changed_dests(&self, source: BrokerId) -> &[BrokerId] {
        self.per_source
            .get(source.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Every destination involved in at least one changed pair, ascending.
    pub fn changed_dests_union(&self) -> &[BrokerId] {
        &self.changed_dests
    }

    /// Iterates over every changed `(source, destination)` pair.
    pub fn pairs(&self) -> impl Iterator<Item = (BrokerId, BrokerId)> + '_ {
        self.per_source.iter().enumerate().flat_map(|(src, dests)| {
            let src = BrokerId::new(src as u32);
            dests.iter().map(move |&dest| (src, dest))
        })
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    broker: BrokerId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance with deterministic broker-id tie-breaking.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.broker.cmp(&self.broker))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Routing {
    /// Computes single-path routes for every (source, destination) pair.
    pub fn compute(graph: &OverlayGraph) -> Routing {
        Self::compute_filtered(graph, |_| true)
    }

    /// Like [`compute`](Self::compute), but only links for which `usable`
    /// returns true participate. This is the incremental-update entry point
    /// for dynamic scenarios: when a link fails or recovers mid-run the
    /// routes are recomputed over the surviving links, so traffic flows
    /// around outages instead of piling up behind them.
    pub fn compute_filtered(graph: &OverlayGraph, usable: impl Fn(LinkId) -> bool) -> Routing {
        let n = graph.broker_count();
        let mut table = Vec::with_capacity(n);
        for dest_raw in 0..n {
            let dest = BrokerId::new(dest_raw as u32);
            table.push(Self::routes_towards(graph, dest, &usable));
        }
        Routing {
            table,
            broker_count: n,
        }
    }

    /// Dijkstra rooted at the destination over reversed links.
    ///
    /// Returns, for every source broker, the first hop of its minimum
    /// mean-rate path towards `dest` together with the accumulated path
    /// statistics.
    fn routes_towards(
        graph: &OverlayGraph,
        dest: BrokerId,
        usable: &impl Fn(LinkId) -> bool,
    ) -> Vec<Option<RouteEntry>> {
        let n = graph.broker_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut entry: Vec<Option<RouteEntry>> = vec![None; n];
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::new();

        dist[dest.index()] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            broker: dest,
        });

        // We relax *incoming* links of the settled broker: if broker `v` can
        // reach `dest` with cost d(v), then any broker `u` with a link u -> v
        // can reach it with cost d(v) + mean_rate(u -> v), taking u's first
        // hop to be v.
        while let Some(HeapEntry { dist: d, broker: v }) = heap.pop() {
            if done[v.index()] {
                continue;
            }
            done[v.index()] = true;
            for link in graph.links().filter(|l| l.to == v && usable(l.id)) {
                let u = link.from;
                if done[u.index()] {
                    continue;
                }
                let weight = link.quality.rate_distribution().mean();
                let candidate = d + weight;
                let better = candidate < dist[u.index()]
                    || (candidate == dist[u.index()]
                        && entry[u.index()].map(|e| v < e.next_hop).unwrap_or(true));
                if better {
                    dist[u.index()] = candidate;
                    // Path stats of u: the link u -> v followed by v's path.
                    let downstream = match entry[v.index()] {
                        Some(e) => e.stats,
                        None => PathStats::local(),
                    };
                    let stats = PathStats {
                        downstream_brokers: downstream.downstream_brokers + 1,
                        rate: downstream
                            .rate
                            .add_independent(&link.quality.rate_distribution()),
                    };
                    entry[u.index()] = Some(RouteEntry {
                        next_hop: v,
                        next_link: link.id,
                        stats,
                    });
                    heap.push(HeapEntry {
                        dist: candidate,
                        broker: u,
                    });
                }
            }
        }
        entry
    }

    /// Incrementally updates the routes after a batch of link liveness
    /// changes, recomputing only the destinations whose shortest-path tree
    /// the batch can actually affect, and returns the set of
    /// `(source, destination)` pairs whose route entry changed.
    ///
    /// `removed` are links that were usable when this routing was last
    /// computed and are not any more; `added` the reverse; `usable` must
    /// describe the *post-change* liveness. The result is **bit-identical**
    /// to [`compute_filtered`](Self::compute_filtered) over the same graph
    /// and `usable` predicate (`tests/properties.rs` pins this against the
    /// from-scratch oracle):
    ///
    /// * removing a link that no route entry of a destination uses cannot
    ///   change that destination's tree — the chosen entry at every source
    ///   is the lexicographic minimum `(path cost, next hop)` over its
    ///   candidates, and the removal only deletes non-winning candidates;
    /// * adding a link `u -> v` that does not beat `u`'s current
    ///   `(cost, next hop)` cannot change anything either: any path through
    ///   the new link costs at least `cost(x, u) + cost(u, dest)` for every
    ///   source `x`, which never undercuts `x`'s current cost.
    ///
    /// Destinations failing these checks are recomputed with the same
    /// Dijkstra as the full path and diffed entry-by-entry (statistics
    /// included — an equal-cost tree swap still changes downstream
    /// variance), so the delta is exact.
    pub fn update_for_link_change(
        &mut self,
        graph: &OverlayGraph,
        usable: impl Fn(LinkId) -> bool,
        removed: &[LinkId],
        added: &[LinkId],
    ) -> RouteDelta {
        debug_assert!(removed.iter().all(|&l| !usable(l)), "removed must be dead");
        debug_assert!(added.iter().all(|&l| usable(l)), "added must be alive");
        let n = self.broker_count;
        let mut delta = RouteDelta {
            per_source: vec![Vec::new(); n],
            ..RouteDelta::default()
        };
        for dest_raw in 0..n {
            let dest = BrokerId::new(dest_raw as u32);
            if !Self::row_affected(graph, &self.table[dest_raw], dest, removed, added) {
                continue;
            }
            delta.dests_recomputed += 1;
            let fresh = Self::routes_towards(graph, dest, &usable);
            let mut any_changed = false;
            for (src_raw, (old, new)) in self.table[dest_raw].iter().zip(&fresh).enumerate() {
                if old != new {
                    delta.per_source[src_raw].push(dest);
                    delta.changed_pairs += 1;
                    any_changed = true;
                }
            }
            if any_changed {
                delta.changed_dests.push(dest);
            }
            self.table[dest_raw] = fresh;
        }
        delta
    }

    /// Returns true when the batch of link changes can affect `dest`'s
    /// shortest-path tree (see [`update_for_link_change`](Self::update_for_link_change)).
    fn row_affected(
        graph: &OverlayGraph,
        row: &[Option<RouteEntry>],
        dest: BrokerId,
        removed: &[LinkId],
        added: &[LinkId],
    ) -> bool {
        for &id in removed {
            let link = graph.link(id);
            if row[link.from.index()].is_some_and(|e| e.next_link == id) {
                return true; // a tree edge died
            }
        }
        for &id in added {
            let link = graph.link(id);
            let (u, v) = (link.from, link.to);
            if u == dest {
                continue; // the destination never routes anywhere
            }
            // Cost of v's remaining path to dest (the Dijkstra distance).
            let via = if v == dest {
                0.0
            } else {
                match &row[v.index()] {
                    Some(e) => e.stats.mean_rate(),
                    None => continue, // v cannot reach dest: the link is useless
                }
            };
            let candidate = via + link.quality.rate_distribution().mean();
            match &row[u.index()] {
                // u was unreachable and gains a path.
                None => return true,
                Some(e) => {
                    let current = e.stats.mean_rate();
                    // The last clause covers parallel links (same endpoints,
                    // equal cost): the scratch Dijkstra keeps the first
                    // relaxation, i.e. the lowest link id, so restoring a
                    // lower-id duplicate of the tree edge flips `next_link`
                    // even though `(cost, next_hop)` is unchanged.
                    if candidate < current
                        || (candidate == current
                            && (v < e.next_hop || (v == e.next_hop && id < e.next_link)))
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Number of brokers the routing was computed for.
    pub fn broker_count(&self) -> usize {
        self.broker_count
    }

    /// The route entry at `from` towards `to`; `None` when `from == to` or
    /// `to` is unreachable.
    pub fn route(&self, from: BrokerId, to: BrokerId) -> Option<&RouteEntry> {
        self.table
            .get(to.index())
            .and_then(|per_source| per_source.get(from.index()))
            .and_then(|e| e.as_ref())
    }

    /// The route entry, returning an error for unreachable destinations.
    pub fn route_or_err(&self, from: BrokerId, to: BrokerId) -> Result<&RouteEntry> {
        if from == to {
            return Err(BdpsError::InvalidConfig(format!(
                "no route needed from {from} to itself"
            )));
        }
        self.route(from, to).ok_or(BdpsError::Unreachable {
            from: from.raw(),
            to: to.raw(),
        })
    }

    /// The full broker path from `from` to `to` (both endpoints included),
    /// or `None` when unreachable. `from == to` yields a single-element path.
    pub fn path(&self, from: BrokerId, to: BrokerId) -> Option<Vec<BrokerId>> {
        let mut path = vec![from];
        let mut current = from;
        let mut guard = 0;
        while current != to {
            let entry = self.route(current, to)?;
            current = entry.next_hop;
            path.push(current);
            guard += 1;
            if guard > self.broker_count {
                // Cycle — should be impossible by construction.
                return None;
            }
        }
        Some(path)
    }

    /// The statistics of the path from `from` to `to` (empty/local when equal).
    pub fn path_stats(&self, from: BrokerId, to: BrokerId) -> Option<PathStats> {
        if from == to {
            return Some(PathStats::local());
        }
        self.route(from, to).map(|e| e.stats)
    }

    /// Checks that following next hops from every source terminates at every
    /// reachable destination (used by integration tests and `validate` in
    /// debug builds).
    pub fn is_consistent(&self) -> bool {
        for dest_raw in 0..self.broker_count {
            for src_raw in 0..self.broker_count {
                let dest = BrokerId::new(dest_raw as u32);
                let src = BrokerId::new(src_raw as u32);
                if src != dest && self.route(src, dest).is_some() && self.path(src, dest).is_none()
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdps_net::bandwidth::FixedRate;
    use bdps_net::link::LinkQuality;

    fn quality(rate: f64) -> LinkQuality {
        LinkQuality::new(FixedRate::new(rate))
    }

    /// B0 - B1 - B3 and B0 - B2 - B3, where the B1 route is cheaper.
    fn diamond() -> OverlayGraph {
        let mut g = OverlayGraph::new();
        let b0 = g.add_broker(None);
        let b1 = g.add_broker(None);
        let b2 = g.add_broker(None);
        let b3 = g.add_broker(None);
        g.add_bidirectional_link(b0, b1, quality(50.0));
        g.add_bidirectional_link(b1, b3, quality(50.0));
        g.add_bidirectional_link(b0, b2, quality(80.0));
        g.add_bidirectional_link(b2, b3, quality(80.0));
        g
    }

    #[test]
    fn picks_minimum_mean_rate_path() {
        let g = diamond();
        let r = Routing::compute(&g);
        let entry = r.route(BrokerId::new(0), BrokerId::new(3)).unwrap();
        assert_eq!(entry.next_hop, BrokerId::new(1));
        assert_eq!(entry.stats.downstream_brokers, 2);
        assert!((entry.stats.mean_rate() - 100.0).abs() < 1e-9);
        assert_eq!(
            r.path(BrokerId::new(0), BrokerId::new(3)).unwrap(),
            vec![BrokerId::new(0), BrokerId::new(1), BrokerId::new(3)]
        );
    }

    #[test]
    fn direct_neighbour_routes() {
        let g = diamond();
        let r = Routing::compute(&g);
        let entry = r.route(BrokerId::new(1), BrokerId::new(0)).unwrap();
        assert_eq!(entry.next_hop, BrokerId::new(0));
        assert_eq!(entry.stats.downstream_brokers, 1);
        assert!((entry.stats.mean_rate() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn self_route_and_unreachable() {
        let g = diamond();
        let r = Routing::compute(&g);
        assert!(r.route(BrokerId::new(2), BrokerId::new(2)).is_none());
        assert_eq!(
            r.path_stats(BrokerId::new(2), BrokerId::new(2)),
            Some(PathStats::local())
        );
        assert!(r.route_or_err(BrokerId::new(2), BrokerId::new(2)).is_err());

        // A graph with an isolated broker: unreachable routes are None.
        let mut g2 = OverlayGraph::new();
        let a = g2.add_broker(None);
        let b = g2.add_broker(None);
        let _c = g2.add_broker(None);
        g2.add_bidirectional_link(a, b, quality(50.0));
        let r2 = Routing::compute(&g2);
        assert!(r2.route(BrokerId::new(0), BrokerId::new(2)).is_none());
        assert!(matches!(
            r2.route_or_err(BrokerId::new(0), BrokerId::new(2)),
            Err(BdpsError::Unreachable { from: 0, to: 2 })
        ));
        assert!(r2.path(BrokerId::new(0), BrokerId::new(2)).is_none());
    }

    #[test]
    fn next_hops_are_consistent_with_advertised_stats() {
        let g = diamond();
        let r = Routing::compute(&g);
        assert!(r.is_consistent());
        // Walking the path and summing link means must equal the advertised path mean.
        for from in 0..4u32 {
            for to in 0..4u32 {
                if from == to {
                    continue;
                }
                let from = BrokerId::new(from);
                let to = BrokerId::new(to);
                let stats = r.path_stats(from, to).unwrap();
                let path = r.path(from, to).unwrap();
                let mut sum = 0.0;
                for w in path.windows(2) {
                    sum += g
                        .link_between(w[0], w[1])
                        .unwrap()
                        .quality
                        .rate_distribution()
                        .mean();
                }
                assert!((sum - stats.mean_rate()).abs() < 1e-9);
                assert_eq!(stats.downstream_brokers as usize, path.len() - 1);
            }
        }
    }

    #[test]
    fn filtered_compute_routes_around_dead_links() {
        let g = diamond();
        // Kill both directions of the cheap B0 - B1 edge (links 0 and 1).
        let dead = [LinkId::new(0), LinkId::new(1)];
        let r = Routing::compute_filtered(&g, |l| !dead.contains(&l));
        let entry = r.route(BrokerId::new(0), BrokerId::new(3)).unwrap();
        assert_eq!(entry.next_hop, BrokerId::new(2), "must detour via B2");
        assert!((entry.stats.mean_rate() - 160.0).abs() < 1e-9);
        assert!(r.is_consistent());
        // With every link dead, nothing is reachable.
        let none = Routing::compute_filtered(&g, |_| false);
        assert!(none.route(BrokerId::new(0), BrokerId::new(3)).is_none());
        // The unfiltered computation is unchanged by the refactor.
        let full = Routing::compute(&g);
        assert_eq!(
            full.route(BrokerId::new(0), BrokerId::new(3))
                .unwrap()
                .next_hop,
            BrokerId::new(1)
        );
    }

    /// Applies a liveness change to a cloned routing via the incremental
    /// path and checks it matches a from-scratch recompute exactly,
    /// returning the delta.
    fn update_and_check(
        g: &OverlayGraph,
        routing: &mut Routing,
        dead: &std::collections::HashSet<LinkId>,
        removed: &[LinkId],
        added: &[LinkId],
    ) -> RouteDelta {
        let before = routing.clone();
        let delta = routing.update_for_link_change(g, |l| !dead.contains(&l), removed, added);
        let scratch = Routing::compute_filtered(g, |l| !dead.contains(&l));
        assert_eq!(routing, &scratch, "incremental drifted from scratch");
        // The delta names exactly the pairs that differ from the old table.
        let mut expected = Vec::new();
        for dest in 0..g.broker_count() {
            for src in 0..g.broker_count() {
                let (src_id, dest_id) = (BrokerId::new(src as u32), BrokerId::new(dest as u32));
                if before.route(src_id, dest_id) != scratch.route(src_id, dest_id) {
                    expected.push((src_id, dest_id));
                }
            }
        }
        let mut reported: Vec<(BrokerId, BrokerId)> = delta.pairs().collect();
        reported.sort_unstable_by_key(|&(s, d)| (d, s));
        expected.sort_unstable_by_key(|&(s, d)| (d, s));
        assert_eq!(reported, expected, "delta must be exact");
        assert_eq!(delta.changed_pairs(), expected.len());
        delta
    }

    #[test]
    fn incremental_update_matches_scratch_and_reports_exact_delta() {
        let g = diamond();
        let mut routing = Routing::compute(&g);
        let mut dead = std::collections::HashSet::new();

        // Kill the cheap B0 -> B1 direction: every route using it moves.
        dead.insert(LinkId::new(0));
        let delta = update_and_check(&g, &mut routing, &dead, &[LinkId::new(0)], &[]);
        assert!(!delta.is_empty());
        assert!(delta
            .changed_dests(BrokerId::new(0))
            .contains(&BrokerId::new(3)));
        assert_eq!(
            routing
                .route(BrokerId::new(0), BrokerId::new(3))
                .unwrap()
                .next_hop,
            BrokerId::new(2)
        );

        // Restore it: the delta must undo exactly what the removal changed.
        dead.remove(&LinkId::new(0));
        let delta = update_and_check(&g, &mut routing, &dead, &[], &[LinkId::new(0)]);
        assert!(!delta.is_empty());
        assert_eq!(routing, Routing::compute(&g));
    }

    /// Line B0 - B1 - B2 on cheap links (links 0..=3) plus a one-way
    /// expensive shortcut B0 -> B2 (link 4) that no shortest path uses
    /// (100 via the line vs 200 direct).
    fn line_with_unused_shortcut() -> OverlayGraph {
        let mut g = OverlayGraph::new();
        let b0 = g.add_broker(None);
        let b1 = g.add_broker(None);
        let b2 = g.add_broker(None);
        g.add_bidirectional_link(b0, b1, quality(50.0));
        g.add_bidirectional_link(b1, b2, quality(50.0));
        g.add_link(b0, b2, quality(200.0));
        g
    }

    #[test]
    fn removing_an_unused_link_recomputes_nothing() {
        let g = line_with_unused_shortcut();
        let mut routing = Routing::compute(&g);
        let unused = LinkId::new(4);
        for dest in 0..3u32 {
            for src in 0..3u32 {
                if let Some(e) = routing.route(BrokerId::new(src), BrokerId::new(dest)) {
                    assert_ne!(e.next_link, unused, "the shortcut must be unused");
                }
            }
        }
        let mut dead = std::collections::HashSet::new();
        dead.insert(unused);
        let delta = update_and_check(&g, &mut routing, &dead, &[unused], &[]);
        assert!(delta.is_empty());
        assert_eq!(delta.dests_recomputed(), 0, "no tree uses the dead link");
    }

    #[test]
    fn restoring_a_non_improving_link_is_a_no_op() {
        let g = line_with_unused_shortcut();
        // Start with the shortcut dead, then restore it: the line still wins
        // everywhere, so the restoration must not recompute anything.
        let mut dead: std::collections::HashSet<LinkId> = [LinkId::new(4)].into_iter().collect();
        let mut routing = Routing::compute_filtered(&g, |l| !dead.contains(&l));
        dead.remove(&LinkId::new(4));
        let delta = update_and_check(&g, &mut routing, &dead, &[], &[LinkId::new(4)]);
        assert!(delta.is_empty());
        assert_eq!(delta.dests_recomputed(), 0, "the shortcut never improves");
    }

    #[test]
    fn delta_covers_reachability_transitions() {
        // A line B0 - B1 - B2: killing both directions of the middle edge
        // makes B2 unreachable from B0 (and vice versa); entries vanish.
        let mut g = OverlayGraph::new();
        let b0 = g.add_broker(None);
        let b1 = g.add_broker(None);
        let b2 = g.add_broker(None);
        g.add_bidirectional_link(b0, b1, quality(50.0)); // links 0, 1
        g.add_bidirectional_link(b1, b2, quality(50.0)); // links 2, 3
        let mut routing = Routing::compute(&g);
        let batch = [LinkId::new(2), LinkId::new(3)];
        let mut dead: std::collections::HashSet<LinkId> = batch.into_iter().collect();
        let delta = update_and_check(&g, &mut routing, &dead, &batch, &[]);
        assert!(routing.route(b0, b2).is_none());
        assert!(delta.pairs().any(|(s, d)| s == b0 && d == b2));
        // Restoring re-creates the entries bit-for-bit.
        dead.clear();
        update_and_check(&g, &mut routing, &dead, &[], &batch);
        assert_eq!(routing, Routing::compute(&g));
        assert!(routing.route(b0, b2).is_some());
    }

    #[test]
    fn parallel_equal_cost_links_tie_break_on_link_id() {
        // Two parallel links B0 -> B1 with identical cost: the scratch
        // Dijkstra keeps the lower link id, so restoring the lower-id
        // duplicate while the higher-id one carries the route must flip
        // `next_link` — a change invisible to the (cost, next hop) pair.
        let mut g = OverlayGraph::new();
        let b0 = g.add_broker(None);
        let b1 = g.add_broker(None);
        let low = g.add_link(b0, b1, quality(50.0)); // link 0
        let high = g.add_link(b0, b1, quality(50.0)); // link 1, same cost
        g.add_link(b1, b0, quality(50.0)); // link 2, so b1 routes back

        // Start with the low-id duplicate dead: routes use the high-id link.
        let mut dead: std::collections::HashSet<LinkId> = [low].into_iter().collect();
        let mut routing = Routing::compute_filtered(&g, |l| !dead.contains(&l));
        assert_eq!(routing.route(b0, b1).unwrap().next_link, high);

        // Restore it: the incremental update must flip next_link to the
        // lower id, exactly like the from-scratch recompute.
        dead.clear();
        let delta = update_and_check(&g, &mut routing, &dead, &[], &[low]);
        assert!(!delta.is_empty(), "the next_link flip must be reported");
        assert_eq!(routing.route(b0, b1).unwrap().next_link, low);
    }

    #[test]
    fn mixed_batches_with_net_no_op_links() {
        // Simultaneously remove the cheap path's forward links and restore
        // nothing: then hand the incremental path a batch where one link
        // flapped down and up (net no change) alongside a real removal.
        let g = diamond();
        let mut routing = Routing::compute(&g);
        let mut dead = std::collections::HashSet::new();
        dead.insert(LinkId::new(2)); // B1 -> B3 dies
        let delta = update_and_check(&g, &mut routing, &dead, &[LinkId::new(2)], &[]);
        assert!(!delta.is_empty());
        // A net-no-op flap is simply absent from both removed and added:
        // the same batch shape the engine produces after coalescing.
        let delta = update_and_check(&g, &mut routing, &dead, &[], &[]);
        assert!(delta.is_empty());
    }

    #[test]
    fn asymmetric_directed_links_respected() {
        // Only a one-way link B0 -> B1 exists; B1 cannot reach B0.
        let mut g = OverlayGraph::new();
        let a = g.add_broker(None);
        let b = g.add_broker(None);
        g.add_link(a, b, quality(50.0));
        let r = Routing::compute(&g);
        assert!(r.route(a, b).is_some());
        assert!(r.route(b, a).is_none());
    }
}
