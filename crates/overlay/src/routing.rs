//! Single-path routing over the overlay.
//!
//! The paper uses single-path routing where "the criterion for path selection
//! is to minimize the mean value of the transmission rate of the path"
//! (§3.3). We compute, for every *destination* broker, a shortest-path tree
//! over the reversed graph with Dijkstra's algorithm, using each link's mean
//! per-KB rate as its weight. Rooting the computation at the destination
//! guarantees that the per-broker next hops are mutually consistent: the path
//! a message actually follows hop by hop is exactly the path whose statistics
//! each broker advertises.

use crate::graph::OverlayGraph;
use crate::pathstats::PathStats;
use bdps_types::error::{BdpsError, Result};
use bdps_types::id::{BrokerId, LinkId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The routing decision of one broker for one destination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// The neighbour to forward to (the paper's `nb`).
    pub next_hop: BrokerId,
    /// The outgoing link towards that neighbour.
    pub next_link: LinkId,
    /// Statistics of the whole remaining path to the destination.
    pub stats: PathStats,
}

/// All-pairs single-path routes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Routing {
    /// `table[dest][source]` — the route entry at `source` towards `dest`
    /// (`None` when `source == dest` or `dest` is unreachable from `source`).
    table: Vec<Vec<Option<RouteEntry>>>,
    broker_count: usize,
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    broker: BrokerId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance with deterministic broker-id tie-breaking.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.broker.cmp(&self.broker))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Routing {
    /// Computes single-path routes for every (source, destination) pair.
    pub fn compute(graph: &OverlayGraph) -> Routing {
        Self::compute_filtered(graph, |_| true)
    }

    /// Like [`compute`](Self::compute), but only links for which `usable`
    /// returns true participate. This is the incremental-update entry point
    /// for dynamic scenarios: when a link fails or recovers mid-run the
    /// routes are recomputed over the surviving links, so traffic flows
    /// around outages instead of piling up behind them.
    pub fn compute_filtered(graph: &OverlayGraph, usable: impl Fn(LinkId) -> bool) -> Routing {
        let n = graph.broker_count();
        let mut table = Vec::with_capacity(n);
        for dest_raw in 0..n {
            let dest = BrokerId::new(dest_raw as u32);
            table.push(Self::routes_towards(graph, dest, &usable));
        }
        Routing {
            table,
            broker_count: n,
        }
    }

    /// Dijkstra rooted at the destination over reversed links.
    ///
    /// Returns, for every source broker, the first hop of its minimum
    /// mean-rate path towards `dest` together with the accumulated path
    /// statistics.
    fn routes_towards(
        graph: &OverlayGraph,
        dest: BrokerId,
        usable: &impl Fn(LinkId) -> bool,
    ) -> Vec<Option<RouteEntry>> {
        let n = graph.broker_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut entry: Vec<Option<RouteEntry>> = vec![None; n];
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::new();

        dist[dest.index()] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            broker: dest,
        });

        // We relax *incoming* links of the settled broker: if broker `v` can
        // reach `dest` with cost d(v), then any broker `u` with a link u -> v
        // can reach it with cost d(v) + mean_rate(u -> v), taking u's first
        // hop to be v.
        while let Some(HeapEntry { dist: d, broker: v }) = heap.pop() {
            if done[v.index()] {
                continue;
            }
            done[v.index()] = true;
            for link in graph.links().filter(|l| l.to == v && usable(l.id)) {
                let u = link.from;
                if done[u.index()] {
                    continue;
                }
                let weight = link.quality.rate_distribution().mean();
                let candidate = d + weight;
                let better = candidate < dist[u.index()]
                    || (candidate == dist[u.index()]
                        && entry[u.index()].map(|e| v < e.next_hop).unwrap_or(true));
                if better {
                    dist[u.index()] = candidate;
                    // Path stats of u: the link u -> v followed by v's path.
                    let downstream = match entry[v.index()] {
                        Some(e) => e.stats,
                        None => PathStats::local(),
                    };
                    let stats = PathStats {
                        downstream_brokers: downstream.downstream_brokers + 1,
                        rate: downstream
                            .rate
                            .add_independent(&link.quality.rate_distribution()),
                    };
                    entry[u.index()] = Some(RouteEntry {
                        next_hop: v,
                        next_link: link.id,
                        stats,
                    });
                    heap.push(HeapEntry {
                        dist: candidate,
                        broker: u,
                    });
                }
            }
        }
        entry
    }

    /// Number of brokers the routing was computed for.
    pub fn broker_count(&self) -> usize {
        self.broker_count
    }

    /// The route entry at `from` towards `to`; `None` when `from == to` or
    /// `to` is unreachable.
    pub fn route(&self, from: BrokerId, to: BrokerId) -> Option<&RouteEntry> {
        self.table
            .get(to.index())
            .and_then(|per_source| per_source.get(from.index()))
            .and_then(|e| e.as_ref())
    }

    /// The route entry, returning an error for unreachable destinations.
    pub fn route_or_err(&self, from: BrokerId, to: BrokerId) -> Result<&RouteEntry> {
        if from == to {
            return Err(BdpsError::InvalidConfig(format!(
                "no route needed from {from} to itself"
            )));
        }
        self.route(from, to).ok_or(BdpsError::Unreachable {
            from: from.raw(),
            to: to.raw(),
        })
    }

    /// The full broker path from `from` to `to` (both endpoints included),
    /// or `None` when unreachable. `from == to` yields a single-element path.
    pub fn path(&self, from: BrokerId, to: BrokerId) -> Option<Vec<BrokerId>> {
        let mut path = vec![from];
        let mut current = from;
        let mut guard = 0;
        while current != to {
            let entry = self.route(current, to)?;
            current = entry.next_hop;
            path.push(current);
            guard += 1;
            if guard > self.broker_count {
                // Cycle — should be impossible by construction.
                return None;
            }
        }
        Some(path)
    }

    /// The statistics of the path from `from` to `to` (empty/local when equal).
    pub fn path_stats(&self, from: BrokerId, to: BrokerId) -> Option<PathStats> {
        if from == to {
            return Some(PathStats::local());
        }
        self.route(from, to).map(|e| e.stats)
    }

    /// Checks that following next hops from every source terminates at every
    /// reachable destination (used by integration tests and `validate` in
    /// debug builds).
    pub fn is_consistent(&self) -> bool {
        for dest_raw in 0..self.broker_count {
            for src_raw in 0..self.broker_count {
                let dest = BrokerId::new(dest_raw as u32);
                let src = BrokerId::new(src_raw as u32);
                if src != dest && self.route(src, dest).is_some() && self.path(src, dest).is_none()
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdps_net::bandwidth::FixedRate;
    use bdps_net::link::LinkQuality;

    fn quality(rate: f64) -> LinkQuality {
        LinkQuality::new(FixedRate::new(rate))
    }

    /// B0 - B1 - B3 and B0 - B2 - B3, where the B1 route is cheaper.
    fn diamond() -> OverlayGraph {
        let mut g = OverlayGraph::new();
        let b0 = g.add_broker(None);
        let b1 = g.add_broker(None);
        let b2 = g.add_broker(None);
        let b3 = g.add_broker(None);
        g.add_bidirectional_link(b0, b1, quality(50.0));
        g.add_bidirectional_link(b1, b3, quality(50.0));
        g.add_bidirectional_link(b0, b2, quality(80.0));
        g.add_bidirectional_link(b2, b3, quality(80.0));
        g
    }

    #[test]
    fn picks_minimum_mean_rate_path() {
        let g = diamond();
        let r = Routing::compute(&g);
        let entry = r.route(BrokerId::new(0), BrokerId::new(3)).unwrap();
        assert_eq!(entry.next_hop, BrokerId::new(1));
        assert_eq!(entry.stats.downstream_brokers, 2);
        assert!((entry.stats.mean_rate() - 100.0).abs() < 1e-9);
        assert_eq!(
            r.path(BrokerId::new(0), BrokerId::new(3)).unwrap(),
            vec![BrokerId::new(0), BrokerId::new(1), BrokerId::new(3)]
        );
    }

    #[test]
    fn direct_neighbour_routes() {
        let g = diamond();
        let r = Routing::compute(&g);
        let entry = r.route(BrokerId::new(1), BrokerId::new(0)).unwrap();
        assert_eq!(entry.next_hop, BrokerId::new(0));
        assert_eq!(entry.stats.downstream_brokers, 1);
        assert!((entry.stats.mean_rate() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn self_route_and_unreachable() {
        let g = diamond();
        let r = Routing::compute(&g);
        assert!(r.route(BrokerId::new(2), BrokerId::new(2)).is_none());
        assert_eq!(
            r.path_stats(BrokerId::new(2), BrokerId::new(2)),
            Some(PathStats::local())
        );
        assert!(r.route_or_err(BrokerId::new(2), BrokerId::new(2)).is_err());

        // A graph with an isolated broker: unreachable routes are None.
        let mut g2 = OverlayGraph::new();
        let a = g2.add_broker(None);
        let b = g2.add_broker(None);
        let _c = g2.add_broker(None);
        g2.add_bidirectional_link(a, b, quality(50.0));
        let r2 = Routing::compute(&g2);
        assert!(r2.route(BrokerId::new(0), BrokerId::new(2)).is_none());
        assert!(matches!(
            r2.route_or_err(BrokerId::new(0), BrokerId::new(2)),
            Err(BdpsError::Unreachable { from: 0, to: 2 })
        ));
        assert!(r2.path(BrokerId::new(0), BrokerId::new(2)).is_none());
    }

    #[test]
    fn next_hops_are_consistent_with_advertised_stats() {
        let g = diamond();
        let r = Routing::compute(&g);
        assert!(r.is_consistent());
        // Walking the path and summing link means must equal the advertised path mean.
        for from in 0..4u32 {
            for to in 0..4u32 {
                if from == to {
                    continue;
                }
                let from = BrokerId::new(from);
                let to = BrokerId::new(to);
                let stats = r.path_stats(from, to).unwrap();
                let path = r.path(from, to).unwrap();
                let mut sum = 0.0;
                for w in path.windows(2) {
                    sum += g
                        .link_between(w[0], w[1])
                        .unwrap()
                        .quality
                        .rate_distribution()
                        .mean();
                }
                assert!((sum - stats.mean_rate()).abs() < 1e-9);
                assert_eq!(stats.downstream_brokers as usize, path.len() - 1);
            }
        }
    }

    #[test]
    fn filtered_compute_routes_around_dead_links() {
        let g = diamond();
        // Kill both directions of the cheap B0 - B1 edge (links 0 and 1).
        let dead = [LinkId::new(0), LinkId::new(1)];
        let r = Routing::compute_filtered(&g, |l| !dead.contains(&l));
        let entry = r.route(BrokerId::new(0), BrokerId::new(3)).unwrap();
        assert_eq!(entry.next_hop, BrokerId::new(2), "must detour via B2");
        assert!((entry.stats.mean_rate() - 160.0).abs() < 1e-9);
        assert!(r.is_consistent());
        // With every link dead, nothing is reachable.
        let none = Routing::compute_filtered(&g, |_| false);
        assert!(none.route(BrokerId::new(0), BrokerId::new(3)).is_none());
        // The unfiltered computation is unchanged by the refactor.
        let full = Routing::compute(&g);
        assert_eq!(
            full.route(BrokerId::new(0), BrokerId::new(3))
                .unwrap()
                .next_hop,
            BrokerId::new(1)
        );
    }

    #[test]
    fn asymmetric_directed_links_respected() {
        // Only a one-way link B0 -> B1 exists; B1 cannot reach B0.
        let mut g = OverlayGraph::new();
        let a = g.add_broker(None);
        let b = g.add_broker(None);
        g.add_link(a, b, quality(50.0));
        let r = Routing::compute(&g);
        assert!(r.route(a, b).is_some());
        assert!(r.route(b, a).is_none());
    }
}
