//! Per-path statistics `(NN_p, μ_p, σ_p²)`.
//!
//! The paper's subscription table stores, for every subscription reachable
//! from a broker, the number of downstream brokers on the path (`NN_p`) and
//! the mean and variance of the path's per-KB transmission rate
//! (`μ_p`, `σ_p²`), obtained by summing the independent per-link normals
//! (§3.2, §4.2). This module provides the composable representation of those
//! statistics and the delay estimate `fdl` of equation (4).

use bdps_stats::normal::Normal;
use bdps_types::time::Duration;
use serde::{Deserialize, Serialize};

/// Statistics of the path from one broker to a subscriber's edge broker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathStats {
    /// The number of brokers that still have to process the message after the
    /// current one — the paper's `NN_p`. Equal to the number of links on the
    /// path (each link ends at a broker that runs the processing module).
    pub downstream_brokers: u32,
    /// The distribution of the path's per-KB transmission rate in ms/KB —
    /// `TR_p ~ N(μ_p, σ_p²)`.
    pub rate: Normal,
}

impl PathStats {
    /// The statistics of the empty path (subscriber attached to the current
    /// broker): no downstream brokers and a degenerate zero rate.
    pub fn local() -> Self {
        PathStats {
            downstream_brokers: 0,
            rate: Normal::new(0.0, 0.0),
        }
    }

    /// Extends the path by one more link whose rate distribution is `link_rate`.
    pub fn extend(&self, link_rate: Normal) -> PathStats {
        PathStats {
            downstream_brokers: self.downstream_brokers + 1,
            rate: self.rate.add_independent(&link_rate),
        }
    }

    /// Builds the statistics of a path given its links' rate distributions in order.
    pub fn from_links<'a>(links: impl IntoIterator<Item = &'a Normal>) -> PathStats {
        links
            .into_iter()
            .fold(PathStats::local(), |acc, rate| acc.extend(*rate))
    }

    /// The number of links (hops) on the path.
    pub fn hops(&self) -> u32 {
        self.downstream_brokers
    }

    /// Mean per-KB rate of the path, `μ_p` (ms/KB).
    pub fn mean_rate(&self) -> f64 {
        self.rate.mean()
    }

    /// Variance of the per-KB rate of the path, `σ_p²`.
    pub fn rate_variance(&self) -> f64 {
        self.rate.variance()
    }

    /// The distribution of the *propagation delay* (ms) of a message of
    /// `size_kb` kilobytes along this path: `size · TR_p`.
    pub fn propagation_delay_ms(&self, size_kb: f64) -> Normal {
        self.rate.scale(size_kb)
    }

    /// The paper's future-delay estimate `fdl(s_i, m)` (eq. 4) as a normal
    /// distribution in milliseconds: processing on every downstream broker
    /// plus the propagation delay, assuming zero scheduling delay downstream.
    pub fn future_delay_ms(&self, size_kb: f64, processing_delay: Duration) -> Normal {
        let processing_ms = processing_delay.as_millis_f64() * self.downstream_brokers as f64;
        self.propagation_delay_ms(size_kb).shift(processing_ms)
    }

    /// Mean of the future delay (ms), convenient for reports.
    pub fn mean_future_delay_ms(&self, size_kb: f64, processing_delay: Duration) -> f64 {
        self.future_delay_ms(size_kb, processing_delay).mean()
    }

    /// The probability that the future delay fits into the remaining budget —
    /// the building block of the paper's `success(s_i, m)` (eq. 5).
    pub fn success_probability(
        &self,
        size_kb: f64,
        processing_delay: Duration,
        remaining_budget: Duration,
    ) -> f64 {
        if remaining_budget == Duration::MAX {
            return 1.0;
        }
        self.future_delay_ms(size_kb, processing_delay)
            .cdf(remaining_budget.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_path_is_immediate() {
        let p = PathStats::local();
        assert_eq!(p.downstream_brokers, 0);
        assert_eq!(p.mean_rate(), 0.0);
        assert_eq!(p.mean_future_delay_ms(50.0, Duration::from_millis(2)), 0.0);
        assert_eq!(
            p.success_probability(50.0, Duration::from_millis(2), Duration::from_secs(1)),
            1.0
        );
    }

    #[test]
    fn extension_accumulates_means_and_variances() {
        let l1 = Normal::new(50.0, 20.0);
        let l2 = Normal::new(80.0, 20.0);
        let p = PathStats::local().extend(l1).extend(l2);
        assert_eq!(p.downstream_brokers, 2);
        assert_eq!(p.hops(), 2);
        assert!((p.mean_rate() - 130.0).abs() < 1e-9);
        assert!((p.rate_variance() - 800.0).abs() < 1e-9);
        let from_links = PathStats::from_links([&l1, &l2]);
        assert_eq!(from_links, p);
    }

    #[test]
    fn future_delay_includes_processing() {
        // Two downstream brokers, PD = 2 ms, 50 KB message over a path with
        // mean rate 100 ms/KB: mean future delay = 2*2 + 50*100 = 5004 ms.
        let p = PathStats::from_links([&Normal::new(40.0, 10.0), &Normal::new(60.0, 10.0)]);
        let d = p.future_delay_ms(50.0, Duration::from_millis(2));
        assert!((d.mean() - 5_004.0).abs() < 1e-9);
        // Variance scales with size^2: (10^2 + 10^2) * 50^2 = 500_000.
        assert!((d.variance() - 500_000.0).abs() < 1e-6);
    }

    #[test]
    fn success_probability_behaviour() {
        let p = PathStats::from_links([&Normal::new(60.0, 20.0)]);
        let pd = Duration::from_millis(2);
        // Mean transfer of a 50 KB message is 3002 ms.
        let tight = p.success_probability(50.0, pd, Duration::from_millis(1_000));
        let exact = p.success_probability(50.0, pd, Duration::from_millis(3_002));
        let loose = p.success_probability(50.0, pd, Duration::from_secs(10));
        assert!(tight < 0.05, "tight = {tight}");
        assert!((exact - 0.5).abs() < 0.01, "exact = {exact}");
        assert!(loose > 0.95, "loose = {loose}");
        // Unbounded budget always succeeds.
        assert_eq!(p.success_probability(50.0, pd, Duration::MAX), 1.0);
    }

    #[test]
    fn success_probability_monotone_in_budget() {
        let p = PathStats::from_links([&Normal::new(60.0, 20.0), &Normal::new(70.0, 20.0)]);
        let pd = Duration::from_millis(2);
        let mut last = 0.0;
        for secs in [1u64, 3, 5, 7, 9, 12, 20] {
            let prob = p.success_probability(50.0, pd, Duration::from_secs(secs));
            assert!(prob >= last, "not monotone at {secs}s");
            last = prob;
        }
    }
}
