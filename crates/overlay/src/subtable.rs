//! Broker subscription tables.
//!
//! Every broker keeps a subscription table (paper §4.2) whose entries are
//! `{(subscriber, filter, dl, pr, nb, NN_p, μ_p, σ_p²)}`: the subscription
//! itself, the neighbour `nb` through which the subscriber is reached, and
//! the statistics of the remaining path. Tables are built centrally here from
//! the topology and routing — equivalent to the subscription-propagation
//! protocol a deployed system would run, but deterministic and
//! side-effect-free, which keeps the simulator honest.

use crate::graph::OverlayGraph;
use crate::pathstats::PathStats;
use crate::routing::Routing;
use bdps_filter::index::MatchIndex;
use bdps_filter::subscription::Subscription;
use bdps_types::id::{BrokerId, LinkId, SubscriptionId};
use bdps_types::message::MessageHead;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One entry of a broker's subscription table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubTableEntry {
    /// The subscription (subscriber, filter, delay bound `dl`, price `pr`).
    pub subscription: Subscription,
    /// The edge broker the subscriber attaches to.
    pub edge_broker: BrokerId,
    /// The neighbour to forward matching messages to (`nb`), or `None` when
    /// the subscriber is attached to this broker (local delivery).
    pub next_hop: Option<BrokerId>,
    /// The outgoing link towards `next_hop`, when remote.
    pub next_link: Option<LinkId>,
    /// Path statistics from this broker to the subscriber (`NN_p`, `μ_p`, `σ_p²`).
    pub stats: PathStats,
}

impl SubTableEntry {
    /// Returns true when the subscriber is served locally by this broker.
    pub fn is_local(&self) -> bool {
        self.next_hop.is_none()
    }
}

/// Counters of one incremental table patch
/// ([`SubscriptionTable::retarget_entries`] /
/// [`SubscriptionTable::apply_route_delta`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetargetOutcome {
    /// Entries whose routed fields (next hop, link, path statistics) were
    /// rewritten in place — the matching index is untouched and the filter
    /// is not recloned.
    pub retargeted: u64,
    /// Entries inserted because their edge broker became reachable.
    pub inserted: u64,
    /// Entries removed because their edge broker became unreachable.
    pub removed: u64,
}

impl RetargetOutcome {
    /// Total entries the patch touched.
    pub fn total(&self) -> u64 {
        self.retargeted + self.inserted + self.removed
    }

    /// Accumulates another patch's counters.
    pub fn absorb(&mut self, other: RetargetOutcome) {
        self.retargeted += other.retargeted;
        self.inserted += other.inserted;
        self.removed += other.removed;
    }
}

/// The subscription table of one broker.
#[derive(Debug, Clone)]
pub struct SubscriptionTable {
    broker: BrokerId,
    entries: Vec<SubTableEntry>,
    by_id: HashMap<SubscriptionId, usize>,
    index: MatchIndex,
}

impl SubscriptionTable {
    /// Creates an empty table for the given broker.
    pub fn new(broker: BrokerId) -> Self {
        SubscriptionTable {
            broker,
            entries: Vec::new(),
            by_id: HashMap::new(),
            index: MatchIndex::new(),
        }
    }

    /// The broker this table belongs to.
    pub fn broker(&self) -> BrokerId {
        self.broker
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[SubTableEntry] {
        &self.entries
    }

    /// Hashes the table's routed content — per subscription (in ascending id
    /// order, independent of physical entry order): edge broker, next hop,
    /// next link and path statistics. Two tables with equal digests route
    /// identically; the model-checking explorer uses this for state
    /// deduplication across branches whose maintenance histories differ.
    pub fn digest_into(&self, h: &mut impl std::hash::Hasher) {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_unstable_by_key(|&i| self.entries[i].subscription.id);
        h.write_usize(order.len());
        for i in order {
            let e = &self.entries[i];
            h.write_u32(e.subscription.id.raw());
            h.write_u32(e.edge_broker.raw());
            h.write_u32(e.next_hop.map_or(u32::MAX, |b| b.raw()));
            h.write_u32(e.next_link.map_or(u32::MAX, |l| l.raw()));
            h.write_u32(e.stats.downstream_brokers);
            h.write_u64(e.stats.rate.mean().to_bits());
            h.write_u64(e.stats.rate.variance().to_bits());
        }
    }

    /// The routed-content digest as one `u64` (see
    /// [`digest_into`](Self::digest_into)).
    pub fn state_digest(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.digest_into(&mut h);
        h.finish()
    }

    /// The entry for a subscription id, if present.
    pub fn entry(&self, id: SubscriptionId) -> Option<&SubTableEntry> {
        self.by_id.get(&id).map(|&i| &self.entries[i])
    }

    /// Adds an entry (replacing any previous entry for the same subscription).
    pub fn insert(&mut self, entry: SubTableEntry) {
        let id = entry.subscription.id;
        self.index.insert(id, entry.subscription.filter.clone());
        match self.by_id.get(&id) {
            Some(&i) => self.entries[i] = entry,
            None => {
                self.by_id.insert(id, self.entries.len());
                self.entries.push(entry);
            }
        }
    }

    /// Removes a subscription's entry, returning it when present.
    ///
    /// Removal keeps the remaining entries in their original insertion order
    /// so that matching output stays deterministic under churn.
    pub fn remove(&mut self, id: SubscriptionId) -> Option<SubTableEntry> {
        let idx = self.by_id.remove(&id)?;
        self.index.remove(id);
        let entry = self.entries.remove(idx);
        for slot in self.by_id.values_mut() {
            if *slot > idx {
                *slot -= 1;
            }
        }
        Some(entry)
    }

    /// Builds the entry this broker should hold for one subscription attached
    /// at `edge`, consulting `routing` for remote subscribers. Returns `None`
    /// when the edge broker is currently unreachable (the subscription cannot
    /// be served from here until routing changes).
    pub fn entry_for(
        broker: BrokerId,
        routing: &Routing,
        sub: &Subscription,
        edge: BrokerId,
    ) -> Option<SubTableEntry> {
        if edge == broker {
            Some(SubTableEntry {
                subscription: sub.clone(),
                edge_broker: edge,
                next_hop: None,
                next_link: None,
                stats: PathStats::local(),
            })
        } else {
            routing.route(broker, edge).map(|route| SubTableEntry {
                subscription: sub.clone(),
                edge_broker: edge,
                next_hop: Some(route.next_hop),
                next_link: Some(route.next_link),
                stats: route.stats,
            })
        }
    }

    /// Entries whose filter matches the message head.
    pub fn matching(&self, head: &MessageHead) -> Vec<&SubTableEntry> {
        self.index
            .matching(head)
            .into_iter()
            .filter_map(|id| self.entry(id))
            .collect()
    }

    /// Builds the table of `broker` for a population of subscriptions, each
    /// attached at its edge broker. Subscriptions whose edge broker is
    /// unreachable from this broker are skipped (they can never be served
    /// from here).
    pub fn build(
        broker: BrokerId,
        routing: &Routing,
        subscriptions: &[(Subscription, BrokerId)],
    ) -> SubscriptionTable {
        let entries: Vec<SubTableEntry> = subscriptions
            .iter()
            .filter_map(|(sub, edge)| Self::entry_for(broker, routing, sub, *edge))
            .collect();
        Self::from_entries(broker, entries)
    }

    /// Builds a table directly from a prepared entry list, constructing the
    /// matching index in one bulk pass (`O(n log n)`) instead of `n` sorted
    /// inserts (`O(n²)`). Entries must have distinct subscription ids —
    /// every population builder in the workspace guarantees that.
    pub fn from_entries(broker: BrokerId, entries: Vec<SubTableEntry>) -> SubscriptionTable {
        let by_id: HashMap<SubscriptionId, usize> = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.subscription.id, i))
            .collect();
        debug_assert_eq!(by_id.len(), entries.len(), "duplicate subscription ids");
        let index = MatchIndex::from_subscriptions(
            entries
                .iter()
                .map(|e| (e.subscription.id, &e.subscription.filter)),
        );
        SubscriptionTable {
            broker,
            entries,
            by_id,
            index,
        }
    }

    /// Re-routes this table's entries for the subscriptions attached at one
    /// edge broker after a routing change — the incremental alternative to
    /// rebuilding the whole table with [`build`](Self::build).
    ///
    /// For every subscription in `attached` (the full population attached at
    /// `dest`), the entry is brought in line with `routing`:
    ///
    /// * still reachable and present → the routed fields (next hop, link,
    ///   path statistics) are rewritten **in place**; the matching index is
    ///   untouched and the `Arc`-backed filter is not recloned;
    /// * newly reachable → a fresh entry is inserted (index updated);
    /// * newly unreachable → the entry is removed (index updated).
    ///
    /// Patching with the exact set of changed destinations (a
    /// [`RouteDelta`](crate::routing::RouteDelta)) leaves the table equal to
    /// a from-scratch [`build`](Self::build) over the same routing —
    /// membership, fields and matching results alike; `tests/properties.rs`
    /// pins this against the full-rebuild oracle.
    pub fn retarget_entries<'a>(
        &mut self,
        routing: &Routing,
        dest: BrokerId,
        attached: impl IntoIterator<Item = &'a Subscription>,
    ) -> RetargetOutcome {
        let mut outcome = RetargetOutcome::default();
        if dest == self.broker {
            // Local entries carry no route and never move.
            return outcome;
        }
        match routing.route(self.broker, dest) {
            Some(route) => {
                for sub in attached {
                    match self.by_id.get(&sub.id) {
                        Some(&i) => {
                            let entry = &mut self.entries[i];
                            debug_assert_eq!(entry.edge_broker, dest);
                            entry.next_hop = Some(route.next_hop);
                            entry.next_link = Some(route.next_link);
                            entry.stats = route.stats;
                            outcome.retargeted += 1;
                        }
                        None => {
                            self.insert(SubTableEntry {
                                subscription: sub.clone(),
                                edge_broker: dest,
                                next_hop: Some(route.next_hop),
                                next_link: Some(route.next_link),
                                stats: route.stats,
                            });
                            outcome.inserted += 1;
                        }
                    }
                }
            }
            None => {
                for sub in attached {
                    if self.remove(sub.id).is_some() {
                        outcome.removed += 1;
                    }
                }
            }
        }
        outcome
    }

    /// Applies a routing delta to this table: one
    /// [`retarget_entries`](Self::retarget_entries) call per changed
    /// destination, with `changed` supplying the subscriptions attached at
    /// each. Returns the accumulated patch counters.
    pub fn apply_route_delta<'a>(
        &mut self,
        routing: &Routing,
        changed: impl IntoIterator<Item = (BrokerId, &'a [Subscription])>,
    ) -> RetargetOutcome {
        let mut outcome = RetargetOutcome::default();
        for (dest, attached) in changed {
            outcome.absorb(self.retarget_entries(routing, dest, attached));
        }
        outcome
    }

    /// Builds the tables of every broker in the graph.
    pub fn build_all(
        graph: &OverlayGraph,
        routing: &Routing,
        subscriptions: &[(Subscription, BrokerId)],
    ) -> Vec<SubscriptionTable> {
        (0..graph.broker_count())
            .map(|i| SubscriptionTable::build(BrokerId::new(i as u32), routing, subscriptions))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use bdps_filter::filter::Filter;
    use bdps_net::bandwidth::FixedRate;
    use bdps_net::link::LinkQuality;
    use bdps_stats::rng::SimRng;
    use bdps_types::id::SubscriberId;
    use bdps_types::money::Price;
    use bdps_types::qos::{DelayBound, QosClass};

    fn fixed_quality(_rng: &mut SimRng) -> LinkQuality {
        LinkQuality::new(FixedRate::new(60.0))
    }

    fn head(a1: f64, a2: f64) -> MessageHead {
        let mut h = MessageHead::new();
        h.set("A1", a1).set("A2", a2);
        h
    }

    /// A line B0 - B1 - B2 with a subscriber on B2 and one on B1.
    fn line_setup() -> (Topology, Routing, Vec<(Subscription, BrokerId)>) {
        let mut rng = SimRng::seed_from(1);
        let mut topo = Topology::line(3, &mut rng, fixed_quality);
        let s0 = SubscriberId::new(0);
        let s1 = SubscriberId::new(1);
        topo.graph.attach_subscriber(BrokerId::new(2), s0);
        topo.graph.attach_subscriber(BrokerId::new(1), s1);
        let routing = Routing::compute(&topo.graph);
        let subs = vec![
            (
                Subscription::with_qos(
                    SubscriptionId::new(0),
                    s0,
                    Filter::paper_conjunction(5.0, 5.0),
                    QosClass::new(DelayBound::from_secs(10), Price::from_units(3)),
                ),
                BrokerId::new(2),
            ),
            (
                Subscription::best_effort(
                    SubscriptionId::new(1),
                    s1,
                    Filter::paper_conjunction(9.0, 9.0),
                ),
                BrokerId::new(1),
            ),
        ];
        (topo, routing, subs)
    }

    #[test]
    fn build_produces_paper_table_fields() {
        let (_topo, routing, subs) = line_setup();
        let table = SubscriptionTable::build(BrokerId::new(0), &routing, &subs);
        assert_eq!(table.len(), 2);
        assert_eq!(table.broker(), BrokerId::new(0));

        let e0 = table.entry(SubscriptionId::new(0)).unwrap();
        assert_eq!(e0.next_hop, Some(BrokerId::new(1)));
        assert_eq!(e0.edge_broker, BrokerId::new(2));
        assert_eq!(e0.stats.downstream_brokers, 2);
        assert!((e0.stats.mean_rate() - 120.0).abs() < 1e-9);
        assert!(!e0.is_local());
        assert_eq!(e0.subscription.price, Price::from_units(3));

        let e1 = table.entry(SubscriptionId::new(1)).unwrap();
        assert_eq!(e1.next_hop, Some(BrokerId::new(1)));
        assert_eq!(e1.stats.downstream_brokers, 1);
    }

    #[test]
    fn local_entries_on_edge_broker() {
        let (_topo, routing, subs) = line_setup();
        let table = SubscriptionTable::build(BrokerId::new(2), &routing, &subs);
        let e0 = table.entry(SubscriptionId::new(0)).unwrap();
        assert!(e0.is_local());
        assert_eq!(e0.stats, PathStats::local());
        // Subscription 1 lives on broker 1, reached via broker 1.
        let e1 = table.entry(SubscriptionId::new(1)).unwrap();
        assert_eq!(e1.next_hop, Some(BrokerId::new(1)));
    }

    #[test]
    fn matching_and_grouping() {
        let (_topo, routing, subs) = line_setup();
        let table = SubscriptionTable::build(BrokerId::new(1), &routing, &subs);
        let split = |h: &MessageHead| {
            let mut local = Vec::new();
            let mut remote: HashMap<BrokerId, Vec<&SubTableEntry>> = HashMap::new();
            for e in table.matching(h) {
                match e.next_hop {
                    None => local.push(e),
                    Some(nb) => remote.entry(nb).or_default().push(e),
                }
            }
            (local, remote)
        };
        // A head matching both filters.
        let (local, remote) = split(&head(1.0, 1.0));
        assert_eq!(local.len(), 1); // subscription 1 is local to broker 1
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[&BrokerId::new(2)].len(), 1);
        // A head matching only the wide filter.
        let (local, remote) = split(&head(7.0, 7.0));
        assert_eq!(local.len(), 1);
        assert!(remote.is_empty());
        // A head matching nothing.
        let (local, remote) = split(&head(9.5, 9.5));
        assert!(local.is_empty());
        assert!(remote.is_empty());
    }

    #[test]
    fn build_all_covers_every_broker() {
        let (topo, routing, subs) = line_setup();
        let tables = SubscriptionTable::build_all(&topo.graph, &routing, &subs);
        assert_eq!(tables.len(), 3);
        for (i, t) in tables.iter().enumerate() {
            assert_eq!(t.broker(), BrokerId::new(i as u32));
            assert_eq!(t.len(), 2, "broker {i} should see every subscription");
        }
    }

    #[test]
    fn insert_replaces_existing_entry() {
        let (_topo, routing, subs) = line_setup();
        let mut table = SubscriptionTable::build(BrokerId::new(0), &routing, &subs);
        let mut replacement = table.entry(SubscriptionId::new(0)).unwrap().clone();
        replacement.subscription.filter = Filter::match_all();
        table.insert(replacement);
        assert_eq!(table.len(), 2);
        // Now every head matches subscription 0 at this broker.
        let m = table.matching(&head(9.9, 9.9));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].subscription.id, SubscriptionId::new(0));
    }

    #[test]
    fn remove_keeps_order_and_index_consistent() {
        let (_topo, routing, subs) = line_setup();
        let mut table = SubscriptionTable::build(BrokerId::new(0), &routing, &subs);
        assert_eq!(table.len(), 2);
        let removed = table.remove(SubscriptionId::new(0)).unwrap();
        assert_eq!(removed.subscription.id, SubscriptionId::new(0));
        assert_eq!(table.len(), 1);
        assert!(table.entry(SubscriptionId::new(0)).is_none());
        // The survivor is still reachable through id lookup and matching.
        let e1 = table.entry(SubscriptionId::new(1)).unwrap();
        assert_eq!(e1.subscription.id, SubscriptionId::new(1));
        let m = table.matching(&head(1.0, 1.0));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].subscription.id, SubscriptionId::new(1));
        // Removing an absent id is a no-op.
        assert!(table.remove(SubscriptionId::new(42)).is_none());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn entry_for_matches_build_semantics() {
        let (_topo, routing, subs) = line_setup();
        let (sub0, edge0) = &subs[0];
        let remote =
            SubscriptionTable::entry_for(BrokerId::new(0), &routing, sub0, *edge0).unwrap();
        assert_eq!(remote.next_hop, Some(BrokerId::new(1)));
        let local = SubscriptionTable::entry_for(BrokerId::new(2), &routing, sub0, *edge0).unwrap();
        assert!(local.is_local());
        assert_eq!(local.stats, PathStats::local());
    }

    #[test]
    fn retarget_rewrites_routes_in_place_without_index_churn() {
        // Line B0 - B1 - B2 with a direct expensive B0 -> B2 shortcut so a
        // middle-link failure changes B0's next hop towards B2 instead of
        // severing it.
        let mut rng = SimRng::seed_from(3);
        let mut topo = Topology::line(3, &mut rng, fixed_quality);
        topo.graph.add_link(
            BrokerId::new(0),
            BrokerId::new(2),
            LinkQuality::new(FixedRate::new(500.0)),
        );
        let s0 = SubscriberId::new(0);
        topo.graph.attach_subscriber(BrokerId::new(2), s0);
        let subs = vec![(
            Subscription::best_effort(
                SubscriptionId::new(0),
                s0,
                Filter::paper_conjunction(5.0, 5.0),
            ),
            BrokerId::new(2),
        )];
        let healthy = Routing::compute(&topo.graph);
        let mut table = SubscriptionTable::build(BrokerId::new(0), &healthy, &subs);
        assert_eq!(
            table.entry(SubscriptionId::new(0)).unwrap().next_hop,
            Some(BrokerId::new(1))
        );

        // Fail B1 -> B2: B0 must detour over the shortcut.
        let b1_to_b2 = topo
            .graph
            .link_between(BrokerId::new(1), BrokerId::new(2))
            .unwrap()
            .id;
        let degraded = Routing::compute_filtered(&topo.graph, |l| l != b1_to_b2);
        let attached: Vec<Subscription> = subs.iter().map(|(s, _)| s.clone()).collect();
        let outcome = table.retarget_entries(&degraded, BrokerId::new(2), &attached);
        assert_eq!(outcome.retargeted, 1);
        assert_eq!(outcome.inserted + outcome.removed, 0);
        assert_eq!(outcome.total(), 1);
        let patched = table.entry(SubscriptionId::new(0)).unwrap();
        assert_eq!(patched.next_hop, Some(BrokerId::new(2)));
        assert!((patched.stats.mean_rate() - 500.0).abs() < 1e-9);
        // The patched table equals a from-scratch build over the new routing.
        let rebuilt = SubscriptionTable::build(BrokerId::new(0), &degraded, &subs);
        assert_eq!(
            table.matching(&head(1.0, 1.0)).len(),
            rebuilt.matching(&head(1.0, 1.0)).len()
        );
        let fresh = rebuilt.entry(SubscriptionId::new(0)).unwrap();
        assert_eq!(patched.next_hop, fresh.next_hop);
        assert_eq!(patched.next_link, fresh.next_link);
        assert_eq!(patched.stats, fresh.stats);
    }

    #[test]
    fn retarget_handles_reachability_transitions() {
        let (topo, healthy, subs) = line_setup();
        let mut table = SubscriptionTable::build(BrokerId::new(0), &healthy, &subs);
        assert_eq!(table.len(), 2);
        let attached_b2: Vec<Subscription> = vec![subs[0].0.clone()];

        // Sever B1 <-> B2 entirely: subscription 0 (edge B2) becomes
        // unreachable from B0 and its entry must disappear.
        let cut: Vec<_> = topo
            .graph
            .links()
            .filter(|l| {
                (l.from == BrokerId::new(1) && l.to == BrokerId::new(2))
                    || (l.from == BrokerId::new(2) && l.to == BrokerId::new(1))
            })
            .map(|l| l.id)
            .collect();
        let severed = Routing::compute_filtered(&topo.graph, |l| !cut.contains(&l));
        let outcome = table.retarget_entries(&severed, BrokerId::new(2), &attached_b2);
        assert_eq!(outcome.removed, 1);
        assert!(table.entry(SubscriptionId::new(0)).is_none());
        assert_eq!(table.len(), 1);
        // Matching no longer returns the removed subscription.
        assert_eq!(table.matching(&head(1.0, 1.0)).len(), 1);

        // Restore: apply_route_delta re-inserts the entry, and the table
        // matches a fresh build again.
        let outcome =
            table.apply_route_delta(&healthy, [(BrokerId::new(2), attached_b2.as_slice())]);
        assert_eq!(outcome.inserted, 1);
        let patched = table.entry(SubscriptionId::new(0)).unwrap().clone();
        let rebuilt = SubscriptionTable::build(BrokerId::new(0), &healthy, &subs);
        let fresh = rebuilt.entry(SubscriptionId::new(0)).unwrap();
        assert_eq!(patched.next_hop, fresh.next_hop);
        assert_eq!(patched.stats, fresh.stats);
        assert_eq!(table.matching(&head(1.0, 1.0)).len(), 2);
    }

    #[test]
    fn retarget_towards_own_broker_is_a_no_op() {
        let (_topo, routing, subs) = line_setup();
        let mut table = SubscriptionTable::build(BrokerId::new(2), &routing, &subs);
        let attached: Vec<Subscription> = vec![subs[0].0.clone()];
        let outcome = table.retarget_entries(&routing, BrokerId::new(2), &attached);
        assert_eq!(outcome, RetargetOutcome::default());
        assert!(table.entry(SubscriptionId::new(0)).unwrap().is_local());
    }

    #[test]
    fn unreachable_edge_brokers_are_skipped() {
        // Two disconnected brokers.
        let mut g = OverlayGraph::new();
        let a = g.add_broker(None);
        let b = g.add_broker(None);
        let routing = Routing::compute(&g);
        let subs = vec![(
            Subscription::best_effort(
                SubscriptionId::new(0),
                SubscriberId::new(0),
                Filter::match_all(),
            ),
            b,
        )];
        let table = SubscriptionTable::build(a, &routing, &subs);
        assert!(table.is_empty());
    }

    #[test]
    fn paper_topology_tables_reach_all_160_subscribers() {
        let mut rng = SimRng::seed_from(9);
        let topo = Topology::paper_topology(&mut rng);
        let routing = Routing::compute(&topo.graph);
        let subs: Vec<(Subscription, BrokerId)> = topo
            .subscribers
            .iter()
            .enumerate()
            .map(|(i, (s, b))| {
                (
                    Subscription::best_effort(
                        SubscriptionId::new(i as u32),
                        *s,
                        Filter::match_all(),
                    ),
                    *b,
                )
            })
            .collect();
        // Every broker must be able to reach every subscriber in the paper's mesh.
        let tables = SubscriptionTable::build_all(&topo.graph, &routing, &subs);
        for t in &tables {
            assert_eq!(t.len(), 160, "broker {} table incomplete", t.broker());
        }
        // First-layer brokers must route everything downstream (no local subscribers).
        let first_layer = &tables[0];
        assert!(first_layer.entries().iter().all(|e| !e.is_local()));
    }
}
