//! The overlay graph of message brokers.

use bdps_net::link::{Link, LinkQuality};
use bdps_types::error::{BdpsError, Result};
use bdps_types::id::{BrokerId, LinkId, PublisherId, SubscriberId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One broker of the overlay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrokerNode {
    /// The broker's identifier (equal to its index in the graph).
    pub id: BrokerId,
    /// The layer the broker belongs to in a layered topology, if any.
    pub layer: Option<u32>,
    /// Publishers attached directly to this broker.
    pub publishers: Vec<PublisherId>,
    /// Subscribers attached directly to this broker.
    pub subscribers: Vec<SubscriberId>,
}

impl BrokerNode {
    /// Returns true when the broker serves at least one local subscriber
    /// (an *edge* broker in the paper's mesh terminology).
    pub fn is_edge(&self) -> bool {
        !self.subscribers.is_empty()
    }

    /// Returns true when the broker has at least one attached publisher.
    pub fn is_publisher_broker(&self) -> bool {
        !self.publishers.is_empty()
    }
}

/// The overlay network: brokers plus directed links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OverlayGraph {
    brokers: Vec<BrokerNode>,
    links: Vec<Link>,
    /// Outgoing links per broker (indices into `links`).
    outgoing: Vec<Vec<LinkId>>,
}

impl OverlayGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a broker and returns its identifier.
    pub fn add_broker(&mut self, layer: Option<u32>) -> BrokerId {
        let id = BrokerId::new(self.brokers.len() as u32);
        self.brokers.push(BrokerNode {
            id,
            layer,
            publishers: Vec::new(),
            subscribers: Vec::new(),
        });
        self.outgoing.push(Vec::new());
        id
    }

    /// Adds a directed link and returns its identifier.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist or the link is a self-loop.
    pub fn add_link(&mut self, from: BrokerId, to: BrokerId, quality: LinkQuality) -> LinkId {
        assert!(from.index() < self.brokers.len(), "unknown broker {from}");
        assert!(to.index() < self.brokers.len(), "unknown broker {to}");
        assert_ne!(from, to, "self-loops are not allowed");
        let id = LinkId::new(self.links.len() as u32);
        self.links.push(Link::new(id, from, to, quality));
        self.outgoing[from.index()].push(id);
        id
    }

    /// Adds a pair of directed links (one per direction) sharing the same
    /// quality — the paper treats a link's transmission rate as a property of
    /// the broker pair.
    pub fn add_bidirectional_link(
        &mut self,
        a: BrokerId,
        b: BrokerId,
        quality: LinkQuality,
    ) -> (LinkId, LinkId) {
        let forward = self.add_link(a, b, quality.clone());
        let reverse = self.add_link(b, a, quality);
        (forward, reverse)
    }

    /// Attaches a publisher to a broker.
    pub fn attach_publisher(&mut self, broker: BrokerId, publisher: PublisherId) {
        self.brokers[broker.index()].publishers.push(publisher);
    }

    /// Attaches a subscriber to a broker.
    pub fn attach_subscriber(&mut self, broker: BrokerId, subscriber: SubscriberId) {
        self.brokers[broker.index()].subscribers.push(subscriber);
    }

    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.brokers.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The broker with the given identifier.
    ///
    /// # Panics
    /// Panics if the identifier is out of range.
    pub fn broker(&self, id: BrokerId) -> &BrokerNode {
        &self.brokers[id.index()]
    }

    /// The link with the given identifier.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Iterates over all brokers.
    pub fn brokers(&self) -> impl Iterator<Item = &BrokerNode> {
        self.brokers.iter()
    }

    /// Iterates over all directed links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Iterates over the outgoing links of a broker.
    pub fn outgoing(&self, broker: BrokerId) -> impl Iterator<Item = &Link> {
        self.outgoing[broker.index()]
            .iter()
            .map(move |id| &self.links[id.index()])
    }

    /// The downstream neighbours of a broker (targets of its outgoing links).
    pub fn neighbors(&self, broker: BrokerId) -> Vec<BrokerId> {
        let mut ns: Vec<BrokerId> = self.outgoing(broker).map(|l| l.to).collect();
        ns.sort_unstable();
        ns.dedup();
        ns
    }

    /// The outgoing link from `from` to `to`, if one exists.
    pub fn link_between(&self, from: BrokerId, to: BrokerId) -> Option<&Link> {
        self.outgoing(from).find(|l| l.to == to)
    }

    /// Brokers that have attached publishers.
    pub fn publisher_brokers(&self) -> Vec<BrokerId> {
        self.brokers
            .iter()
            .filter(|b| b.is_publisher_broker())
            .map(|b| b.id)
            .collect()
    }

    /// Brokers that serve local subscribers (edge brokers).
    pub fn edge_brokers(&self) -> Vec<BrokerId> {
        self.brokers
            .iter()
            .filter(|b| b.is_edge())
            .map(|b| b.id)
            .collect()
    }

    /// The broker a publisher is attached to, if any.
    pub fn publisher_broker(&self, publisher: PublisherId) -> Option<BrokerId> {
        self.brokers
            .iter()
            .find(|b| b.publishers.contains(&publisher))
            .map(|b| b.id)
    }

    /// The broker a subscriber is attached to, if any.
    pub fn subscriber_broker(&self, subscriber: SubscriberId) -> Option<BrokerId> {
        self.brokers
            .iter()
            .find(|b| b.subscribers.contains(&subscriber))
            .map(|b| b.id)
    }

    /// All subscribers in the system with the broker they attach to.
    pub fn all_subscribers(&self) -> Vec<(SubscriberId, BrokerId)> {
        let mut out = Vec::new();
        for b in &self.brokers {
            for &s in &b.subscribers {
                out.push((s, b.id));
            }
        }
        out.sort_unstable();
        out
    }

    /// All publishers in the system with the broker they attach to.
    pub fn all_publishers(&self) -> Vec<(PublisherId, BrokerId)> {
        let mut out = Vec::new();
        for b in &self.brokers {
            for &p in &b.publishers {
                out.push((p, b.id));
            }
        }
        out.sort_unstable();
        out
    }

    /// Checks structural validity: at least one broker, no duplicate directed
    /// links, and (weak) connectivity when treating links as undirected.
    pub fn validate(&self) -> Result<()> {
        if self.brokers.is_empty() {
            return Err(BdpsError::InvalidTopology("graph has no brokers".into()));
        }
        let mut seen = HashSet::new();
        for l in &self.links {
            if !seen.insert((l.from, l.to)) {
                return Err(BdpsError::InvalidTopology(format!(
                    "duplicate link {} -> {}",
                    l.from, l.to
                )));
            }
        }
        if self.brokers.len() > 1 && !self.is_connected() {
            return Err(BdpsError::InvalidTopology("graph is not connected".into()));
        }
        Ok(())
    }

    /// Returns true when every broker is reachable from broker 0 treating
    /// links as undirected.
    pub fn is_connected(&self) -> bool {
        if self.brokers.is_empty() {
            return true;
        }
        let n = self.brokers.len();
        let mut undirected = vec![Vec::new(); n];
        for l in &self.links {
            undirected[l.from.index()].push(l.to.index());
            undirected[l.to.index()].push(l.from.index());
        }
        let mut visited = vec![false; n];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &undirected[u] {
                if !visited[v] {
                    visited[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdps_net::bandwidth::FixedRate;

    fn quality(rate: f64) -> LinkQuality {
        LinkQuality::new(FixedRate::new(rate))
    }

    fn small_graph() -> OverlayGraph {
        // B0 <-> B1 <-> B2, plus B0 -> B2 one-way shortcut.
        let mut g = OverlayGraph::new();
        let b0 = g.add_broker(Some(0));
        let b1 = g.add_broker(Some(1));
        let b2 = g.add_broker(Some(2));
        g.add_bidirectional_link(b0, b1, quality(60.0));
        g.add_bidirectional_link(b1, b2, quality(70.0));
        g.add_link(b0, b2, quality(200.0));
        g
    }

    #[test]
    fn construction_and_lookup() {
        let g = small_graph();
        assert_eq!(g.broker_count(), 3);
        assert_eq!(g.link_count(), 5);
        assert_eq!(g.broker(BrokerId::new(1)).layer, Some(1));
        assert_eq!(
            g.neighbors(BrokerId::new(0)),
            vec![BrokerId::new(1), BrokerId::new(2)]
        );
        assert_eq!(g.neighbors(BrokerId::new(2)), vec![BrokerId::new(1)]);
        assert!(g.link_between(BrokerId::new(0), BrokerId::new(2)).is_some());
        assert!(g.link_between(BrokerId::new(2), BrokerId::new(0)).is_none());
        assert_eq!(g.outgoing(BrokerId::new(0)).count(), 2);
    }

    #[test]
    fn attachment_and_role_queries() {
        let mut g = small_graph();
        g.attach_publisher(BrokerId::new(0), PublisherId::new(0));
        g.attach_subscriber(BrokerId::new(2), SubscriberId::new(0));
        g.attach_subscriber(BrokerId::new(2), SubscriberId::new(1));
        assert_eq!(g.publisher_brokers(), vec![BrokerId::new(0)]);
        assert_eq!(g.edge_brokers(), vec![BrokerId::new(2)]);
        assert!(g.broker(BrokerId::new(2)).is_edge());
        assert!(g.broker(BrokerId::new(0)).is_publisher_broker());
        assert_eq!(
            g.publisher_broker(PublisherId::new(0)),
            Some(BrokerId::new(0))
        );
        assert_eq!(g.publisher_broker(PublisherId::new(9)), None);
        assert_eq!(
            g.subscriber_broker(SubscriberId::new(1)),
            Some(BrokerId::new(2))
        );
        assert_eq!(g.all_subscribers().len(), 2);
        assert_eq!(g.all_publishers().len(), 1);
    }

    #[test]
    fn validation_detects_problems() {
        assert!(small_graph().validate().is_ok());

        let empty = OverlayGraph::new();
        assert!(matches!(
            empty.validate(),
            Err(BdpsError::InvalidTopology(_))
        ));

        let mut dup = OverlayGraph::new();
        let a = dup.add_broker(None);
        let b = dup.add_broker(None);
        dup.add_link(a, b, quality(10.0));
        dup.add_link(a, b, quality(10.0));
        assert!(dup.validate().is_err());

        let mut disconnected = OverlayGraph::new();
        disconnected.add_broker(None);
        disconnected.add_broker(None);
        assert!(!disconnected.is_connected());
        assert!(disconnected.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let mut g = OverlayGraph::new();
        let a = g.add_broker(None);
        g.add_link(a, a, quality(10.0));
    }

    #[test]
    fn single_broker_is_connected() {
        let mut g = OverlayGraph::new();
        g.add_broker(None);
        assert!(g.is_connected());
        assert!(g.validate().is_ok());
    }
}
