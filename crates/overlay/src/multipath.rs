//! Link-disjoint multi-path route computation.
//!
//! The paper contrasts its single-path routing with the multi-path routing of
//! mesh systems such as DCP, where "a message \[is\] transmitted via all
//! possible paths from a publisher to a subscriber to improve reliability"
//! at the cost of network traffic (§3.3). This module computes up to `k`
//! link-disjoint minimum-mean-rate paths by repeated Dijkstra searches with
//! used links removed, which the traffic-overhead ablation uses to quantify
//! that cost.

use crate::graph::OverlayGraph;
use bdps_types::id::{BrokerId, LinkId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// One multi-path alternative.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPath {
    /// The brokers of the path, endpoints included.
    pub brokers: Vec<BrokerId>,
    /// The links of the path, in order.
    pub links: Vec<LinkId>,
    /// Sum of mean per-KB rates along the path (ms/KB).
    pub mean_rate: f64,
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    broker: BrokerId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.broker.cmp(&self.broker))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes up to `k` link-disjoint minimum-mean-rate paths from `from` to `to`.
///
/// Paths are returned in the order they were found (cheapest first); fewer
/// than `k` paths are returned when the graph does not contain more
/// link-disjoint alternatives.
pub fn link_disjoint_paths(
    graph: &OverlayGraph,
    from: BrokerId,
    to: BrokerId,
    k: usize,
) -> Vec<MultiPath> {
    let mut used_links: HashSet<LinkId> = HashSet::new();
    let mut paths = Vec::new();
    for _ in 0..k {
        match shortest_path_avoiding(graph, from, to, &used_links) {
            Some(path) => {
                for &l in &path.links {
                    used_links.insert(l);
                }
                paths.push(path);
            }
            None => break,
        }
    }
    paths
}

fn shortest_path_avoiding(
    graph: &OverlayGraph,
    from: BrokerId,
    to: BrokerId,
    avoid: &HashSet<LinkId>,
) -> Option<MultiPath> {
    if from == to {
        return Some(MultiPath {
            brokers: vec![from],
            links: vec![],
            mean_rate: 0.0,
        });
    }
    let n = graph.broker_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(BrokerId, LinkId)>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[from.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        broker: from,
    });
    while let Some(HeapEntry { dist: d, broker: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        if u == to {
            break;
        }
        for link in graph.outgoing(u) {
            if avoid.contains(&link.id) {
                continue;
            }
            let v = link.to;
            if done[v.index()] {
                continue;
            }
            let cand = d + link.quality.rate_distribution().mean();
            if cand < dist[v.index()] {
                dist[v.index()] = cand;
                prev[v.index()] = Some((u, link.id));
                heap.push(HeapEntry {
                    dist: cand,
                    broker: v,
                });
            }
        }
    }
    if !dist[to.index()].is_finite() {
        return None;
    }
    // Reconstruct.
    let mut brokers = vec![to];
    let mut links = Vec::new();
    let mut cur = to;
    while cur != from {
        let (p, l) = prev[cur.index()]?;
        links.push(l);
        brokers.push(p);
        cur = p;
    }
    brokers.reverse();
    links.reverse();
    Some(MultiPath {
        brokers,
        links,
        mean_rate: dist[to.index()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdps_net::bandwidth::FixedRate;
    use bdps_net::link::LinkQuality;

    fn quality(rate: f64) -> LinkQuality {
        LinkQuality::new(FixedRate::new(rate))
    }

    /// Diamond with two disjoint routes of different cost.
    fn diamond() -> OverlayGraph {
        let mut g = OverlayGraph::new();
        let b0 = g.add_broker(None);
        let b1 = g.add_broker(None);
        let b2 = g.add_broker(None);
        let b3 = g.add_broker(None);
        g.add_bidirectional_link(b0, b1, quality(50.0));
        g.add_bidirectional_link(b1, b3, quality(50.0));
        g.add_bidirectional_link(b0, b2, quality(80.0));
        g.add_bidirectional_link(b2, b3, quality(80.0));
        g
    }

    #[test]
    fn finds_two_disjoint_paths_in_order_of_cost() {
        let g = diamond();
        let paths = link_disjoint_paths(&g, BrokerId::new(0), BrokerId::new(3), 4);
        assert_eq!(paths.len(), 2);
        assert!((paths[0].mean_rate - 100.0).abs() < 1e-9);
        assert!((paths[1].mean_rate - 160.0).abs() < 1e-9);
        assert_eq!(
            paths[0].brokers,
            vec![BrokerId::new(0), BrokerId::new(1), BrokerId::new(3)]
        );
        assert_eq!(
            paths[1].brokers,
            vec![BrokerId::new(0), BrokerId::new(2), BrokerId::new(3)]
        );
        // Link-disjointness.
        let set0: HashSet<_> = paths[0].links.iter().collect();
        assert!(paths[1].links.iter().all(|l| !set0.contains(l)));
    }

    #[test]
    fn k_limits_the_number_of_paths() {
        let g = diamond();
        let paths = link_disjoint_paths(&g, BrokerId::new(0), BrokerId::new(3), 1);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn same_source_and_destination() {
        let g = diamond();
        let paths = link_disjoint_paths(&g, BrokerId::new(1), BrokerId::new(1), 3);
        assert_eq!(paths.len(), 3); // trivial empty path repeated (no links consumed)
        assert!(paths[0].links.is_empty());
        assert_eq!(paths[0].mean_rate, 0.0);
    }

    #[test]
    fn unreachable_destination_yields_no_paths() {
        let mut g = OverlayGraph::new();
        let a = g.add_broker(None);
        g.add_broker(None);
        let c = g.add_broker(None);
        g.add_bidirectional_link(a, c, quality(50.0));
        let paths = link_disjoint_paths(&g, BrokerId::new(0), BrokerId::new(1), 2);
        assert!(paths.is_empty());
    }
}
