//! Sparse covering-aggregated subscription tables.
//!
//! The dense layout ([`SubscriptionTable`]) replicates one entry per
//! subscription on **every** broker — `O(brokers × subscriptions)` memory,
//! ~12 GB at 10⁵ subscribers on the grown mesh. The paper's §4.2 tables only
//! need, per broker, enough to pick the next hop and the remaining-path
//! statistics for each matching message, and those routed fields depend on
//! the *destination edge broker*, not on the individual subscription: every
//! subscription attached at the same edge shares one `(next hop, link, path
//! stats)` triple.
//!
//! The sparse layout exploits exactly that:
//!
//! * each broker keeps **full entries only for locally attached
//!   subscribers** (the edge expansion set);
//! * per remote destination it keeps one **aggregate entry** — the routed
//!   fields towards that edge broker plus the size of the member group and
//!   its covering set;
//! * the subscription metadata itself (filter, subscriber, QoS) lives once,
//!   globally, in a [`SharedPopulation`] registry every broker references
//!   through an `Arc` — including one [`CoverForest`] per edge broker, the
//!   covering set interior brokers route on for raw (unscoped) messages.
//!
//! Per-broker state therefore drops from `O(subscriptions)` to
//! `O(local + brokers)`, and the registry is counted once instead of once
//! per broker. Both layouts produce **bit-identical** simulation results —
//! the dense layout survives as the differential oracle
//! (`tests/layout_equivalence.rs`); the sparse resolution path reads the
//! same routed fields the dense table materialises, because the engine
//! keeps aggregates in lock-step with routing exactly where it used to keep
//! dense entries.

use crate::pathstats::PathStats;
use crate::routing::Routing;
use crate::subtable::{RetargetOutcome, SubTableEntry, SubscriptionTable};
use bdps_filter::cover::CoverForest;
use bdps_filter::filter::Filter;
use bdps_filter::scope::ScopeSet;
use bdps_filter::selectivity::SelectivityModel;
use bdps_filter::subscription::Subscription;
use bdps_types::id::{BrokerId, LinkId, SubscriberId, SubscriptionId};
use bdps_types::message::MessageHead;
use bdps_types::money::Price;
use bdps_types::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, RwLock};

/// How a broker materialises its subscription table.
///
/// Mirrors the simulator's `RebuildPolicy` axis: both layouts produce
/// bit-identical simulation reports — the dense layout is the differential
/// oracle the sparse layout is pinned against — so the choice trades memory
/// and maintenance cost, never results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableLayout {
    /// Every broker stores one full entry per subscription — the reference
    /// implementation, kept as the oracle. `O(brokers × subscriptions)`
    /// memory.
    #[default]
    Dense,
    /// Brokers store full entries only for locally attached subscribers plus
    /// one covering-aggregated entry per remote destination; subscription
    /// metadata lives once in a shared registry. `O(population + brokers²)`
    /// memory globally.
    Sparse,
}

impl TableLayout {
    /// Every selectable layout, oracle first.
    pub const ALL: [TableLayout; 2] = [TableLayout::Dense, TableLayout::Sparse];

    /// Stable CLI/report name (`"dense"` / `"sparse"`).
    pub fn name(self) -> &'static str {
        match self {
            TableLayout::Dense => "dense",
            TableLayout::Sparse => "sparse",
        }
    }

    /// Resolves a CLI name (case-insensitive): `"dense"` (alias
    /// `"replicated"`) or `"sparse"` (aliases `"aggregated"`, `"covering"`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "dense" | "replicated" => Some(TableLayout::Dense),
            "sparse" | "aggregated" | "covering" => Some(TableLayout::Sparse),
            _ => None,
        }
    }
}

impl std::fmt::Display for TableLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One subscription's global record in the shared registry.
#[derive(Debug, Clone)]
pub struct MemberRecord {
    /// The subscription itself (filter, subscriber, QoS).
    pub subscription: Subscription,
    /// The edge broker it attaches to.
    pub edge: BrokerId,
    /// The registry epoch at which this member joined (see
    /// [`SharedPopulation::epoch`]). Aggregate-scoped forwarding uses it to
    /// reproduce exact-mode scope-freeze semantics: a publication delivers
    /// only to members whose `join_epoch` does not exceed the registry epoch
    /// snapshotted when the message was published.
    pub join_epoch: u64,
}

/// Bit marking a *sentinel* subscription id inside a scope: the id names a
/// destination edge broker (an aggregate), not a concrete subscription.
/// Real subscription ids never carry this bit — population generators mint
/// ids sequentially from zero — so sentinel and member ids share the scope
/// machinery without collision.
pub const AGGREGATE_SCOPE_BIT: u32 = 1 << 31;

/// The sentinel scope id standing for "every member attached at `dest`".
/// Monotone in `dest`, so a scope built from ascending destinations is
/// already in ascending id order.
pub fn aggregate_scope_id(dest: BrokerId) -> SubscriptionId {
    debug_assert!(dest.raw() < AGGREGATE_SCOPE_BIT);
    SubscriptionId::new(AGGREGATE_SCOPE_BIT | dest.raw())
}

/// Decodes a sentinel scope id back to its destination edge broker;
/// `None` when `id` is an ordinary subscription id.
pub fn aggregate_scope_dest(id: SubscriptionId) -> Option<BrokerId> {
    (id.raw() & AGGREGATE_SCOPE_BIT != 0).then(|| BrokerId::new(id.raw() & !AGGREGATE_SCOPE_BIT))
}

/// The QoS bounds an edge group's members collectively promise — the
/// metadata an interior [`AggregateEntry`] carries so scheduling strategies
/// can rank and shed aggregate copies without enumerating the members
/// (ROADMAP item 2(a)). Folded over the group's *epoch-visible* members:
///
/// * `min_allowed_delay` — the tightest subscriber-specified bound in the
///   group (`Duration::MAX` while every member is best-effort). A copy
///   older than this bound can no longer be on time for the most demanding
///   member; expiry-based shedding keys off it.
/// * `earning_sum` — the total price the group pays if the copy reaches
///   every member on time: the upper bound on what the copy can earn, and
///   the value EB/PC/EBPC score it by.
/// * `earning_max` — the single largest member price, for audits and for
///   strategies that want a per-member rather than per-group bound.
/// * `members` — how many members the fold covered (0 = empty envelope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosEnvelope {
    /// Minimum subscriber-specified allowed delay over the members.
    pub min_allowed_delay: Duration,
    /// Sum of member prices (saturating).
    pub earning_sum: Price,
    /// Maximum single member price.
    pub earning_max: Price,
    /// Number of members folded in.
    pub members: usize,
}

impl QosEnvelope {
    /// The envelope of an empty group: unbounded delay, zero earning.
    pub const EMPTY: QosEnvelope = QosEnvelope {
        min_allowed_delay: Duration::MAX,
        earning_sum: Price::ZERO,
        earning_max: Price::ZERO,
        members: 0,
    };

    /// Folds one member's QoS into the envelope.
    pub fn fold(self, allowed_delay: Duration, price: Price) -> QosEnvelope {
        QosEnvelope {
            min_allowed_delay: self.min_allowed_delay.min(allowed_delay),
            earning_sum: self.earning_sum.saturating_add(price),
            earning_max: self.earning_max.max(price),
            members: self.members + 1,
        }
    }

    /// Returns true when no member was folded in (the [`EMPTY`](Self::EMPTY)
    /// value) — an aggregate copy toward such a group can deliver nothing.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }
}

/// One member's QoS contribution, kept in join-epoch order so the envelope
/// of any epoch prefix can be answered without re-folding (see
/// [`EdgeGroup::envelope_at`]).
#[derive(Debug, Clone, Copy)]
struct MemberQos {
    id: SubscriptionId,
    join_epoch: u64,
    allowed_delay: Duration,
    price: Price,
}

/// The subscriptions attached at one edge broker, with their covering set.
#[derive(Debug, Clone, Default)]
pub struct EdgeGroup {
    /// Member ids, ascending.
    ids: Vec<SubscriptionId>,
    /// The covering forest over the members' filters.
    forest: CoverForest,
    /// The selectivity-gated merge of the forest's roots — the compact
    /// envelope publish-time aggregate matching consults. Sound by
    /// construction: every root is covered by some summary filter (each
    /// root either enters the summary verbatim or is `cover_join`ed into a
    /// slot, and a join covers both operands), so any head matching a member
    /// matches its root and therefore some summary filter. Derived state:
    /// recomputed from the forest on every membership change, excluded from
    /// digests.
    summary: Vec<Filter>,
    /// Member QoS in ascending `join_epoch` order (epochs are minted
    /// monotonically, so inserts append; a removal rebuilds the prefix).
    qos: Vec<MemberQos>,
    /// `qos_prefix[k]` is the envelope folded over `qos[..=k]` — the
    /// envelope of the group as of `qos[k].join_epoch`. Derived state,
    /// rebuilt on removal, extended O(1) on insert.
    qos_prefix: Vec<QosEnvelope>,
}

impl EdgeGroup {
    /// Number of members attached at this edge.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns true when no member is attached.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Member ids, ascending.
    pub fn ids(&self) -> &[SubscriptionId] {
        &self.ids
    }

    /// The covering forest over the members' filters.
    pub fn forest(&self) -> &CoverForest {
        &self.forest
    }

    /// The summary filters publish-time aggregate matching consults
    /// (at most [`root_count`](CoverForest::root_count) of them).
    pub fn summary(&self) -> &[Filter] {
        &self.summary
    }

    /// Returns true when some summary filter matches the head — the
    /// aggregate-level publish gate. Sound (no member match is missed);
    /// false positives are possible and bounded by the looseness gate.
    pub fn summary_matches(&self, head: &MessageHead) -> bool {
        self.summary.iter().any(|f| f.matches(head))
    }

    /// The QoS envelope over the group's **current** members.
    pub fn envelope(&self) -> QosEnvelope {
        self.qos_prefix
            .last()
            .copied()
            .unwrap_or(QosEnvelope::EMPTY)
    }

    /// The QoS envelope over the current members whose `join_epoch` does not
    /// exceed `epoch` — the fold a publication frozen at that epoch may
    /// legitimately see. Members that joined later are invisible (exact-mode
    /// scope-freeze semantics); members that left are already gone from
    /// `qos`, so the answer is always over *current* epoch-visible members.
    /// `O(log members)`: a binary search into the prefix-fold vector.
    pub fn envelope_at(&self, epoch: u64) -> QosEnvelope {
        let n = self.qos.partition_point(|m| m.join_epoch <= epoch);
        if n == 0 {
            QosEnvelope::EMPTY
        } else {
            self.qos_prefix[n - 1]
        }
    }

    /// Appends one member's QoS (caller guarantees `join_epoch` exceeds
    /// every recorded one — registry epochs are minted monotonically).
    fn push_qos(&mut self, member: MemberQos) {
        debug_assert!(self
            .qos
            .last()
            .is_none_or(|last| last.join_epoch < member.join_epoch));
        let next = self.envelope().fold(member.allowed_delay, member.price);
        self.qos.push(member);
        self.qos_prefix.push(next);
    }

    /// Drops one member's QoS contribution and re-derives the prefix folds,
    /// so the envelope shrinks in the same instant the member list does.
    fn remove_qos(&mut self, id: SubscriptionId) {
        if let Some(pos) = self.qos.iter().position(|m| m.id == id) {
            self.qos.remove(pos);
            self.rebuild_qos_prefix();
        }
    }

    /// Recomputes `qos_prefix` from `qos` (O(members)).
    fn rebuild_qos_prefix(&mut self) {
        self.qos_prefix.clear();
        let mut acc = QosEnvelope::EMPTY;
        for m in &self.qos {
            acc = acc.fold(m.allowed_delay, m.price);
            self.qos_prefix.push(acc);
        }
    }

    /// Recomputes the summary from the forest roots: greedy first-fit over
    /// roots in ascending id order, merging a root into an existing slot via
    /// [`Filter::cover_join`] only when the model says the join stays tight —
    /// the join's estimated selectivity may exceed the looser operand's by at
    /// most `looseness`. With `looseness = 0` the summary is exactly the
    /// covering set; larger bounds trade publish-time matching cost for
    /// false-positive forwards.
    fn rebuild_summary(&mut self, model: &SelectivityModel, looseness: f64) {
        self.summary.clear();
        let mut slot_sels: Vec<f64> = Vec::new();
        for (_, filter) in self.forest.roots() {
            let sel = model.filter_selectivity(filter);
            let mut merged = false;
            for (slot, slot_sel) in self.summary.iter_mut().zip(slot_sels.iter_mut()) {
                let join = slot.cover_join(filter);
                let join_sel = model.filter_selectivity(&join);
                if join_sel - slot_sel.max(sel) <= looseness {
                    *slot = join;
                    *slot_sel = join_sel;
                    merged = true;
                    break;
                }
            }
            if !merged {
                self.summary.push(filter.clone());
                slot_sels.push(sel);
            }
        }
    }
}

/// The population-wide registry the sparse layout shares across brokers:
/// one record per subscription plus one [`EdgeGroup`] (member list +
/// covering forest + summary) per edge broker. Stored once globally — this
/// is the memory the dense layout replicates `brokers` times.
#[derive(Debug, Clone)]
pub struct SharedPopulation {
    members: HashMap<SubscriptionId, MemberRecord>,
    by_edge: BTreeMap<BrokerId, EdgeGroup>,
    /// Monotone membership-change counter: bumped on every insert. Publish
    /// paths snapshot it to freeze "who had joined by then" without
    /// enumerating the population.
    epoch: u64,
    /// The attribute model gating summary merges.
    selectivity: SelectivityModel,
    /// Maximum estimated-selectivity slack a summary merge may introduce.
    cover_looseness: f64,
}

/// Default looseness bound for summary merges: a join may widen the
/// estimated match probability by at most this much over its looser operand.
pub const DEFAULT_COVER_LOOSENESS: f64 = 0.05;

impl Default for SharedPopulation {
    fn default() -> Self {
        SharedPopulation {
            members: HashMap::new(),
            by_edge: BTreeMap::new(),
            epoch: 0,
            // The paper-workload model knows A1/A2. Unknown attributes
            // estimate selectivity 1, so the gate is blind to widening
            // among them and merges freely; install a richer model via
            // `set_cover_policy` when the workload uses other attributes.
            selectivity: SelectivityModel::paper_workload(),
            cover_looseness: DEFAULT_COVER_LOOSENESS,
        }
    }
}

impl SharedPopulation {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SharedPopulation::default()
    }

    /// Builds the registry from a population (the engine's subscription
    /// list; ids must be distinct).
    pub fn from_population(subscriptions: &[(Subscription, BrokerId)]) -> Self {
        let mut pop = SharedPopulation::new();
        for (sub, edge) in subscriptions {
            pop.insert(sub.clone(), *edge);
        }
        pop
    }

    /// Registers a subscription attached at `edge` (replacing any previous
    /// record for the same id). Bumps the registry epoch; the new member's
    /// `join_epoch` is the bumped value, so a publish that snapshotted the
    /// epoch earlier never delivers to it.
    pub fn insert(&mut self, subscription: Subscription, edge: BrokerId) {
        let id = subscription.id;
        self.remove(id);
        self.epoch += 1;
        let group = self.by_edge.entry(edge).or_default();
        let pos = group.ids.partition_point(|&i| i < id);
        group.ids.insert(pos, id);
        group.forest.insert(id, subscription.filter.clone());
        group.rebuild_summary(&self.selectivity, self.cover_looseness);
        group.push_qos(MemberQos {
            id,
            join_epoch: self.epoch,
            allowed_delay: subscription.allowed_delay(),
            price: subscription.price,
        });
        self.members.insert(
            id,
            MemberRecord {
                subscription,
                edge,
                join_epoch: self.epoch,
            },
        );
    }

    /// Unregisters a subscription, returning its record when present.
    pub fn remove(&mut self, id: SubscriptionId) -> Option<MemberRecord> {
        let record = self.members.remove(&id)?;
        if let Some(group) = self.by_edge.get_mut(&record.edge) {
            if let Ok(pos) = group.ids.binary_search(&id) {
                group.ids.remove(pos);
            }
            group.forest.remove(id);
            group.remove_qos(id);
            if group.is_empty() {
                self.by_edge.remove(&record.edge);
            } else {
                group.rebuild_summary(&self.selectivity, self.cover_looseness);
            }
        }
        Some(record)
    }

    /// The current membership epoch (bumped on every insert).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Installs a different selectivity model and looseness bound for the
    /// summary merge gate, recomputing every group's summary under the new
    /// policy.
    pub fn set_cover_policy(&mut self, model: SelectivityModel, looseness: f64) {
        self.selectivity = model;
        self.cover_looseness = looseness;
        for group in self.by_edge.values_mut() {
            group.rebuild_summary(&self.selectivity, self.cover_looseness);
        }
    }

    /// The looseness bound currently gating summary merges.
    pub fn cover_looseness(&self) -> f64 {
        self.cover_looseness
    }

    /// Total registered subscriptions.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns true when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The record of one subscription.
    pub fn member(&self, id: SubscriptionId) -> Option<&MemberRecord> {
        self.members.get(&id)
    }

    /// The group attached at one edge broker (absent when empty).
    pub fn group(&self, edge: BrokerId) -> Option<&EdgeGroup> {
        self.by_edge.get(&edge)
    }

    /// Folds the QoS envelope of the members attached at `edge` whose
    /// `join_epoch` does not exceed `epoch`, directly from the member
    /// records in ascending id order — deliberately **not** via the group's
    /// prefix-fold machinery, so audits comparing it against
    /// [`EdgeGroup::envelope_at`] exercise an independent derivation.
    /// Commutative folds (min / saturating sum / max) make the different
    /// iteration orders agree exactly.
    pub fn scratch_envelope(&self, edge: BrokerId, epoch: u64) -> QosEnvelope {
        let Some(group) = self.by_edge.get(&edge) else {
            return QosEnvelope::EMPTY;
        };
        let mut acc = QosEnvelope::EMPTY;
        for &id in &group.ids {
            let record = &self.members[&id];
            if record.join_epoch <= epoch {
                acc = acc.fold(
                    record.subscription.allowed_delay(),
                    record.subscription.price,
                );
            }
        }
        acc
    }

    /// Iterates `(edge broker, group)` in ascending broker order.
    pub fn groups(&self) -> impl Iterator<Item = (BrokerId, &EdgeGroup)> + '_ {
        self.by_edge.iter().map(|(b, g)| (*b, g))
    }

    /// Hashes the registry's membership — which subscriptions are attached
    /// at which edge broker — into `h`, iterating the edge map in its sorted
    /// order so the digest is deterministic. Filters are identified by
    /// subscription id: within one run an id never changes its filter, so
    /// membership pins the registry's full content. Used by the
    /// model-checking explorer's state deduplication.
    pub fn digest_into(&self, h: &mut impl std::hash::Hasher) {
        h.write_u64(self.epoch);
        h.write_usize(self.by_edge.len());
        for (edge, group) in &self.by_edge {
            h.write_u32(edge.raw());
            h.write_usize(group.ids.len());
            for id in &group.ids {
                h.write_u32(id.raw());
                h.write_u64(self.members[id].join_epoch);
            }
        }
    }

    /// The membership digest as one `u64` (see
    /// [`digest_into`](Self::digest_into)).
    pub fn state_digest(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.digest_into(&mut h);
        h.finish()
    }

    /// Rough bytes consumed by the registry (counted **once** globally,
    /// where the dense layout pays its per-entry cost on every broker).
    pub fn bytes_estimate(&self) -> u64 {
        let member_bytes =
            (std::mem::size_of::<MemberRecord>() + HASH_SLOT_OVERHEAD) * self.members.len();
        let group_bytes: usize = self
            .by_edge
            .values()
            .map(|g| {
                g.ids.len() * std::mem::size_of::<SubscriptionId>()
                    + g.forest.len() * FOREST_NODE_OVERHEAD
                    + g.qos.len() * std::mem::size_of::<MemberQos>()
                    + g.qos_prefix.len() * std::mem::size_of::<QosEnvelope>()
            })
            .sum();
        (member_bytes + group_bytes) as u64
    }
}

/// A thread-safe handle to the shared registry. The engine holds the only
/// writer; brokers read-lock once per arrival, so the lock is uncontended in
/// the single-threaded event loop and cheap enough for sweep workers (each
/// simulation owns its own registry).
pub type PopulationHandle = Arc<RwLock<SharedPopulation>>;

/// Read-locks the shared registry, recovering from poisoning.
///
/// The registry's writers (`insert`/`remove` behind the engine's churn
/// path) never unwind mid-mutation: both mutate the member map and the
/// edge-group map through ordinary collection operations whose only
/// panic sources precede the first mutation. A poisoned lock therefore
/// means *some other* panic unwound while a guard was held — typically a
/// sibling sweep cell sharing nothing but the allocator — and the data
/// behind the lock is still consistent, so read paths recover the guard
/// instead of turning one failure into a cascade. Write paths must not
/// use this: they surface a structured error instead (see
/// `bdps_sim::SimError::PopulationPoisoned`).
pub fn read_population(p: &PopulationHandle) -> std::sync::RwLockReadGuard<'_, SharedPopulation> {
    p.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Approximate per-entry bookkeeping overhead of a hash-map slot.
const HASH_SLOT_OVERHEAD: usize = 48;
/// Approximate per-member overhead of a covering-forest node (filter handle,
/// parent pointer, child-set slot).
const FOREST_NODE_OVERHEAD: usize = 72;
/// Approximate per-entry overhead of the dense table's id map + match-index
/// threshold rows.
const DENSE_ENTRY_OVERHEAD: usize = 64;
/// Approximate per-aggregate overhead of the ordered destination map.
const AGGREGATE_SLOT_OVERHEAD: usize = 32;

/// Rough bytes consumed by one dense table (entries + id map + match index).
pub fn dense_bytes_estimate(table: &SubscriptionTable) -> u64 {
    (table.len() * (std::mem::size_of::<SubTableEntry>() + DENSE_ENTRY_OVERHEAD)) as u64
}

/// One broker's aggregate entry towards a remote destination: the routed
/// fields every subscription attached there shares, plus the group's size
/// and covering-set size. This is the *whole* per-subscription state an
/// interior broker keeps for that destination — the merged path-stat
/// envelope is exact because single-path routing gives all members of a
/// destination the same remaining path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateEntry {
    /// The neighbour matching messages are forwarded to (`nb`).
    pub next_hop: BrokerId,
    /// The outgoing link towards that neighbour.
    pub next_link: LinkId,
    /// Statistics of the remaining path to the destination.
    pub stats: PathStats,
    /// Members attached at the destination.
    pub members: usize,
    /// Size of the destination's covering set (observability only).
    pub cover_roots: usize,
    /// The QoS bounds the destination's current members collectively
    /// promise (min allowed delay, earning sum/max, member count), kept in
    /// lock-step with the member list by the same rebuild/sync paths that
    /// maintain the routed fields. Publish stamps interior copies from
    /// [`EdgeGroup::envelope_at`] (the epoch-consistent fold), not from this
    /// field; this copy powers audits and observability.
    pub envelope: QosEnvelope,
}

impl AggregateEntry {
    /// Builds the aggregate towards a destination from its current route
    /// and member group — the single construction path the bulk build, the
    /// full rebuild and the incremental sync all share, so an aggregate can
    /// never differ by how it was produced.
    fn fresh(
        route: &crate::routing::RouteEntry,
        members: usize,
        cover_roots: usize,
        envelope: QosEnvelope,
    ) -> Self {
        AggregateEntry {
            next_hop: route.next_hop,
            next_link: route.next_link,
            stats: route.stats,
            members,
            cover_roots,
            envelope,
        }
    }
}

/// A layout-independent view of one table row, resolved at arrival time —
/// everything the broker state machine needs to deliver locally or build a
/// queued copy's target. Dense tables copy it out of their materialised
/// entries; sparse tables assemble it from the local table, the shared
/// registry and the per-destination aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedEntry {
    /// The subscription this row serves.
    pub subscription: SubscriptionId,
    /// The subscriber that owns it.
    pub subscriber: SubscriberId,
    /// The price paid per valid delivery.
    pub price: Price,
    /// The subscriber-specified allowed delay (`Duration::MAX` when
    /// unbounded).
    pub allowed_delay: Duration,
    /// The neighbour to forward to, or `None` for local delivery.
    pub next_hop: Option<BrokerId>,
    /// The outgoing link towards the next hop, when remote.
    pub next_link: Option<LinkId>,
    /// Statistics of the remaining path to the subscriber.
    pub stats: PathStats,
}

impl ResolvedEntry {
    /// Resolves a materialised dense entry.
    pub fn from_entry(e: &SubTableEntry) -> Self {
        ResolvedEntry {
            subscription: e.subscription.id,
            subscriber: e.subscription.subscriber,
            price: e.subscription.price,
            allowed_delay: e.subscription.allowed_delay(),
            next_hop: e.next_hop,
            next_link: e.next_link,
            stats: e.stats,
        }
    }
}

/// The sparse table of one broker: full entries for locals, one aggregate
/// per reachable remote destination, and a handle to the shared registry.
#[derive(Debug, Clone)]
pub struct SparseTable {
    broker: BrokerId,
    /// Full entries for locally attached subscriptions (the edge-expansion
    /// set), reusing the dense machinery — including its matching index for
    /// unscoped arrivals.
    local: SubscriptionTable,
    /// Aggregate entries keyed by destination edge broker. Invariant: an
    /// entry exists iff the destination has at least one member, is not
    /// this broker, and is currently reachable; its fields equal
    /// `routing.route(self.broker, dest)` and the group's current sizes.
    aggregates: BTreeMap<BrokerId, AggregateEntry>,
    population: PopulationHandle,
}

impl SparseTable {
    /// Builds the sparse table of `broker` over the current routing and the
    /// shared registry.
    pub fn build(broker: BrokerId, routing: &Routing, population: &PopulationHandle) -> Self {
        let mut table = SparseTable {
            broker,
            local: SubscriptionTable::new(broker),
            aggregates: BTreeMap::new(),
            population: Arc::clone(population),
        };
        {
            let pop = read_population(population);
            let mut locals = Vec::new();
            if let Some(group) = pop.group(broker) {
                for &id in group.ids() {
                    let record = pop.member(id).expect("group member registered");
                    locals.push(SubTableEntry {
                        subscription: record.subscription.clone(),
                        edge_broker: broker,
                        next_hop: None,
                        next_link: None,
                        stats: PathStats::local(),
                    });
                }
            }
            table.local = SubscriptionTable::from_entries(broker, locals);
        }
        table.rebuild_aggregates(routing);
        table
    }

    /// The broker this table belongs to.
    pub fn broker(&self) -> BrokerId {
        self.broker
    }

    /// The local (edge-expansion) entries.
    pub fn local(&self) -> &SubscriptionTable {
        &self.local
    }

    /// The aggregate entries, keyed by destination, ascending.
    pub fn aggregates(&self) -> impl Iterator<Item = (BrokerId, &AggregateEntry)> + '_ {
        self.aggregates.iter().map(|(b, a)| (*b, a))
    }

    /// Number of aggregate entries currently held.
    pub fn aggregate_count(&self) -> usize {
        self.aggregates.len()
    }

    /// The aggregate entry towards one destination, when that destination
    /// has members and is currently reachable from this broker.
    pub fn aggregate(&self, dest: BrokerId) -> Option<&AggregateEntry> {
        self.aggregates.get(&dest)
    }

    /// The shared registry handle.
    pub fn population(&self) -> &PopulationHandle {
        &self.population
    }

    /// Re-points this table at a different registry handle. Used when a
    /// simulation is forked for model checking: the branch deep-clones the
    /// registry and every cloned broker table must reference the copy, not
    /// the original, or branches would corrupt each other under churn.
    pub fn set_population(&mut self, population: &PopulationHandle) {
        self.population = Arc::clone(population);
    }

    /// Hashes the table's routed content — the local edge-expansion entries
    /// plus every aggregate's routed fields and sizes, in ascending
    /// destination order. The shared registry is digested separately by its
    /// owner (one copy globally), not per broker.
    pub fn digest_into(&self, h: &mut impl std::hash::Hasher) {
        self.local.digest_into(h);
        h.write_usize(self.aggregates.len());
        for (dest, a) in &self.aggregates {
            h.write_u32(dest.raw());
            h.write_u32(a.next_hop.raw());
            h.write_u32(a.next_link.raw());
            h.write_u32(a.stats.downstream_brokers);
            h.write_u64(a.stats.rate.mean().to_bits());
            h.write_u64(a.stats.rate.variance().to_bits());
            h.write_usize(a.members);
            h.write_usize(a.cover_roots);
            h.write_u64(a.envelope.min_allowed_delay.as_micros());
            h.write_i64(a.envelope.earning_sum.millis());
            h.write_i64(a.envelope.earning_max.millis());
            h.write_usize(a.envelope.members);
        }
    }

    /// Adds a locally attached subscription's full entry (the edge half of a
    /// join; the registry is updated by the caller).
    pub fn insert_local(&mut self, subscription: Subscription) {
        self.local.insert(SubTableEntry {
            edge_broker: self.broker,
            next_hop: None,
            next_link: None,
            stats: PathStats::local(),
            subscription,
        });
    }

    /// Removes a locally attached subscription's entry, returning true when
    /// it was present.
    pub fn remove_local(&mut self, id: SubscriptionId) -> bool {
        self.local.remove(id).is_some()
    }

    /// Brings the aggregate entry towards `dest` in line with the current
    /// routing and registry — the sparse analogue of
    /// [`SubscriptionTable::retarget_entries`], patching **one aggregate**
    /// where the dense path patches one entry per subscription. Called after
    /// a routing delta names `dest`, and after a join/leave changes the
    /// group at `dest`. Returns the patch counters (at most one of
    /// retargeted / inserted / removed is 1).
    pub fn sync_aggregate(&mut self, routing: &Routing, dest: BrokerId) -> RetargetOutcome {
        let mut outcome = RetargetOutcome::default();
        if dest == self.broker {
            return outcome; // locals carry no route and never move
        }
        let group_sizes = {
            let pop = read_population(&self.population);
            pop.group(dest)
                .map(|g| (g.len(), g.forest().root_count(), g.envelope()))
        };
        match (group_sizes, routing.route(self.broker, dest)) {
            (Some((members, cover_roots, envelope)), Some(route)) => {
                let fresh = AggregateEntry::fresh(route, members, cover_roots, envelope);
                match self.aggregates.insert(dest, fresh) {
                    Some(old) if old == fresh => {} // no-op patch
                    Some(_) => outcome.retargeted += 1,
                    None => outcome.inserted += 1,
                }
            }
            _ => {
                if self.aggregates.remove(&dest).is_some() {
                    outcome.removed += 1;
                }
            }
        }
        outcome
    }

    /// Rebuilds every aggregate from scratch over the current routing and
    /// registry — the sparse analogue of a full table rebuild, used by the
    /// full rebuild policy and by mass liveness transitions.
    pub fn rebuild_aggregates(&mut self, routing: &Routing) {
        self.aggregates.clear();
        let pop = read_population(&self.population);
        for (dest, group) in pop.groups() {
            if dest == self.broker {
                continue;
            }
            if let Some(route) = routing.route(self.broker, dest) {
                self.aggregates.insert(
                    dest,
                    AggregateEntry::fresh(
                        route,
                        group.len(),
                        group.forest().root_count(),
                        group.envelope(),
                    ),
                );
            }
        }
    }

    /// Resolves every subscription of a frozen scope in scope order, calling
    /// `f` for each one this broker can currently serve — the sparse hot
    /// path. Locals resolve through the local table; remotes through the
    /// registry (one read-lock for the whole scope) and the per-destination
    /// aggregate. A subscription that has left the population, or whose edge
    /// broker is unreachable, is skipped — exactly the rows the dense table
    /// would not hold.
    pub fn resolve_scope(&self, scope: &ScopeSet, mut f: impl FnMut(ResolvedEntry)) {
        let pop = read_population(&self.population);
        for id in scope.iter() {
            if let Some(e) = self.local.entry(id) {
                f(ResolvedEntry::from_entry(e));
                continue;
            }
            let Some(record) = pop.member(id) else {
                continue; // left the population since the scope froze
            };
            let Some(agg) = self.aggregates.get(&record.edge) else {
                continue; // unreachable (or local-but-removed): not served here
            };
            f(ResolvedEntry {
                subscription: id,
                subscriber: record.subscription.subscriber,
                price: record.subscription.price,
                allowed_delay: record.subscription.allowed_delay(),
                next_hop: Some(agg.next_hop),
                next_link: Some(agg.next_link),
                stats: agg.stats,
            });
        }
    }

    /// All rows matching a raw (unscoped) message head, ascending by
    /// subscription id — the covering-based routing path: per destination
    /// the aggregate's covering set gates the check (sound, so no match is
    /// missed), and only when a cover matches are the member filters
    /// consulted, so a head matching no member is never delivered.
    pub fn matching_all(&self, head: &MessageHead) -> Vec<ResolvedEntry> {
        let pop = read_population(&self.population);
        let mut out: Vec<ResolvedEntry> = self
            .local
            .matching(head)
            .into_iter()
            .map(ResolvedEntry::from_entry)
            .collect();
        for (&dest, agg) in &self.aggregates {
            let Some(group) = pop.group(dest) else {
                continue;
            };
            if !group.forest().any_root_matches(head) {
                continue; // the aggregate gate: no member can match
            }
            for (id, filter) in group.forest().members() {
                if filter.matches(head) {
                    let record = pop.member(id).expect("group member registered");
                    out.push(ResolvedEntry {
                        subscription: id,
                        subscriber: record.subscription.subscriber,
                        price: record.subscription.price,
                        allowed_delay: record.subscription.allowed_delay(),
                        next_hop: Some(agg.next_hop),
                        next_link: Some(agg.next_link),
                        stats: agg.stats,
                    });
                }
            }
        }
        out.sort_unstable_by_key(|e| e.subscription);
        out
    }

    /// Rough bytes of this broker's own state (locals + aggregates); the
    /// shared registry is counted separately, once.
    pub fn bytes_estimate(&self) -> u64 {
        dense_bytes_estimate(&self.local)
            + (self.aggregates.len()
                * (std::mem::size_of::<AggregateEntry>() + AGGREGATE_SLOT_OVERHEAD))
                as u64
    }
}

/// A broker's subscription table under either layout. The broker state
/// machine resolves arrivals through this enum so the scheduling pipeline
/// downstream is completely layout-agnostic — which is what makes the
/// dense-vs-sparse differential oracle meaningful.
#[derive(Debug, Clone)]
pub enum BrokerTable {
    /// The dense replicated table (the oracle).
    Dense(SubscriptionTable),
    /// The sparse covering-aggregated table.
    Sparse(SparseTable),
}

impl From<SubscriptionTable> for BrokerTable {
    fn from(t: SubscriptionTable) -> Self {
        BrokerTable::Dense(t)
    }
}

impl From<SparseTable> for BrokerTable {
    fn from(t: SparseTable) -> Self {
        BrokerTable::Sparse(t)
    }
}

impl BrokerTable {
    /// The broker this table belongs to.
    pub fn broker(&self) -> BrokerId {
        match self {
            BrokerTable::Dense(t) => t.broker(),
            BrokerTable::Sparse(t) => t.broker(),
        }
    }

    /// Which layout this table uses.
    pub fn layout(&self) -> TableLayout {
        match self {
            BrokerTable::Dense(_) => TableLayout::Dense,
            BrokerTable::Sparse(_) => TableLayout::Sparse,
        }
    }

    /// Rows this broker actually stores: dense entries, or local entries
    /// plus aggregates — the memory-relevant count.
    pub fn stored_rows(&self) -> usize {
        match self {
            BrokerTable::Dense(t) => t.len(),
            BrokerTable::Sparse(t) => t.local().len() + t.aggregate_count(),
        }
    }

    /// The dense table, when this is the dense layout.
    pub fn as_dense(&self) -> Option<&SubscriptionTable> {
        match self {
            BrokerTable::Dense(t) => Some(t),
            BrokerTable::Sparse(_) => None,
        }
    }

    /// Mutable dense access (engine maintenance paths).
    pub fn as_dense_mut(&mut self) -> Option<&mut SubscriptionTable> {
        match self {
            BrokerTable::Dense(t) => Some(t),
            BrokerTable::Sparse(_) => None,
        }
    }

    /// The sparse table, when this is the sparse layout.
    pub fn as_sparse(&self) -> Option<&SparseTable> {
        match self {
            BrokerTable::Sparse(t) => Some(t),
            BrokerTable::Dense(_) => None,
        }
    }

    /// Mutable sparse access (engine maintenance paths).
    pub fn as_sparse_mut(&mut self) -> Option<&mut SparseTable> {
        match self {
            BrokerTable::Sparse(t) => Some(t),
            BrokerTable::Dense(_) => None,
        }
    }

    /// Hashes the table's routed content under either layout (see
    /// [`SubscriptionTable::digest_into`] and [`SparseTable::digest_into`]).
    pub fn digest_into(&self, h: &mut impl std::hash::Hasher) {
        match self {
            BrokerTable::Dense(t) => {
                h.write_u8(0);
                t.digest_into(h);
            }
            BrokerTable::Sparse(t) => {
                h.write_u8(1);
                t.digest_into(h);
            }
        }
    }

    /// Resolves a frozen scope in scope order (see
    /// [`SparseTable::resolve_scope`]); dense tables resolve by id lookup.
    pub fn resolve_scope(&self, scope: &ScopeSet, mut f: impl FnMut(ResolvedEntry)) {
        match self {
            BrokerTable::Dense(t) => {
                for id in scope.iter() {
                    if let Some(e) = t.entry(id) {
                        f(ResolvedEntry::from_entry(e));
                    }
                }
            }
            BrokerTable::Sparse(t) => t.resolve_scope(scope, f),
        }
    }

    /// All rows matching a raw message head, ascending by subscription id
    /// under both layouts.
    pub fn matching_all(&self, head: &MessageHead) -> Vec<ResolvedEntry> {
        match self {
            // The dense matching index returns ascending ids already.
            BrokerTable::Dense(t) => t
                .matching(head)
                .into_iter()
                .map(ResolvedEntry::from_entry)
                .collect(),
            BrokerTable::Sparse(t) => t.matching_all(head),
        }
    }

    /// Removes a subscription's materialised row (dense entry, or sparse
    /// local entry), returning true when one was removed. Sparse aggregates
    /// are synced separately by the engine (they need routing).
    pub fn remove(&mut self, id: SubscriptionId) -> bool {
        match self {
            BrokerTable::Dense(t) => t.remove(id).is_some(),
            BrokerTable::Sparse(t) => t.remove_local(id),
        }
    }

    /// Aggregate entries held (0 under the dense layout).
    pub fn aggregate_entries(&self) -> u64 {
        match self {
            BrokerTable::Dense(_) => 0,
            BrokerTable::Sparse(t) => t.aggregate_count() as u64,
        }
    }

    /// Rough bytes of this broker's own table state (the sparse layout's
    /// shared registry is counted separately, once).
    pub fn bytes_estimate(&self) -> u64 {
        match self {
            BrokerTable::Dense(t) => dense_bytes_estimate(t),
            BrokerTable::Sparse(t) => t.bytes_estimate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OverlayGraph;
    use crate::topology::Topology;
    use bdps_filter::filter::Filter;
    use bdps_net::bandwidth::FixedRate;
    use bdps_net::link::LinkQuality;
    use bdps_stats::rng::SimRng;
    use bdps_types::id::SubscriberId;
    use bdps_types::money::Price;
    use bdps_types::qos::{DelayBound, QosClass};
    use std::collections::BTreeSet;

    fn fixed_quality(_rng: &mut SimRng) -> LinkQuality {
        LinkQuality::new(FixedRate::new(60.0))
    }

    fn head(a1: f64, a2: f64) -> MessageHead {
        let mut h = MessageHead::new();
        h.set("A1", a1).set("A2", a2);
        h
    }

    /// Line B0 - B1 - B2 with one QoS subscription on B2 and one best-effort
    /// on B1 (mirrors the dense subtable tests).
    fn line_setup() -> (Topology, Routing, Vec<(Subscription, BrokerId)>) {
        let mut rng = SimRng::seed_from(1);
        let mut topo = Topology::line(3, &mut rng, fixed_quality);
        topo.graph
            .attach_subscriber(BrokerId::new(2), SubscriberId::new(0));
        topo.graph
            .attach_subscriber(BrokerId::new(1), SubscriberId::new(1));
        let routing = Routing::compute(&topo.graph);
        let subs = vec![
            (
                Subscription::with_qos(
                    SubscriptionId::new(0),
                    SubscriberId::new(0),
                    Filter::paper_conjunction(5.0, 5.0),
                    QosClass::new(DelayBound::from_secs(10), Price::from_units(3)),
                ),
                BrokerId::new(2),
            ),
            (
                Subscription::best_effort(
                    SubscriptionId::new(1),
                    SubscriberId::new(1),
                    Filter::paper_conjunction(9.0, 9.0),
                ),
                BrokerId::new(1),
            ),
        ];
        (topo, routing, subs)
    }

    fn handle(subs: &[(Subscription, BrokerId)]) -> PopulationHandle {
        Arc::new(RwLock::new(SharedPopulation::from_population(subs)))
    }

    /// Resolution oracle: the sparse table resolves every scope id exactly
    /// as the dense table materialises it.
    fn assert_matches_dense(
        broker: BrokerId,
        routing: &Routing,
        subs: &[(Subscription, BrokerId)],
        pop: &PopulationHandle,
    ) {
        let dense = SubscriptionTable::build(broker, routing, subs);
        let sparse = SparseTable::build(broker, routing, pop);
        let all_ids: Vec<SubscriptionId> = subs.iter().map(|(s, _)| s.id).collect();
        let scope = ScopeSet::from_unsorted(all_ids);
        let mut resolved = Vec::new();
        sparse.resolve_scope(&scope, |e| resolved.push(e));
        let expected: Vec<ResolvedEntry> = scope
            .iter()
            .filter_map(|id| dense.entry(id).map(ResolvedEntry::from_entry))
            .collect();
        assert_eq!(resolved, expected, "scope resolution drifted at {broker}");
    }

    #[test]
    fn sparse_resolution_equals_dense_on_the_line() {
        let (_topo, routing, subs) = line_setup();
        let pop = handle(&subs);
        for b in 0..3 {
            assert_matches_dense(BrokerId::new(b), &routing, &subs, &pop);
        }
    }

    #[test]
    fn sparse_build_stores_locals_and_aggregates() {
        let (_topo, routing, subs) = line_setup();
        let pop = handle(&subs);
        let b0 = SparseTable::build(BrokerId::new(0), &routing, &pop);
        assert_eq!(b0.local().len(), 0, "B0 has no locals");
        assert_eq!(b0.aggregate_count(), 2, "one aggregate per remote edge");
        let b2 = SparseTable::build(BrokerId::new(2), &routing, &pop);
        assert_eq!(b2.local().len(), 1);
        assert_eq!(b2.aggregate_count(), 1);
        // Aggregate fields equal the routing towards the destination.
        let (dest, agg) = b0.aggregates().next().unwrap();
        let route = routing.route(BrokerId::new(0), dest).unwrap();
        assert_eq!(agg.next_hop, route.next_hop);
        assert_eq!(agg.stats, route.stats);
        assert_eq!(agg.members, 1);
        assert!(agg.cover_roots >= 1);
    }

    #[test]
    fn unscoped_matching_agrees_with_dense_and_orders_by_id() {
        let (_topo, routing, subs) = line_setup();
        let pop = handle(&subs);
        for b in 0..3u32 {
            let broker = BrokerId::new(b);
            let dense: BrokerTable = SubscriptionTable::build(broker, &routing, &subs).into();
            let sparse: BrokerTable = SparseTable::build(broker, &routing, &pop).into();
            for h in [head(1.0, 1.0), head(7.0, 7.0), head(9.5, 9.5)] {
                let d = dense.matching_all(&h);
                let s = sparse.matching_all(&h);
                assert_eq!(d, s, "unscoped matching drifted at {broker}");
            }
        }
    }

    #[test]
    fn sync_aggregate_follows_link_changes() {
        let (topo, healthy, subs) = line_setup();
        let pop = handle(&subs);
        let mut table = SparseTable::build(BrokerId::new(0), &healthy, &pop);
        assert_eq!(table.aggregate_count(), 2);

        // Sever B1 <-> B2: the aggregate towards B2 must disappear.
        let cut: BTreeSet<_> = topo
            .graph
            .links()
            .filter(|l| {
                (l.from == BrokerId::new(1) && l.to == BrokerId::new(2))
                    || (l.from == BrokerId::new(2) && l.to == BrokerId::new(1))
            })
            .map(|l| l.id)
            .collect();
        let severed = Routing::compute_filtered(&topo.graph, |l| !cut.contains(&l));
        let outcome = table.sync_aggregate(&severed, BrokerId::new(2));
        assert_eq!(outcome.removed, 1);
        assert_eq!(table.aggregate_count(), 1);
        // The scope no longer resolves the severed subscription.
        let scope = ScopeSet::from_unsorted(vec![SubscriptionId::new(0)]);
        let mut seen = 0;
        table.resolve_scope(&scope, |_| seen += 1);
        assert_eq!(seen, 0);

        // Restore: the aggregate reappears with fresh routed fields.
        let outcome = table.sync_aggregate(&healthy, BrokerId::new(2));
        assert_eq!(outcome.inserted, 1);
        assert_matches_dense(BrokerId::new(0), &healthy, &subs, &pop);
        // Syncing towards the own broker is a no-op.
        let own = table.sync_aggregate(&healthy, BrokerId::new(0));
        assert_eq!(own, RetargetOutcome::default());
    }

    #[test]
    fn registry_churn_keeps_groups_and_forests_consistent() {
        let (_topo, routing, subs) = line_setup();
        let pop = handle(&subs);
        {
            let mut p = pop.write().unwrap();
            p.insert(
                Subscription::best_effort(
                    SubscriptionId::new(2),
                    SubscriberId::new(2),
                    Filter::paper_conjunction(2.0, 2.0),
                ),
                BrokerId::new(2),
            );
            assert_eq!(p.len(), 3);
            assert_eq!(p.group(BrokerId::new(2)).unwrap().len(), 2);
            p.group(BrokerId::new(2))
                .unwrap()
                .forest()
                .check_invariants()
                .unwrap();
            // The narrow newcomer is covered by the wider resident filter.
            assert_eq!(p.group(BrokerId::new(2)).unwrap().forest().root_count(), 1);
            p.remove(SubscriptionId::new(0));
            assert_eq!(p.group(BrokerId::new(2)).unwrap().len(), 1);
            p.remove(SubscriptionId::new(2));
            assert!(p.group(BrokerId::new(2)).is_none(), "empty groups drop");
            assert_eq!(p.len(), 1);
        }
        // A broker syncing after the churn drops the dead aggregate.
        let mut table = SparseTable::build(BrokerId::new(0), &routing, &pop);
        assert_eq!(table.aggregate_count(), 1);
        let outcome = table.sync_aggregate(&routing, BrokerId::new(2));
        assert_eq!(outcome, RetargetOutcome::default());
    }

    #[test]
    fn unreachable_destinations_get_no_aggregate() {
        let mut g = OverlayGraph::new();
        let a = g.add_broker(None);
        let b = g.add_broker(None);
        let routing = Routing::compute(&g);
        let subs = vec![(
            Subscription::best_effort(
                SubscriptionId::new(0),
                SubscriberId::new(0),
                Filter::match_all(),
            ),
            b,
        )];
        let pop = handle(&subs);
        let table = SparseTable::build(a, &routing, &pop);
        assert_eq!(table.aggregate_count(), 0);
        assert_eq!(table.local().len(), 0);
        assert!(table.matching_all(&head(1.0, 1.0)).is_empty());
    }

    #[test]
    fn sentinel_scope_ids_round_trip_and_avoid_member_ids() {
        for b in [0u32, 1, 17, 4095, (1 << 21) - 1] {
            let dest = BrokerId::new(b);
            let id = aggregate_scope_id(dest);
            assert_eq!(aggregate_scope_dest(id), Some(dest));
            assert!(id.raw() & AGGREGATE_SCOPE_BIT != 0);
        }
        // Ordinary population ids decode to nothing.
        assert_eq!(aggregate_scope_dest(SubscriptionId::new(0)), None);
        assert_eq!(aggregate_scope_dest(SubscriptionId::new(123_456)), None);
        // Sentinels are monotone in the destination, so ascending
        // destinations produce an ascending (scope-ready) id sequence.
        assert!(aggregate_scope_id(BrokerId::new(3)) < aggregate_scope_id(BrokerId::new(4)));
    }

    #[test]
    fn epoch_advances_on_insert_and_freezes_membership() {
        let mut pop = SharedPopulation::new();
        assert_eq!(pop.epoch(), 0);
        pop.insert(
            Subscription::best_effort(
                SubscriptionId::new(0),
                SubscriberId::new(0),
                Filter::match_all(),
            ),
            BrokerId::new(1),
        );
        let snapshot = pop.epoch();
        assert_eq!(snapshot, 1);
        pop.insert(
            Subscription::best_effort(
                SubscriptionId::new(1),
                SubscriberId::new(1),
                Filter::match_all(),
            ),
            BrokerId::new(1),
        );
        assert_eq!(pop.epoch(), 2);
        // A publish that snapshotted `snapshot` sees member 0 but not the
        // later joiner.
        let group = pop.group(BrokerId::new(1)).unwrap();
        let visible: Vec<u32> = group
            .ids()
            .iter()
            .filter(|&&id| pop.member(id).unwrap().join_epoch <= snapshot)
            .map(|id| id.raw())
            .collect();
        assert_eq!(visible, vec![0]);
        // Removals do not advance the epoch; re-inserting the same id does,
        // so a leave-then-rejoin is invisible to older publications.
        pop.remove(SubscriptionId::new(0));
        assert_eq!(pop.epoch(), 2);
        pop.insert(
            Subscription::best_effort(
                SubscriptionId::new(0),
                SubscriberId::new(0),
                Filter::match_all(),
            ),
            BrokerId::new(1),
        );
        assert_eq!(pop.member(SubscriptionId::new(0)).unwrap().join_epoch, 3);
    }

    fn qos_sub(id: u32, edge_secs: u64, price_units: i64) -> Subscription {
        Subscription::with_qos(
            SubscriptionId::new(id),
            SubscriberId::new(id),
            Filter::match_all(),
            QosClass::new(
                DelayBound::from_secs(edge_secs),
                Price::from_units(price_units),
            ),
        )
    }

    #[test]
    fn envelope_folds_members_and_answers_any_epoch_prefix() {
        let mut pop = SharedPopulation::new();
        let edge = BrokerId::new(1);
        pop.insert(qos_sub(0, 30, 1), edge); // epoch 1
        pop.insert(qos_sub(1, 10, 3), edge); // epoch 2
        pop.insert(
            Subscription::best_effort(
                SubscriptionId::new(2),
                SubscriberId::new(2),
                Filter::match_all(),
            ),
            edge,
        ); // epoch 3, unbounded, unit price
        let group = pop.group(edge).unwrap();
        let now = group.envelope();
        assert_eq!(now.min_allowed_delay, Duration::from_secs(10));
        assert_eq!(now.earning_sum, Price::from_units(5));
        assert_eq!(now.earning_max, Price::from_units(3));
        assert_eq!(now.members, 3);
        // Every epoch prefix agrees with the independent scratch fold.
        for epoch in 0..=pop.epoch() {
            assert_eq!(
                pop.group(edge).unwrap().envelope_at(epoch),
                pop.scratch_envelope(edge, epoch),
                "prefix fold drifted from scratch fold at epoch {epoch}"
            );
        }
        assert_eq!(pop.group(edge).unwrap().envelope_at(0), QosEnvelope::EMPTY);
        assert_eq!(
            pop.group(edge).unwrap().envelope_at(1).earning_sum,
            Price::from_units(1)
        );
    }

    #[test]
    fn envelope_shrinks_the_same_instant_a_member_leaves() {
        let mut pop = SharedPopulation::new();
        let edge = BrokerId::new(1);
        pop.insert(qos_sub(0, 10, 3), edge);
        pop.insert(qos_sub(1, 30, 1), edge);
        let snapshot = pop.epoch();
        // The tight, expensive member leaves: the envelope over *any* epoch
        // — including ones sampled before the leave — immediately stops
        // counting it. No one-event lag between member list and envelope.
        pop.remove(SubscriptionId::new(0));
        let group = pop.group(edge).unwrap();
        let after = group.envelope_at(snapshot);
        assert_eq!(after.min_allowed_delay, Duration::from_secs(30));
        assert_eq!(after.earning_sum, Price::from_units(1));
        assert_eq!(after.members, 1);
        assert_eq!(after, pop.scratch_envelope(edge, snapshot));
    }

    #[test]
    fn envelope_ignores_rejoin_for_old_epochs() {
        let mut pop = SharedPopulation::new();
        let edge = BrokerId::new(1);
        pop.insert(qos_sub(0, 10, 3), edge);
        pop.insert(qos_sub(1, 30, 1), edge);
        let snapshot = pop.epoch();
        pop.remove(SubscriptionId::new(0));
        pop.insert(qos_sub(0, 10, 3), edge); // rejoin under a fresh epoch
        let group = pop.group(edge).unwrap();
        // A publication frozen at `snapshot` must not see the rejoined
        // member: its new join_epoch exceeds the snapshot.
        let old = group.envelope_at(snapshot);
        assert_eq!(old.members, 1);
        assert_eq!(old.min_allowed_delay, Duration::from_secs(30));
        // The current envelope counts both again.
        assert_eq!(group.envelope().members, 2);
        assert_eq!(group.envelope().min_allowed_delay, Duration::from_secs(10));
        assert_eq!(old, pop.scratch_envelope(edge, snapshot));
    }

    #[test]
    fn sync_aggregate_tracks_envelope_changes() {
        let (_topo, routing, subs) = line_setup();
        let pop = handle(&subs);
        let mut table = SparseTable::build(BrokerId::new(0), &routing, &pop);
        let before = table.aggregate(BrokerId::new(2)).unwrap().envelope;
        assert_eq!(before.min_allowed_delay, Duration::from_secs(10));
        assert_eq!(before.earning_sum, Price::from_units(3));
        assert_eq!(before.members, 1);
        // A looser member joins at B2: same route, changed envelope — the
        // sync must patch the aggregate (counted as a retarget).
        pop.write()
            .unwrap()
            .insert(qos_sub(7, 60, 2), BrokerId::new(2));
        let outcome = table.sync_aggregate(&routing, BrokerId::new(2));
        assert_eq!(outcome.retargeted, 1);
        let after = table.aggregate(BrokerId::new(2)).unwrap().envelope;
        assert_eq!(after.min_allowed_delay, Duration::from_secs(10));
        assert_eq!(after.earning_sum, Price::from_units(5));
        assert_eq!(after.earning_max, Price::from_units(3));
        assert_eq!(after.members, 2);
    }

    #[test]
    fn summary_is_sound_and_gated_by_selectivity() {
        // Three Pareto-incomparable paper-family members (so all three are
        // covering-set roots). Under the paper model the first two are tight
        // — their join (2, 2) has selectivity 0.04, a slack of 0.02 over the
        // looser operand — while joining the third into that slot would give
        // (9, 2) with selectivity 0.18, a slack of 0.135. The default 0.05
        // looseness therefore merges the tight pair and keeps the third
        // separate.
        let mut pop = SharedPopulation::new();
        let members = [
            (0u32, Filter::paper_conjunction(1.0, 2.0)),
            (1, Filter::paper_conjunction(2.0, 0.9)),
            (2, Filter::paper_conjunction(9.0, 0.5)),
        ];
        for (i, f) in &members {
            pop.insert(
                Subscription::best_effort(
                    SubscriptionId::new(*i),
                    SubscriberId::new(*i),
                    f.clone(),
                ),
                BrokerId::new(0),
            );
        }
        let group = pop.group(BrokerId::new(0)).unwrap();
        assert_eq!(group.forest().root_count(), 3);
        assert_eq!(group.summary().len(), 2, "tight pair merges, wide stays");
        // Soundness: any head matching a member matches the summary.
        for (_, f) in &members {
            for h in [
                head(0.5, 0.5),
                head(1.5, 0.4),
                head(4.0, 0.4),
                head(0.1, 1.9),
            ] {
                if f.matches(&h) {
                    assert!(group.summary_matches(&h), "summary missed a member match");
                }
            }
        }
        // A strict gate (looseness 0) reproduces the covering set exactly.
        pop.set_cover_policy(SelectivityModel::paper_workload(), 0.0);
        let group = pop.group(BrokerId::new(0)).unwrap();
        assert_eq!(group.summary().len(), group.forest().root_count());
        // A fully permissive gate collapses the group to one envelope.
        pop.set_cover_policy(SelectivityModel::paper_workload(), 1.0);
        let group = pop.group(BrokerId::new(0)).unwrap();
        assert_eq!(group.summary().len(), 1);
    }

    #[test]
    fn match_all_member_summarises_to_the_top_filter() {
        // The empty-filter-is-top convention end to end: a match_all member
        // makes its group's summary match every head.
        let mut pop = SharedPopulation::new();
        pop.insert(
            Subscription::best_effort(
                SubscriptionId::new(0),
                SubscriberId::new(0),
                Filter::match_all(),
            ),
            BrokerId::new(0),
        );
        pop.insert(
            Subscription::best_effort(
                SubscriptionId::new(1),
                SubscriberId::new(1),
                Filter::paper_conjunction(1.0, 1.0),
            ),
            BrokerId::new(0),
        );
        let group = pop.group(BrokerId::new(0)).unwrap();
        assert!(group.summary_matches(&head(9.9, 9.9)));
        assert!(group.summary_matches(&MessageHead::new()));
    }

    #[test]
    fn layout_names_round_trip() {
        for layout in TableLayout::ALL {
            assert_eq!(TableLayout::from_name(layout.name()), Some(layout));
        }
        assert_eq!(
            TableLayout::from_name("COVERING"),
            Some(TableLayout::Sparse)
        );
        assert_eq!(
            TableLayout::from_name("replicated"),
            Some(TableLayout::Dense)
        );
        assert!(TableLayout::from_name("bogus").is_none());
        assert_eq!(TableLayout::default(), TableLayout::Dense);
        assert_eq!(TableLayout::Sparse.to_string(), "sparse");
    }

    #[test]
    fn bytes_estimates_favour_sparse_interior_brokers() {
        // 4-broker star with everything attached at the leaves: the hub's
        // dense table holds every subscription; its sparse table holds only
        // aggregates.
        let mut rng = SimRng::seed_from(7);
        let mut topo = Topology::star(4, &mut rng, fixed_quality);
        let mut subs = Vec::new();
        for i in 0..30u32 {
            let edge = BrokerId::new(1 + (i % 3));
            topo.graph.attach_subscriber(edge, SubscriberId::new(i));
            subs.push((
                Subscription::best_effort(
                    SubscriptionId::new(i),
                    SubscriberId::new(i),
                    Filter::paper_conjunction(f64::from(i % 10), 5.0),
                ),
                edge,
            ));
        }
        let routing = Routing::compute(&topo.graph);
        let pop = handle(&subs);
        let hub = BrokerId::new(0);
        let dense: BrokerTable = SubscriptionTable::build(hub, &routing, &subs).into();
        let sparse: BrokerTable = SparseTable::build(hub, &routing, &pop).into();
        assert_eq!(dense.stored_rows(), 30);
        assert_eq!(sparse.stored_rows(), 3, "one aggregate per leaf");
        assert!(sparse.bytes_estimate() * 5 <= dense.bytes_estimate());
        assert_eq!(sparse.aggregate_entries(), 3);
        assert_eq!(dense.aggregate_entries(), 0);
        assert_matches_dense(hub, &routing, &subs, &pop);
    }
}
