//! Topology generators.
//!
//! The paper evaluates on a layered mesh of 32 brokers (Fig. 3): 4 first-layer
//! brokers each serving one publisher, 4 second-layer brokers connected to all
//! first-layer brokers, 8 third-layer brokers each connected to 2 random
//! second-layer brokers, and 16 fourth-layer brokers each connected to 2
//! random third-layer brokers and serving 10 subscribers each (160 total).
//! [`LayeredMeshConfig::paper`] reproduces exactly that; other generators
//! (acyclic tree, random mesh, line, star) support tests, examples and
//! sensitivity studies.

use crate::graph::OverlayGraph;
use bdps_net::link::LinkQuality;
use bdps_stats::rng::SimRng;
use bdps_types::error::{BdpsError, Result};
use bdps_types::id::{BrokerId, PublisherId, SubscriberId};
use serde::{Deserialize, Serialize};

/// Configuration of a layered mesh topology in the style of the paper's Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayeredMeshConfig {
    /// Number of brokers in each layer, from the publisher side (layer 0)
    /// down to the subscriber side.
    pub layer_sizes: Vec<usize>,
    /// For each layer after the first: how many brokers of the previous layer
    /// each broker connects to. `0` means "all of them".
    pub fan_in: Vec<usize>,
    /// Number of publishers attached to each broker of the first layer.
    pub publishers_per_first_layer_broker: usize,
    /// Number of subscribers attached to each broker of the last layer.
    pub subscribers_per_edge_broker: usize,
}

impl LayeredMeshConfig {
    /// The exact configuration of the paper's simulated network (§6.1).
    pub fn paper() -> Self {
        LayeredMeshConfig {
            layer_sizes: vec![4, 4, 8, 16],
            fan_in: vec![0, 2, 2],
            publishers_per_first_layer_broker: 1,
            subscribers_per_edge_broker: 10,
        }
    }

    /// A scaled-down configuration used by fast tests and examples.
    pub fn small() -> Self {
        LayeredMeshConfig {
            layer_sizes: vec![2, 2, 4],
            fan_in: vec![0, 2],
            publishers_per_first_layer_broker: 1,
            subscribers_per_edge_broker: 3,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.layer_sizes.is_empty() || self.layer_sizes.contains(&0) {
            return Err(BdpsError::InvalidConfig(
                "every layer must contain at least one broker".into(),
            ));
        }
        if self.fan_in.len() + 1 != self.layer_sizes.len() {
            return Err(BdpsError::InvalidConfig(format!(
                "fan_in must have {} entries (one per non-first layer), got {}",
                self.layer_sizes.len() - 1,
                self.fan_in.len()
            )));
        }
        for (i, &f) in self.fan_in.iter().enumerate() {
            if f > self.layer_sizes[i] {
                return Err(BdpsError::InvalidConfig(format!(
                    "layer {} requests fan-in {} but the previous layer only has {} brokers",
                    i + 1,
                    f,
                    self.layer_sizes[i]
                )));
            }
        }
        Ok(())
    }

    /// Total number of brokers.
    pub fn broker_count(&self) -> usize {
        self.layer_sizes.iter().sum()
    }

    /// Total number of subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.layer_sizes.last().copied().unwrap_or(0) * self.subscribers_per_edge_broker
    }

    /// Total number of publishers.
    pub fn publisher_count(&self) -> usize {
        self.layer_sizes.first().copied().unwrap_or(0) * self.publishers_per_first_layer_broker
    }
}

/// A constructed topology: the overlay graph plus the publisher/subscriber population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// The broker overlay.
    pub graph: OverlayGraph,
    /// All publishers with the broker each is attached to.
    pub publishers: Vec<(PublisherId, BrokerId)>,
    /// All subscribers with the broker each is attached to.
    pub subscribers: Vec<(SubscriberId, BrokerId)>,
}

impl Topology {
    /// Builds a layered mesh with link qualities drawn by `make_quality`
    /// (called once per broker pair; both directions share the quality, as in
    /// the paper's model).
    pub fn layered_mesh(
        config: &LayeredMeshConfig,
        rng: &mut SimRng,
        mut make_quality: impl FnMut(&mut SimRng) -> LinkQuality,
    ) -> Result<Topology> {
        config.validate()?;
        let mut graph = OverlayGraph::new();

        // Create brokers layer by layer.
        let mut layers: Vec<Vec<BrokerId>> = Vec::with_capacity(config.layer_sizes.len());
        for (layer_idx, &size) in config.layer_sizes.iter().enumerate() {
            let mut layer = Vec::with_capacity(size);
            for _ in 0..size {
                layer.push(graph.add_broker(Some(layer_idx as u32)));
            }
            layers.push(layer);
        }

        // Connect each layer to the previous one.
        for (i, &fan_in) in config.fan_in.iter().enumerate() {
            let upper = layers[i].clone();
            let lower = layers[i + 1].clone();
            for &b in &lower {
                let parents: Vec<BrokerId> = if fan_in == 0 || fan_in >= upper.len() {
                    upper.clone()
                } else {
                    rng.choose_distinct(upper.len(), fan_in)
                        .into_iter()
                        .map(|idx| upper[idx])
                        .collect()
                };
                for p in parents {
                    let q = make_quality(rng);
                    graph.add_bidirectional_link(p, b, q);
                }
            }
        }

        // Attach publishers to the first layer and subscribers to the last.
        let mut publishers = Vec::new();
        let mut next_pub = 0u32;
        for &b in &layers[0] {
            for _ in 0..config.publishers_per_first_layer_broker {
                let p = PublisherId::new(next_pub);
                next_pub += 1;
                graph.attach_publisher(b, p);
                publishers.push((p, b));
            }
        }
        let mut subscribers = Vec::new();
        let mut next_sub = 0u32;
        for &b in layers.last().expect("at least one layer") {
            for _ in 0..config.subscribers_per_edge_broker {
                let s = SubscriberId::new(next_sub);
                next_sub += 1;
                graph.attach_subscriber(b, s);
                subscribers.push((s, b));
            }
        }

        graph.validate()?;
        Ok(Topology {
            graph,
            publishers,
            subscribers,
        })
    }

    /// The paper's simulated network: `LayeredMeshConfig::paper()` with
    /// per-link mean rates drawn uniformly from [50, 100] ms/KB and σ = 20 ms/KB.
    pub fn paper_topology(rng: &mut SimRng) -> Topology {
        Topology::layered_mesh(&LayeredMeshConfig::paper(), rng, LinkQuality::paper_random)
            .expect("paper configuration is valid")
    }

    /// An acyclic (tree) overlay in the style of the paper's Fig. 1(a): a
    /// balanced tree of the given depth and branching factor, with one
    /// publisher at the root broker and `subscribers_per_leaf` subscribers on
    /// every leaf broker.
    pub fn acyclic_tree(
        depth: usize,
        branching: usize,
        subscribers_per_leaf: usize,
        rng: &mut SimRng,
        mut make_quality: impl FnMut(&mut SimRng) -> LinkQuality,
    ) -> Topology {
        assert!(depth >= 1 && branching >= 1);
        let mut graph = OverlayGraph::new();
        let root = graph.add_broker(Some(0));
        let mut frontier = vec![root];
        for level in 1..depth {
            let mut next = Vec::new();
            for &parent in &frontier {
                for _ in 0..branching {
                    let child = graph.add_broker(Some(level as u32));
                    let q = make_quality(rng);
                    graph.add_bidirectional_link(parent, child, q);
                    next.push(child);
                }
            }
            frontier = next;
        }
        let mut publishers = Vec::new();
        let p = PublisherId::new(0);
        graph.attach_publisher(root, p);
        publishers.push((p, root));

        let mut subscribers = Vec::new();
        let mut next_sub = 0u32;
        for &leaf in &frontier {
            for _ in 0..subscribers_per_leaf {
                let s = SubscriberId::new(next_sub);
                next_sub += 1;
                graph.attach_subscriber(leaf, s);
                subscribers.push((s, leaf));
            }
        }
        Topology {
            graph,
            publishers,
            subscribers,
        }
    }

    /// A connected random mesh of `n` brokers: a random spanning tree plus
    /// extra random links until the requested average degree is reached.
    pub fn random_mesh(
        n: usize,
        avg_degree: f64,
        rng: &mut SimRng,
        mut make_quality: impl FnMut(&mut SimRng) -> LinkQuality,
    ) -> Topology {
        assert!(n >= 2, "a mesh needs at least two brokers");
        let mut graph = OverlayGraph::new();
        let brokers: Vec<BrokerId> = (0..n).map(|_| graph.add_broker(None)).collect();

        // Random spanning tree: connect each broker to a random earlier one.
        for i in 1..n {
            let j = rng.uniform_usize(0, i);
            let q = make_quality(rng);
            graph.add_bidirectional_link(brokers[j], brokers[i], q);
        }
        // Extra links up to the requested average (undirected) degree.
        let target_undirected = ((avg_degree * n as f64) / 2.0).round() as usize;
        let mut undirected_count = n - 1;
        let mut attempts = 0;
        while undirected_count < target_undirected && attempts < 20 * n {
            attempts += 1;
            let a = brokers[rng.uniform_usize(0, n)];
            let b = brokers[rng.uniform_usize(0, n)];
            if a == b || graph.link_between(a, b).is_some() {
                continue;
            }
            let q = make_quality(rng);
            graph.add_bidirectional_link(a, b, q);
            undirected_count += 1;
        }
        Topology {
            graph,
            publishers: Vec::new(),
            subscribers: Vec::new(),
        }
    }

    /// A line of `n` brokers, handy for analytic tests.
    pub fn line(
        n: usize,
        rng: &mut SimRng,
        mut make_quality: impl FnMut(&mut SimRng) -> LinkQuality,
    ) -> Topology {
        assert!(n >= 1);
        let mut graph = OverlayGraph::new();
        let brokers: Vec<BrokerId> = (0..n).map(|_| graph.add_broker(None)).collect();
        for w in brokers.windows(2) {
            let q = make_quality(rng);
            graph.add_bidirectional_link(w[0], w[1], q);
        }
        Topology {
            graph,
            publishers: Vec::new(),
            subscribers: Vec::new(),
        }
    }

    /// A star with one hub and `n - 1` spokes.
    pub fn star(
        n: usize,
        rng: &mut SimRng,
        mut make_quality: impl FnMut(&mut SimRng) -> LinkQuality,
    ) -> Topology {
        assert!(n >= 2);
        let mut graph = OverlayGraph::new();
        let hub = graph.add_broker(Some(0));
        for _ in 1..n {
            let spoke = graph.add_broker(Some(1));
            let q = make_quality(rng);
            graph.add_bidirectional_link(hub, spoke, q);
        }
        Topology {
            graph,
            publishers: Vec::new(),
            subscribers: Vec::new(),
        }
    }

    /// The broker a subscriber attaches to.
    pub fn subscriber_broker(&self, s: SubscriberId) -> Option<BrokerId> {
        self.subscribers
            .iter()
            .find(|(id, _)| *id == s)
            .map(|(_, b)| *b)
    }

    /// The broker a publisher attaches to.
    pub fn publisher_broker(&self, p: PublisherId) -> Option<BrokerId> {
        self.publishers
            .iter()
            .find(|(id, _)| *id == p)
            .map(|(_, b)| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdps_net::bandwidth::FixedRate;

    fn fixed_quality(_rng: &mut SimRng) -> LinkQuality {
        LinkQuality::new(FixedRate::new(60.0))
    }

    #[test]
    fn paper_topology_matches_section_6_1() {
        let mut rng = SimRng::seed_from(1);
        let topo = Topology::paper_topology(&mut rng);
        let g = &topo.graph;
        assert_eq!(g.broker_count(), 32);
        assert_eq!(topo.publishers.len(), 4);
        assert_eq!(topo.subscribers.len(), 160);
        assert_eq!(g.publisher_brokers().len(), 4);
        assert_eq!(g.edge_brokers().len(), 16);
        // Directed links: L2 fully meshed to L1 = 4*4, L3 2 each = 16, L4 2 each = 32;
        // undirected pairs = 16 + 16 + 32 = 64, directed = 128.
        assert_eq!(g.link_count(), 128);
        // Layers recorded correctly.
        assert_eq!(g.broker(BrokerId::new(0)).layer, Some(0));
        assert_eq!(g.broker(BrokerId::new(31)).layer, Some(3));
        // Every L4 broker serves exactly 10 subscribers.
        for b in g.edge_brokers() {
            assert_eq!(g.broker(b).subscribers.len(), 10);
        }
        assert!(g.validate().is_ok());
        // Link rates within the configured ranges.
        for l in g.links() {
            let d = l.quality.rate_distribution();
            assert!((50.0..100.0).contains(&d.mean()));
            assert!((d.std_dev() - 20.0).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_topology_is_deterministic_per_seed() {
        let t1 = Topology::paper_topology(&mut SimRng::seed_from(7));
        let t2 = Topology::paper_topology(&mut SimRng::seed_from(7));
        assert_eq!(t1.graph.link_count(), t2.graph.link_count());
        for (a, b) in t1.graph.links().zip(t2.graph.links()) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert_eq!(
                a.quality.rate_distribution().mean(),
                b.quality.rate_distribution().mean()
            );
        }
    }

    #[test]
    fn small_config_and_counts() {
        let cfg = LayeredMeshConfig::small();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.broker_count(), 8);
        assert_eq!(cfg.publisher_count(), 2);
        assert_eq!(cfg.subscriber_count(), 12);
        let mut rng = SimRng::seed_from(2);
        let topo = Topology::layered_mesh(&cfg, &mut rng, fixed_quality).unwrap();
        assert_eq!(topo.graph.broker_count(), 8);
        assert_eq!(topo.subscribers.len(), 12);
        assert!(topo.graph.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut bad = LayeredMeshConfig::paper();
        bad.layer_sizes[1] = 0;
        assert!(bad.validate().is_err());

        let mut bad_fanin = LayeredMeshConfig::paper();
        bad_fanin.fan_in = vec![0, 2];
        assert!(bad_fanin.validate().is_err());

        let mut too_many = LayeredMeshConfig::small();
        too_many.fan_in = vec![0, 100];
        assert!(too_many.validate().is_err());
    }

    #[test]
    fn acyclic_tree_structure() {
        let mut rng = SimRng::seed_from(3);
        let topo = Topology::acyclic_tree(3, 2, 2, &mut rng, fixed_quality);
        // 1 + 2 + 4 brokers, 6 undirected links.
        assert_eq!(topo.graph.broker_count(), 7);
        assert_eq!(topo.graph.link_count(), 12);
        assert_eq!(topo.publishers.len(), 1);
        assert_eq!(topo.subscribers.len(), 8);
        assert!(topo.graph.validate().is_ok());
        assert_eq!(
            topo.publisher_broker(PublisherId::new(0)),
            Some(BrokerId::new(0))
        );
    }

    #[test]
    fn random_mesh_is_connected() {
        let mut rng = SimRng::seed_from(4);
        let topo = Topology::random_mesh(20, 3.0, &mut rng, fixed_quality);
        assert_eq!(topo.graph.broker_count(), 20);
        assert!(topo.graph.is_connected());
        assert!(topo.graph.link_count() >= 2 * 19);
    }

    #[test]
    fn line_and_star() {
        let mut rng = SimRng::seed_from(5);
        let line = Topology::line(5, &mut rng, fixed_quality);
        assert_eq!(line.graph.broker_count(), 5);
        assert_eq!(line.graph.link_count(), 8);
        let star = Topology::star(6, &mut rng, fixed_quality);
        assert_eq!(star.graph.broker_count(), 6);
        assert_eq!(star.graph.neighbors(BrokerId::new(0)).len(), 5);
    }

    #[test]
    fn attachment_lookup() {
        let mut rng = SimRng::seed_from(6);
        let topo = Topology::paper_topology(&mut rng);
        let (s, b) = topo.subscribers[42];
        assert_eq!(topo.subscriber_broker(s), Some(b));
        assert_eq!(topo.subscriber_broker(SubscriberId::new(9_999)), None);
        let (p, pb) = topo.publishers[2];
        assert_eq!(topo.publisher_broker(p), Some(pb));
    }
}
