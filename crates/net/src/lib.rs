//! # bdps-net
//!
//! The network substrate of BDPS: models of the *underlay* connections that
//! overlay links are built on, and the measurement machinery brokers use to
//! estimate link quality.
//!
//! The paper (§3.2) assumes that the available bandwidth of each overlay link
//! — expressed as the *transmission rate* `TR`, the time in milliseconds
//! needed to transmit one kilobyte — follows a normal distribution whose
//! parameters each broker estimates "by some tools of network measurement".
//! This crate provides:
//!
//! * [`bandwidth`] — pluggable per-link bandwidth models: the paper's
//!   normally-distributed rate, a fixed rate (the assumption of the
//!   QRON-style related work the paper contrasts with), and a shifted-gamma
//!   per-packet delay model derived from the Internet measurement studies the
//!   paper cites;
//! * [`link`] — directed overlay links carrying a bandwidth model;
//! * [`linkmodel`] — pluggable transfer-time models over those links: the
//!   paper's one-transfer-at-a-time sampled delay ([`linkmodel::ConstantDelay`],
//!   the oracle) and flow-level fair bandwidth sharing
//!   ([`linkmodel::FairShare`]);
//! * [`measure`] — simulated bandwidth probing feeding online estimators,
//!   including deliberate estimation-error injection for ablation studies;
//! * [`tcp`] — a Mathis-formula TCP throughput model used to derive
//!   realistic per-KB rates from RTT and loss characteristics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod link;
pub mod linkmodel;
pub mod measure;
pub mod tcp;

pub use bandwidth::{AnyBandwidth, BandwidthModel, FixedRate, NormalRate, ShiftedGammaRate};
pub use link::{Link, LinkDirection, LinkQuality};
pub use linkmodel::{
    ConstantDelay, FairShare, LinkModel, LinkModelKind, LinkModelRegistry, LinkSharing,
};
pub use measure::{EstimationError, LinkEstimator};
pub use tcp::TcpPathModel;

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::bandwidth::{
        AnyBandwidth, BandwidthModel, FixedRate, NormalRate, ShiftedGammaRate,
    };
    pub use crate::link::{Link, LinkDirection, LinkQuality};
    pub use crate::linkmodel::{
        ConstantDelay, FairShare, LinkModel, LinkModelKind, LinkModelRegistry, LinkSharing,
    };
    pub use crate::measure::{EstimationError, LinkEstimator};
    pub use crate::tcp::TcpPathModel;
}
