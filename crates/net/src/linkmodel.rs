//! Pluggable link transfer-time models — the seam between "how long does
//! this copy take on this link" and the engine's event scheduling.
//!
//! The paper's evaluation (and every BDPS release before this module)
//! samples one transfer time per copy from the link's bandwidth
//! distribution and lets copies queue behind a link that carries **one**
//! transfer at a time: the link is a serial server, never a shared medium.
//! That keeps scheduling strategies honest about queueing, but heavy
//! traffic can never *congest* a link — a flash crowd stresses the broker
//! queues while the modelled network stays infinitely wide.
//!
//! [`LinkModel`] makes the transfer-time computation a pluggable policy:
//!
//! * [`ConstantDelay`] — the original behaviour, bit-for-bit: one sampled
//!   rate per transfer, one transfer in flight per link. Retained as the
//!   differential oracle (same pattern as `RebuildPolicy::Full` and
//!   `TableLayout::Dense`; `tests/linkmodel_equivalence.rs` pins report
//!   equality).
//! * [`FairShare`] — flow-level bandwidth sharing, the standard network
//!   model of flow-level network/cloud simulators: up to
//!   [`FairShare::max_flows`] transfers progress concurrently on a link,
//!   each receiving an equal share of the link's (sampled) service rate,
//!   and every in-flight completion time on the link is recomputed at each
//!   flow arrival and departure.
//!
//! The engine owns all flow bookkeeping (it owns the event queue); the
//! model contributes the per-flow service-time sample and the sharing
//! discipline. Models are therefore stateless and trivially re-creatable,
//! which is what lets a forked simulation branch rebuild its model from
//! the [`LinkModelKind`] tag alone.

use std::fmt;

use bdps_stats::rng::SimRng;
use bdps_types::time::Duration;
use serde::{Deserialize, Serialize};

use crate::link::LinkQuality;

/// How a link divides itself among the transfers queued behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSharing {
    /// One transfer in flight at a time; the rest wait in the sender's
    /// output queue (the paper's serial-server link).
    Exclusive,
    /// Up to `max_flows` transfers in flight concurrently, each receiving
    /// an equal share of the link's service rate.
    FairShare {
        /// Concurrent-flow admission cap per link.
        max_flows: usize,
    },
}

/// A link transfer-time model: the policy object behind every
/// transfer-time computation in the simulation engine.
///
/// Implementations must be deterministic functions of their inputs — the
/// only randomness allowed is the `rng` stream passed in, which the engine
/// guarantees is the per-link stream (one owner entity per stream, the
/// discipline that keeps sharded execution bit-identical for the
/// [`ConstantDelay`] oracle).
pub trait LinkModel: fmt::Debug + Send + Sync {
    /// The registry tag of this model.
    fn kind(&self) -> LinkModelKind;

    /// The stable registry name (`"constant"` / `"fair-share"`).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// The sharing discipline the engine must apply on every link.
    fn sharing(&self) -> LinkSharing;

    /// Samples the *dedicated-link* service time of one copy: the time the
    /// transfer takes if it has the whole link to itself. Exactly one draw
    /// from `rng` per transfer, so per-link streams replay identically
    /// whatever the interleaving of other links' events.
    fn sample_transfer(&self, quality: &LinkQuality, size_kb: f64, rng: &mut SimRng) -> Duration;
}

/// The original per-transfer sampled-rate model: one draw from the link's
/// bandwidth distribution per copy, one copy in flight per link. This is
/// the differential oracle — routing the engine through this object is
/// bit-identical to the pre-[`LinkModel`] engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstantDelay;

impl LinkModel for ConstantDelay {
    fn kind(&self) -> LinkModelKind {
        LinkModelKind::Constant
    }

    fn sharing(&self) -> LinkSharing {
        LinkSharing::Exclusive
    }

    fn sample_transfer(&self, quality: &LinkQuality, size_kb: f64, rng: &mut SimRng) -> Duration {
        quality.sample_transfer(size_kb, rng)
    }
}

/// Flow-level fair sharing: up to [`max_flows`](Self::max_flows) copies
/// progress concurrently on a link, each at an equal share of the link's
/// service rate, with all in-flight completion times recomputed at every
/// flow arrival and departure.
///
/// Each flow's total service requirement is still one draw from the link's
/// bandwidth distribution (the same draw [`ConstantDelay`] makes), so the
/// sampled-rate character of the paper's links is preserved; only the
/// sharing discipline changes. The admission cap models a TCP-like small
/// number of parallel connections per overlay link: queued copies beyond
/// the cap wait in the sender's output queue, where the scheduling
/// strategies keep ordering them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairShare {
    /// Concurrent-flow admission cap per link.
    pub max_flows: usize,
}

/// Default concurrent-flow admission cap of [`FairShare`].
pub const DEFAULT_MAX_FLOWS: usize = 4;

impl Default for FairShare {
    fn default() -> Self {
        FairShare {
            max_flows: DEFAULT_MAX_FLOWS,
        }
    }
}

impl LinkModel for FairShare {
    fn kind(&self) -> LinkModelKind {
        LinkModelKind::FairShare
    }

    fn sharing(&self) -> LinkSharing {
        LinkSharing::FairShare {
            max_flows: self.max_flows,
        }
    }

    fn sample_transfer(&self, quality: &LinkQuality, size_kb: f64, rng: &mut SimRng) -> Duration {
        quality.sample_transfer(size_kb, rng)
    }
}

/// The selectable link models, as a serializable configuration tag.
///
/// This is the compat shim between name-based configuration
/// (`SimulationConfig`, CLI `--link-model`) and the [`LinkModel`] trait
/// objects the engine runs — the same pattern `StrategyKind` uses for
/// scheduling strategies: [`create`](Self::create) resolves the tag to a
/// fresh model instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkModelKind {
    /// [`ConstantDelay`] — the pre-trait behaviour, kept as the oracle.
    #[default]
    Constant,
    /// [`FairShare`] with the default admission cap.
    FairShare,
}

impl LinkModelKind {
    /// Every selectable model, oracle first.
    pub const ALL: [LinkModelKind; 2] = [LinkModelKind::Constant, LinkModelKind::FairShare];

    /// Stable CLI/report name (`"constant"` / `"fair-share"`).
    pub fn name(self) -> &'static str {
        match self {
            LinkModelKind::Constant => "constant",
            LinkModelKind::FairShare => "fair-share",
        }
    }

    /// Resolves a CLI name (case-insensitive): `"constant"` (aliases
    /// `"const"`, `"delay"`) or `"fair-share"` (aliases `"fairshare"`,
    /// `"fair"`, `"fs"`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "constant" | "const" | "delay" => Some(LinkModelKind::Constant),
            "fair-share" | "fairshare" | "fair" | "fs" => Some(LinkModelKind::FairShare),
            _ => None,
        }
    }

    /// Materialises a fresh model instance for this tag.
    pub fn create(self) -> Box<dyn LinkModel> {
        match self {
            LinkModelKind::Constant => Box::new(ConstantDelay),
            LinkModelKind::FairShare => Box::new(FairShare::default()),
        }
    }
}

impl fmt::Display for LinkModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

struct RegistryEntry {
    name: String,
    aliases: Vec<String>,
    kind: LinkModelKind,
}

/// Name-based link-model lookup for command-line binaries and sweeps,
/// mirroring `StrategyRegistry`/`ScenarioRegistry`: case-insensitive
/// canonical names plus aliases, later registrations shadowing earlier
/// ones. Strict CLI parsers list [`names`](Self::names) on an unknown
/// `--link-model` instead of silently defaulting.
pub struct LinkModelRegistry {
    entries: Vec<RegistryEntry>,
}

impl LinkModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        LinkModelRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry with every built-in model:
    ///
    /// | name | sharing |
    /// |------|---------|
    /// | `constant` | one sampled-rate transfer in flight per link (the paper's setting, the oracle) |
    /// | `fair-share` | flow-level equal sharing among concurrent transfers, completions rescheduled at every arrival/departure |
    pub fn builtin() -> Self {
        let mut r = LinkModelRegistry::new();
        r.register("constant", &["const", "delay"], LinkModelKind::Constant);
        r.register(
            "fair-share",
            &["fairshare", "fair", "fs"],
            LinkModelKind::FairShare,
        );
        r
    }

    /// Registers a model tag under a canonical name plus aliases.
    pub fn register(&mut self, name: impl Into<String>, aliases: &[&str], kind: LinkModelKind) {
        self.entries.push(RegistryEntry {
            name: name.into().to_ascii_lowercase(),
            aliases: aliases.iter().map(|a| a.to_ascii_lowercase()).collect(),
            kind,
        });
    }

    /// Resolves a name (canonical or alias, case-insensitive) to its tag.
    pub fn resolve(&self, name: &str) -> Option<LinkModelKind> {
        let wanted = name.to_ascii_lowercase();
        for entry in self.entries.iter().rev() {
            if entry.name == wanted || entry.aliases.contains(&wanted) {
                return Some(entry.kind);
            }
        }
        None
    }

    /// The canonical names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }
}

impl Default for LinkModelRegistry {
    fn default() -> Self {
        LinkModelRegistry::builtin()
    }
}

impl fmt::Debug for LinkModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinkModelRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::FixedRate;

    #[test]
    fn kind_names_round_trip() {
        for kind in LinkModelKind::ALL {
            assert_eq!(LinkModelKind::from_name(kind.name()), Some(kind));
            assert_eq!(
                LinkModelKind::from_name(&kind.name().to_ascii_uppercase()),
                Some(kind)
            );
            assert_eq!(kind.create().kind(), kind);
            assert_eq!(kind.create().name(), kind.name());
        }
        assert_eq!(LinkModelKind::from_name("token-bucket"), None);
    }

    #[test]
    fn registry_resolves_names_and_aliases() {
        let r = LinkModelRegistry::builtin();
        for kind in LinkModelKind::ALL {
            assert_eq!(r.resolve(kind.name()), Some(kind));
        }
        assert_eq!(r.resolve("fs"), Some(LinkModelKind::FairShare));
        assert_eq!(r.resolve("DELAY"), Some(LinkModelKind::Constant));
        assert_eq!(r.resolve("nope"), None);
        assert_eq!(r.names(), vec!["constant", "fair-share"]);
    }

    #[test]
    fn registry_round_trips_every_builtin_name() {
        let r = LinkModelRegistry::builtin();
        for name in r.names() {
            let kind = r.resolve(name).expect("registry name resolves");
            assert_eq!(kind.name(), name, "canonical name survives the round trip");
            assert_eq!(LinkModelKind::from_name(name), Some(kind));
        }
    }

    #[test]
    fn constant_delay_matches_direct_quality_sampling() {
        let quality = LinkQuality::new(FixedRate::new(10.0));
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        let via_trait = ConstantDelay.sample_transfer(&quality, 3.0, &mut a);
        let direct = quality.sample_transfer(3.0, &mut b);
        assert_eq!(via_trait, direct);
        assert_eq!(a.state_words(), b.state_words(), "exactly one draw each");
    }

    #[test]
    fn fair_share_samples_the_same_service_time_as_the_oracle() {
        let quality = LinkQuality::paper_random(&mut SimRng::seed_from(3));
        let mut a = SimRng::seed_from(11);
        let mut b = SimRng::seed_from(11);
        let fair = FairShare::default().sample_transfer(&quality, 5.0, &mut a);
        let constant = ConstantDelay.sample_transfer(&quality, 5.0, &mut b);
        assert_eq!(fair, constant, "only the sharing discipline differs");
        assert_eq!(
            FairShare::default().sharing(),
            LinkSharing::FairShare {
                max_flows: DEFAULT_MAX_FLOWS
            }
        );
        assert_eq!(ConstantDelay.sharing(), LinkSharing::Exclusive);
    }
}
