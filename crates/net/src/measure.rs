//! Simulated bandwidth measurement and estimation.
//!
//! The paper assumes each broker estimates the `N(μ, σ²)` parameters of every
//! outgoing link "by some tools of network measurement" and then schedules
//! against the *estimated* distribution. [`LinkEstimator`] reproduces that
//! loop: it probes a true bandwidth model a number of times (or ingests
//! transfer observations from live traffic) and exposes the estimated normal
//! distribution. [`EstimationError`] deliberately perturbs the estimate so
//! that the `ablation_estimation` experiment can quantify how sensitive the
//! EB/PC/EBPC strategies are to mis-estimated link parameters.

use crate::bandwidth::BandwidthModel;
use bdps_stats::estimator::WelfordEstimator;
use bdps_stats::normal::Normal;
use bdps_stats::rng::SimRng;
use serde::{Deserialize, Serialize};

/// An online estimator of one link's per-KB transmission rate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinkEstimator {
    welford: WelfordEstimator,
}

impl LinkEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Actively probes the given true model `n` times with `probe_kb`-sized
    /// probes, feeding the observed per-KB rates into the estimator.
    pub fn probe(&mut self, model: &dyn BandwidthModel, n: usize, probe_kb: f64, rng: &mut SimRng) {
        assert!(probe_kb > 0.0, "probe size must be positive");
        for _ in 0..n {
            let ms = model.sample_transfer_ms(probe_kb, rng);
            self.observe_transfer(probe_kb, ms);
        }
    }

    /// Ingests one passive observation: `size_kb` kilobytes took `ms` milliseconds.
    pub fn observe_transfer(&mut self, size_kb: f64, ms: f64) {
        if size_kb > 0.0 && ms.is_finite() && ms >= 0.0 {
            self.welford.observe(ms / size_kb);
        }
    }

    /// Number of observations ingested so far.
    pub fn observations(&self) -> u64 {
        self.welford.count()
    }

    /// The estimated rate distribution, or `None` before the estimator has
    /// seen at least two observations (variance undefined).
    pub fn estimated_rate(&self) -> Option<Normal> {
        if self.welford.count() < 2 {
            return None;
        }
        Some(Normal::new(self.welford.mean(), self.welford.std_dev()))
    }

    /// The estimated rate, falling back to the given prior when there is not
    /// yet enough data.
    pub fn estimated_rate_or(&self, prior: Normal) -> Normal {
        self.estimated_rate().unwrap_or(prior)
    }
}

/// A deliberate perturbation of estimated link parameters (for ablations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimationError {
    /// Relative bias applied to the mean (+0.2 → the scheduler believes links
    /// are 20 % slower than they really are).
    pub mean_bias: f64,
    /// Relative bias applied to the standard deviation.
    pub std_bias: f64,
}

impl EstimationError {
    /// No error: the scheduler sees the true parameters (the paper's setting).
    pub const NONE: EstimationError = EstimationError {
        mean_bias: 0.0,
        std_bias: 0.0,
    };

    /// Creates a relative error specification.
    pub fn relative(mean_bias: f64, std_bias: f64) -> Self {
        EstimationError {
            mean_bias,
            std_bias,
        }
    }

    /// Applies the error to a true distribution, producing what the scheduler
    /// will believe. The standard deviation is floored at zero.
    pub fn apply(&self, true_rate: Normal) -> Normal {
        let mean = true_rate.mean() * (1.0 + self.mean_bias);
        let std = (true_rate.std_dev() * (1.0 + self.std_bias)).max(0.0);
        Normal::new(mean.max(0.0), std)
    }

    /// Returns true when no perturbation is applied.
    pub fn is_none(&self) -> bool {
        self.mean_bias == 0.0 && self.std_bias == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::{FixedRate, NormalRate};

    #[test]
    fn probing_converges_to_true_parameters() {
        let true_model = NormalRate::new(75.0, 20.0);
        let mut est = LinkEstimator::new();
        let mut rng = SimRng::seed_from(1);
        est.probe(&true_model, 5_000, 50.0, &mut rng);
        let d = est.estimated_rate().unwrap();
        assert!((d.mean() - 75.0).abs() < 1.0, "mean = {}", d.mean());
        assert!((d.std_dev() - 20.0).abs() < 1.0, "std = {}", d.std_dev());
        assert_eq!(est.observations(), 5_000);
    }

    #[test]
    fn passive_observation_normalises_by_size() {
        let mut est = LinkEstimator::new();
        est.observe_transfer(50.0, 3_000.0); // 60 ms/KB
        est.observe_transfer(25.0, 1_500.0); // 60 ms/KB
        est.observe_transfer(10.0, 700.0); // 70 ms/KB
        let d = est.estimated_rate().unwrap();
        assert!((d.mean() - 63.333).abs() < 0.01);
    }

    #[test]
    fn not_enough_data_yields_none_and_prior_fallback() {
        let mut est = LinkEstimator::new();
        assert!(est.estimated_rate().is_none());
        est.observe_transfer(1.0, 50.0);
        assert!(est.estimated_rate().is_none());
        let prior = Normal::new(75.0, 20.0);
        assert_eq!(est.estimated_rate_or(prior).mean(), 75.0);
        est.observe_transfer(1.0, 70.0);
        assert!(est.estimated_rate().is_some());
    }

    #[test]
    fn invalid_observations_are_ignored() {
        let mut est = LinkEstimator::new();
        est.observe_transfer(0.0, 100.0);
        est.observe_transfer(10.0, f64::NAN);
        est.observe_transfer(10.0, -5.0);
        assert_eq!(est.observations(), 0);
    }

    #[test]
    fn fixed_rate_estimation_has_zero_variance() {
        let true_model = FixedRate::new(80.0);
        let mut est = LinkEstimator::new();
        let mut rng = SimRng::seed_from(2);
        est.probe(&true_model, 100, 10.0, &mut rng);
        let d = est.estimated_rate().unwrap();
        assert!((d.mean() - 80.0).abs() < 1e-9);
        assert!(d.std_dev() < 1e-9);
    }

    #[test]
    fn estimation_error_biases_parameters() {
        let true_rate = Normal::new(100.0, 20.0);
        let err = EstimationError::relative(0.2, -0.5);
        let believed = err.apply(true_rate);
        assert!((believed.mean() - 120.0).abs() < 1e-9);
        assert!((believed.std_dev() - 10.0).abs() < 1e-9);
        assert!(!err.is_none());
        assert!(EstimationError::NONE.is_none());
        let same = EstimationError::NONE.apply(true_rate);
        assert_eq!(same.mean(), 100.0);
        assert_eq!(same.std_dev(), 20.0);
    }

    #[test]
    fn estimation_error_floors_at_zero() {
        let true_rate = Normal::new(100.0, 20.0);
        let err = EstimationError::relative(-2.0, -2.0);
        let believed = err.apply(true_rate);
        assert_eq!(believed.mean(), 0.0);
        assert_eq!(believed.std_dev(), 0.0);
    }
}
