//! Directed overlay links.
//!
//! Overlay links connect two brokers over a TCP connection of the underlying
//! Internet (paper §3.1). Each direction has its own bandwidth model because
//! Internet paths are asymmetric; the topology builders of `bdps-overlay`
//! create one [`Link`] per direction.

use crate::bandwidth::{AnyBandwidth, BandwidthModel, NormalRate};
use bdps_stats::normal::Normal;
use bdps_stats::rng::SimRng;
use bdps_types::id::{BrokerId, LinkId};
use bdps_types::time::Duration;
use serde::{Deserialize, Serialize};

/// Which direction of a broker pair a link carries traffic in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkDirection {
    /// From the lower-numbered broker towards the higher-numbered one.
    Forward,
    /// From the higher-numbered broker towards the lower-numbered one.
    Reverse,
}

/// The quality of one link: its bandwidth model plus a fixed propagation latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkQuality {
    /// The bandwidth model governing per-message transfer times.
    pub bandwidth: AnyBandwidth,
    /// A fixed propagation latency added to every transfer (defaults to zero;
    /// the paper folds propagation into the per-KB rate).
    pub propagation: Duration,
}

impl LinkQuality {
    /// Creates a link quality from a bandwidth model with zero extra propagation delay.
    pub fn new(bandwidth: impl Into<AnyBandwidth>) -> Self {
        LinkQuality {
            bandwidth: bandwidth.into(),
            propagation: Duration::ZERO,
        }
    }

    /// Adds a fixed propagation latency.
    pub fn with_propagation(mut self, propagation: Duration) -> Self {
        self.propagation = propagation;
        self
    }

    /// The paper's randomly drawn link quality (mean rate U\[50,100\] ms/KB, σ = 20 ms/KB).
    pub fn paper_random(rng: &mut SimRng) -> Self {
        LinkQuality::new(NormalRate::paper_random(rng))
    }

    /// The per-KB rate distribution the scheduler should use.
    pub fn rate_distribution(&self) -> Normal {
        self.bandwidth.rate_distribution()
    }

    /// Samples the full transfer time (propagation + serialisation) for a
    /// message of `size_kb` kilobytes.
    pub fn sample_transfer(&self, size_kb: f64, rng: &mut SimRng) -> Duration {
        let ms = self.bandwidth.sample_transfer_ms(size_kb, rng);
        self.propagation + Duration::from_millis_f64(ms)
    }
}

/// A directed link between two brokers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Unique identifier of the link.
    pub id: LinkId,
    /// The broker the link leaves from.
    pub from: BrokerId,
    /// The broker the link arrives at.
    pub to: BrokerId,
    /// The link's quality model.
    pub quality: LinkQuality,
}

impl Link {
    /// Creates a link.
    pub fn new(id: LinkId, from: BrokerId, to: BrokerId, quality: LinkQuality) -> Self {
        Link {
            id,
            from,
            to,
            quality,
        }
    }

    /// The mean time to transfer a message of `size_kb` kilobytes over this link.
    pub fn mean_transfer(&self, size_kb: f64) -> Duration {
        self.quality.propagation
            + Duration::from_millis_f64(self.quality.rate_distribution().mean() * size_kb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::FixedRate;

    #[test]
    fn link_quality_sampling_includes_propagation() {
        let q = LinkQuality::new(FixedRate::new(10.0)).with_propagation(Duration::from_millis(5));
        let mut rng = SimRng::seed_from(1);
        let t = q.sample_transfer(2.0, &mut rng);
        assert_eq!(t, Duration::from_millis(25));
        assert_eq!(q.rate_distribution().mean(), 10.0);
    }

    #[test]
    fn paper_random_quality_is_in_range() {
        let mut rng = SimRng::seed_from(2);
        let q = LinkQuality::paper_random(&mut rng);
        let d = q.rate_distribution();
        assert!((50.0..100.0).contains(&d.mean()));
        assert_eq!(q.propagation, Duration::ZERO);
    }

    #[test]
    fn link_mean_transfer() {
        let l = Link::new(
            LinkId::new(0),
            BrokerId::new(1),
            BrokerId::new(2),
            LinkQuality::new(FixedRate::new(60.0)),
        );
        assert_eq!(l.mean_transfer(50.0), Duration::from_millis(3_000));
        assert_eq!(l.from, BrokerId::new(1));
        assert_eq!(l.to, BrokerId::new(2));
    }

    #[test]
    fn directions_are_distinct() {
        assert_ne!(LinkDirection::Forward, LinkDirection::Reverse);
    }
}
