//! A TCP throughput model for deriving realistic per-KB rates.
//!
//! The paper notes that brokers forward messages over TCP and that "the
//! transmission rate of a TCP connection is jointly determined by the round
//! trip time of IP packets and the size of the TCP window" (§3.2). The
//! classic Mathis et al. model captures the steady-state throughput of a TCP
//! connection experiencing random loss:
//!
//! ```text
//! throughput ≈ (MSS / RTT) · C / √p        with C ≈ √(3/2)
//! ```
//!
//! Topology builders can use [`TcpPathModel`] to turn (RTT, loss, MSS)
//! characteristics of an underlay path into the `ms/KB` rate parameters the
//! rest of the system consumes, instead of drawing them uniformly as the
//! paper's evaluation does.

use crate::bandwidth::NormalRate;
use serde::{Deserialize, Serialize};

/// Constant of the Mathis throughput formula, √(3/2).
const MATHIS_C: f64 = 1.224_744_871_391_589;

/// Characteristics of a TCP connection over one underlay path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpPathModel {
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// RTT variation (standard deviation) in milliseconds.
    pub rtt_jitter_ms: f64,
    /// Steady-state packet loss probability in `(0, 1)`.
    pub loss: f64,
    /// Maximum segment size in bytes.
    pub mss_bytes: f64,
}

impl TcpPathModel {
    /// Creates a model; parameters are validated.
    pub fn new(rtt_ms: f64, rtt_jitter_ms: f64, loss: f64, mss_bytes: f64) -> Self {
        assert!(rtt_ms > 0.0 && rtt_ms.is_finite(), "rtt must be positive");
        assert!(rtt_jitter_ms >= 0.0 && rtt_jitter_ms.is_finite());
        assert!(loss > 0.0 && loss < 1.0, "loss must be in (0, 1)");
        assert!(mss_bytes > 0.0 && mss_bytes.is_finite());
        TcpPathModel {
            rtt_ms,
            rtt_jitter_ms,
            loss,
            mss_bytes,
        }
    }

    /// A typical intra-continental Internet path (RTT 40 ms ± 5 ms, 0.5 % loss,
    /// 1460-byte MSS).
    pub fn typical_continental() -> Self {
        TcpPathModel::new(40.0, 5.0, 0.005, 1460.0)
    }

    /// A typical inter-continental path (RTT 110 ms ± 10 ms, 1 % loss), in the
    /// spirit of the cross-Atlantic measurements cited by the paper.
    pub fn typical_intercontinental() -> Self {
        TcpPathModel::new(110.0, 10.0, 0.01, 1460.0)
    }

    /// Steady-state throughput in kilobytes per second (Mathis formula).
    pub fn throughput_kb_per_sec(&self) -> f64 {
        let mss_kb = self.mss_bytes / 1024.0;
        let rtt_sec = self.rtt_ms / 1_000.0;
        (mss_kb / rtt_sec) * MATHIS_C / self.loss.sqrt()
    }

    /// Mean per-KB transmission rate in ms/KB (inverse of throughput).
    pub fn mean_ms_per_kb(&self) -> f64 {
        1_000.0 / self.throughput_kb_per_sec()
    }

    /// Standard deviation of the per-KB rate implied by RTT jitter
    /// (first-order propagation: the rate is proportional to RTT).
    pub fn std_ms_per_kb(&self) -> f64 {
        self.mean_ms_per_kb() * (self.rtt_jitter_ms / self.rtt_ms)
    }

    /// The normally distributed per-KB rate implied by this TCP path, ready
    /// to be used as an overlay link's bandwidth model.
    pub fn to_normal_rate(&self) -> NormalRate {
        NormalRate::new(self.mean_ms_per_kb(), self.std_ms_per_kb())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::BandwidthModel;

    #[test]
    fn throughput_decreases_with_rtt_and_loss() {
        let fast = TcpPathModel::new(20.0, 1.0, 0.001, 1460.0);
        let slow_rtt = TcpPathModel::new(200.0, 1.0, 0.001, 1460.0);
        let lossy = TcpPathModel::new(20.0, 1.0, 0.04, 1460.0);
        assert!(fast.throughput_kb_per_sec() > slow_rtt.throughput_kb_per_sec());
        assert!(fast.throughput_kb_per_sec() > lossy.throughput_kb_per_sec());
    }

    #[test]
    fn mathis_formula_reference_value() {
        // MSS 1460 B, RTT 100 ms, loss 1%:
        // throughput = (1.42578 KB / 0.1 s) * 1.2247 / 0.1 = 174.6 KB/s.
        let m = TcpPathModel::new(100.0, 0.0, 0.01, 1460.0);
        let got = m.throughput_kb_per_sec();
        assert!((got - 174.62).abs() < 0.5, "got {got}");
        assert!((m.mean_ms_per_kb() - 1_000.0 / got).abs() < 1e-9);
    }

    #[test]
    fn rate_conversion_round_trips() {
        let m = TcpPathModel::typical_intercontinental();
        let rate = m.to_normal_rate();
        assert!((rate.rate_distribution().mean() - m.mean_ms_per_kb()).abs() < 1e-9);
        assert!(rate.rate_distribution().std_dev() > 0.0);
        // Paths in the paper's 50-100 ms/KB regime correspond to slow overlay
        // hops; the intercontinental default lands in single-digit ms/KB,
        // i.e. a much faster link, which is fine -- the paper deliberately
        // stresses congested links.
        assert!(m.mean_ms_per_kb() < 50.0);
    }

    #[test]
    fn jitter_scales_std() {
        let no_jitter = TcpPathModel::new(50.0, 0.0, 0.01, 1460.0);
        assert_eq!(no_jitter.std_ms_per_kb(), 0.0);
        let jitter = TcpPathModel::new(50.0, 10.0, 0.01, 1460.0);
        assert!((jitter.std_ms_per_kb() - jitter.mean_ms_per_kb() * 0.2).abs() < 1e-12);
    }

    #[test]
    fn presets_are_valid() {
        let a = TcpPathModel::typical_continental();
        let b = TcpPathModel::typical_intercontinental();
        assert!(a.throughput_kb_per_sec() > b.throughput_kb_per_sec());
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_loss() {
        let _ = TcpPathModel::new(50.0, 1.0, 0.0, 1460.0);
    }
}
