//! Per-link bandwidth models.
//!
//! Every model answers two questions:
//!
//! 1. *What does the scheduler believe?* — [`BandwidthModel::rate_distribution`]
//!    returns the normal distribution of the per-KB transmission rate that the
//!    EB/PC/EBPC metrics plug into equation (5). Models that are not natively
//!    normal (fixed rate, shifted gamma) return their moment-matched normal,
//!    which is exactly what a broker estimating mean/variance from
//!    measurements would arrive at.
//! 2. *What does the simulated network actually do?* —
//!    [`BandwidthModel::sample_transfer_ms`] draws the actual time to push a
//!    message of a given size over the link.

use bdps_stats::gamma::ShiftedGamma;
use bdps_stats::normal::Normal;
use bdps_stats::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Minimum physically plausible per-KB rate (ms/KB) used to truncate samples.
const MIN_RATE_MS_PER_KB: f64 = 0.01;

/// A model of one overlay link's available bandwidth.
pub trait BandwidthModel: std::fmt::Debug + Send + Sync {
    /// The (possibly moment-matched) normal distribution of the per-KB
    /// transmission rate in ms/KB — what the scheduling metrics consume.
    fn rate_distribution(&self) -> Normal;

    /// Samples the actual transfer time in milliseconds for `size_kb` kilobytes.
    fn sample_transfer_ms(&self, size_kb: f64, rng: &mut SimRng) -> f64;

    /// Mean per-KB rate in ms/KB (convenience).
    fn mean_rate(&self) -> f64 {
        self.rate_distribution().mean()
    }
}

/// The paper's model: `TR ~ N(μ, σ²)` ms/KB, sampled per message and
/// truncated at a small positive rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalRate {
    rate: Normal,
}

impl NormalRate {
    /// Creates a normally distributed rate with the given mean and standard
    /// deviation in ms/KB.
    pub fn new(mean_ms_per_kb: f64, std_dev_ms_per_kb: f64) -> Self {
        NormalRate {
            rate: Normal::new(mean_ms_per_kb, std_dev_ms_per_kb),
        }
    }

    /// The paper's evaluation draws each link's mean uniformly from
    /// [50, 100] ms/KB with a fixed standard deviation of 20 ms/KB (§6.1).
    pub fn paper_random(rng: &mut SimRng) -> Self {
        NormalRate::new(rng.uniform_range(50.0, 100.0), 20.0)
    }
}

impl BandwidthModel for NormalRate {
    fn rate_distribution(&self) -> Normal {
        self.rate
    }

    fn sample_transfer_ms(&self, size_kb: f64, rng: &mut SimRng) -> f64 {
        let rate = self.rate.sample_truncated_below(MIN_RATE_MS_PER_KB, rng);
        rate * size_kb
    }
}

/// A deterministic fixed rate — the "available bandwidth of each link is
/// fixed" assumption the paper attributes to QRON-style overlay QoS work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedRate {
    ms_per_kb: f64,
}

impl FixedRate {
    /// Creates a fixed rate in ms/KB.
    pub fn new(ms_per_kb: f64) -> Self {
        assert!(ms_per_kb > 0.0 && ms_per_kb.is_finite());
        FixedRate { ms_per_kb }
    }
}

impl BandwidthModel for FixedRate {
    fn rate_distribution(&self) -> Normal {
        Normal::new(self.ms_per_kb, 0.0)
    }

    fn sample_transfer_ms(&self, size_kb: f64, _rng: &mut SimRng) -> f64 {
        self.ms_per_kb * size_kb
    }
}

/// A per-KB rate following a shifted gamma distribution, matching the shape
/// reported by the Internet delay-measurement studies the paper cites
/// \[17, 18\]: a hard propagation floor plus a right-skewed queueing tail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShiftedGammaRate {
    rate: ShiftedGamma,
}

impl ShiftedGammaRate {
    /// Creates a shifted-gamma rate from its minimum, mean and standard
    /// deviation in ms/KB.
    pub fn from_min_mean_std(min: f64, mean: f64, std_dev: f64) -> Self {
        ShiftedGammaRate {
            rate: ShiftedGamma::from_min_mean_std(min, mean, std_dev),
        }
    }
}

impl BandwidthModel for ShiftedGammaRate {
    fn rate_distribution(&self) -> Normal {
        // Moment-matched normal: what a mean/variance estimator would report.
        Normal::from_mean_variance(self.rate.mean(), self.rate.variance())
    }

    fn sample_transfer_ms(&self, size_kb: f64, rng: &mut SimRng) -> f64 {
        self.rate.sample(rng).max(MIN_RATE_MS_PER_KB) * size_kb
    }
}

/// A type-erased, clonable bandwidth model handle used by link structures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AnyBandwidth {
    /// Normally distributed rate (the paper's model).
    Normal(NormalRate),
    /// Deterministic fixed rate.
    Fixed(FixedRate),
    /// Shifted-gamma rate.
    ShiftedGamma(ShiftedGammaRate),
}

impl BandwidthModel for AnyBandwidth {
    fn rate_distribution(&self) -> Normal {
        match self {
            AnyBandwidth::Normal(m) => m.rate_distribution(),
            AnyBandwidth::Fixed(m) => m.rate_distribution(),
            AnyBandwidth::ShiftedGamma(m) => m.rate_distribution(),
        }
    }

    fn sample_transfer_ms(&self, size_kb: f64, rng: &mut SimRng) -> f64 {
        match self {
            AnyBandwidth::Normal(m) => m.sample_transfer_ms(size_kb, rng),
            AnyBandwidth::Fixed(m) => m.sample_transfer_ms(size_kb, rng),
            AnyBandwidth::ShiftedGamma(m) => m.sample_transfer_ms(size_kb, rng),
        }
    }
}

impl From<NormalRate> for AnyBandwidth {
    fn from(m: NormalRate) -> Self {
        AnyBandwidth::Normal(m)
    }
}

impl From<FixedRate> for AnyBandwidth {
    fn from(m: FixedRate) -> Self {
        AnyBandwidth::Fixed(m)
    }
}

impl From<ShiftedGammaRate> for AnyBandwidth {
    fn from(m: ShiftedGammaRate) -> Self {
        AnyBandwidth::ShiftedGamma(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_rate_samples_scale_with_size() {
        let m = NormalRate::new(60.0, 0.0); // degenerate for exactness
        let mut rng = SimRng::seed_from(1);
        assert!((m.sample_transfer_ms(1.0, &mut rng) - 60.0).abs() < 1e-9);
        assert!((m.sample_transfer_ms(50.0, &mut rng) - 3_000.0).abs() < 1e-9);
        assert_eq!(m.mean_rate(), 60.0);
    }

    #[test]
    fn normal_rate_sample_mean_matches_distribution() {
        let m = NormalRate::new(75.0, 20.0);
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_transfer_ms(1.0, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 75.0).abs() < 0.5, "mean = {mean}");
    }

    #[test]
    fn normal_rate_samples_are_positive_even_for_noisy_links() {
        let m = NormalRate::new(5.0, 50.0);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..2_000 {
            assert!(m.sample_transfer_ms(10.0, &mut rng) > 0.0);
        }
    }

    #[test]
    fn paper_random_links_are_in_range() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..100 {
            let m = NormalRate::paper_random(&mut rng);
            let d = m.rate_distribution();
            assert!((50.0..100.0).contains(&d.mean()));
            assert!((d.std_dev() - 20.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fixed_rate_is_deterministic() {
        let m = FixedRate::new(80.0);
        let mut rng = SimRng::seed_from(5);
        assert_eq!(m.sample_transfer_ms(50.0, &mut rng), 4_000.0);
        assert_eq!(m.rate_distribution().std_dev(), 0.0);
        assert_eq!(m.rate_distribution().mean(), 80.0);
    }

    #[test]
    #[should_panic]
    fn fixed_rate_rejects_nonpositive() {
        let _ = FixedRate::new(0.0);
    }

    #[test]
    fn shifted_gamma_rate_moments_and_floor() {
        let m = ShiftedGammaRate::from_min_mean_std(50.0, 70.0, 10.0);
        let d = m.rate_distribution();
        assert!((d.mean() - 70.0).abs() < 1e-9);
        assert!((d.std_dev() - 10.0).abs() < 1e-9);
        let mut rng = SimRng::seed_from(6);
        for _ in 0..2_000 {
            assert!(m.sample_transfer_ms(1.0, &mut rng) >= 50.0);
        }
    }

    #[test]
    fn any_bandwidth_dispatch() {
        let mut rng = SimRng::seed_from(7);
        let models: Vec<AnyBandwidth> = vec![
            NormalRate::new(60.0, 10.0).into(),
            FixedRate::new(60.0).into(),
            ShiftedGammaRate::from_min_mean_std(40.0, 60.0, 10.0).into(),
        ];
        for m in &models {
            assert!((m.mean_rate() - 60.0).abs() < 1e-9);
            assert!(m.sample_transfer_ms(1.0, &mut rng) > 0.0);
        }
    }
}
