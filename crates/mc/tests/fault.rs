//! Explorer self-tests: arm the engine's deliberately broken invariants
//! (`--features fault-injection`) and prove the model checker actually
//! catches violations — with a counterexample that survives a JSON round
//! trip and replays to the same violation kind.
//!
//! Without this suite a subtly inert checker (wrong hook order, a check
//! that can never fire) would pass every green test forever.

#![cfg(feature = "fault-injection")]

use bdps_mc::{explore, replay, CheckCell, Counterexample, ExploreBudget, McModel, ModelTopology};
use bdps_sim::engine::InjectedFault;
use bdps_sim::scenario::ScenarioAction;
use bdps_types::id::LinkId;
use bdps_types::time::Duration;

fn delivery_model() -> McModel {
    let mut model = McModel::named("fault-double-delivery", ModelTopology::Line(3));
    model.publishers = vec![0, 2];
    model.subscribers = vec![0, 1, 1, 2];
    model.publications_per_publisher = 4;
    model
}

fn flap_model() -> McModel {
    let mut model = McModel::named("fault-voided-transfer", ModelTopology::Line(3));
    model.publishers = vec![0, 2];
    model.subscribers = vec![0, 1, 1, 2];
    model.publications_per_publisher = 2;
    // Flap l0 inside the [5.002 s, 6.002 s] transfer window of the first
    // publication so a completion gets voided (see tests/regressions.rs).
    model.events = vec![
        (
            Duration::from_millis(5_300),
            ScenarioAction::LinkDown {
                link: LinkId::new(0),
            },
        ),
        (
            Duration::from_millis(5_600),
            ScenarioAction::LinkUp {
                link: LinkId::new(0),
            },
        ),
    ];
    // A vanished copy strands the run short of full drainage; the fault
    // under test is the conservation break, not the stranding.
    model.require_quiescence = false;
    model
}

/// Explores under the given fault, asserts the expected violation kind, and
/// proves the emitted counterexample round-trips through JSON and replays
/// to the same violation.
fn assert_caught_and_replayable(mut model: McModel, fault: InjectedFault, expect_kind: &str) {
    model.fault = Some(fault);
    let cell = CheckCell::all()[0];
    let exploration = explore(&model, cell, &ExploreBudget::default());
    let cex = exploration
        .counterexample
        .unwrap_or_else(|| panic!("{fault:?} must be caught by the explorer"));
    assert_eq!(cex.kind, expect_kind, "violation: {}", cex.violation);
    assert_eq!(cex.model, model.name);
    assert_eq!(cex.seed, model.seed);

    let parsed =
        Counterexample::from_json(&cex.to_json()).expect("emitted counterexample must parse back");
    assert_eq!(parsed, cex, "JSON round trip must be lossless");

    let replay_cell = CheckCell::from_name(&parsed.cell).expect("cell name must parse");
    let violation = replay(&model, replay_cell, &parsed.choices)
        .expect("replaying the trace must reproduce the violation");
    assert_eq!(violation.kind(), expect_kind);
}

#[test]
fn double_delivery_fault_is_caught_with_a_replayable_trace() {
    assert_caught_and_replayable(
        delivery_model(),
        InjectedFault::DoubleDelivery,
        "duplicate-delivery",
    );
}

#[test]
fn vanishing_voided_transfer_breaks_conservation_and_is_caught() {
    assert_caught_and_replayable(
        flap_model(),
        InjectedFault::VoidedTransferVanishes,
        "conservation",
    );
}

#[test]
fn unfaulted_twins_of_the_fault_models_are_clean() {
    // Guard against the faults "passing" only because the base models are
    // broken: with no fault armed both models must explore clean.
    for model in [delivery_model(), flap_model()] {
        for cell in CheckCell::all() {
            let exploration = explore(&model, cell, &ExploreBudget::default());
            assert!(
                exploration.ok(),
                "{} violated {} without a fault armed: {}",
                model.name,
                cell.name(),
                exploration.counterexample.unwrap().to_json()
            );
        }
    }
}
