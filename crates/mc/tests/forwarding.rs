//! The aggregate-forwarding delivery-set oracle at model-checking depth.
//!
//! Aggregate-scoped forwarding deliberately changes *traffic*: interior
//! copies carry covering aggregates, which admit false positives, and the
//! concrete subscriber set is only resolved at the edge broker. What it must
//! never change is the *delivery set* — the exact set of `(message,
//! subscriber)` pairs delivered. The integration oracle
//! (`tests/forwarding_equivalence.rs`) samples that claim over seeded runs;
//! this suite proves it exhaustively on tiny models: for every interleaving
//! of every {scheduler × policy} cell, the set of terminal delivery sets
//! reached under aggregate forwarding equals the set reached under exact
//! forwarding — including under mid-run subscription churn, where the
//! publish-epoch freeze must reproduce exact mode's frozen-scope semantics.

use std::collections::{BTreeSet, HashMap};

use bdps_mc::{explore, CheckCell, ExploreBudget, McModel, ModelTopology};
use bdps_overlay::sparse::TableLayout;
use bdps_sim::engine::ForwardingMode;
use bdps_sim::scenario::ScenarioAction;
use bdps_types::id::SubscriptionId;
use bdps_types::time::Duration;

/// One terminal delivery set: the sorted `(message, subscriber)` pairs a
/// fully-drained interleaving delivered.
type DeliverySets = BTreeSet<Vec<(u64, u32)>>;

fn static_model() -> McModel {
    let mut model = McModel::named("forwarding-line3", ModelTopology::Line(3));
    // Publishers on both ends, subscribers everywhere: every copy crosses
    // the interior broker, so aggregate scopes are exercised on every path.
    model.publishers = vec![0, 2];
    model.subscribers = vec![0, 1, 1, 2];
    model.publications_per_publisher = 3;
    model
}

fn churn_model() -> McModel {
    let mut model = McModel::named("forwarding-churn-line3", ModelTopology::Line(3));
    model.publishers = vec![0, 2];
    model.subscribers = vec![0, 1, 1, 2];
    model.publications_per_publisher = 2;
    model.publish_gap = Duration::from_secs(5);
    // Subscription 1 (edge B1) leaves between the first publication instant
    // (t = 5 s) and the second (t = 10 s), while first-wave copies may still
    // be in flight: exact mode strips the leaver from queued target lists,
    // aggregate mode must drop it at edge expansion — same delivery set.
    model.events = vec![(
        Duration::from_millis(5_500),
        ScenarioAction::SubscriptionLeave {
            subscription: SubscriptionId::new(1),
        },
    )];
    model
}

/// A leave timed *strictly between* a publication instant and the earliest
/// possible edge expansion of its copies: publications fire at t = 5 s,
/// links move 50 KB at 20 ms/KB = 1 s per hop, so no first-wave copy can
/// reach an edge broker before t = 6 s — and subscription 1 leaves at
/// t = 5.2 s with every copy still in flight. Subscription 2 shares edge B1
/// with the leaver, so the group survives and its QoS envelope must
/// *change* (the earning sum always shrinks when a member leaves, the min
/// bound may widen). The engine's per-event table audit recomputes every
/// aggregate's envelope from the current member records, so a
/// `sync_aggregate` that lagged the member removal by even one event —
/// leaving a stale envelope while the member list already shrank — fails
/// the exploration at the leave event itself, in every interleaving.
fn leave_before_expansion_model() -> McModel {
    let mut model = McModel::named(
        "forwarding-leave-preexpansion-line3",
        ModelTopology::Line(3),
    );
    model.publishers = vec![0, 2];
    model.subscribers = vec![0, 1, 1, 2];
    model.publications_per_publisher = 2;
    model.publish_gap = Duration::from_secs(5);
    model.events = vec![(
        Duration::from_millis(5_200),
        ScenarioAction::SubscriptionLeave {
            subscription: SubscriptionId::new(1),
        },
    )];
    model
}

/// Explores `model` under every sparse-layout cell and asserts that, for
/// each {scheduler × policy} point, aggregate forwarding reaches exactly
/// the same set of terminal delivery sets as exact forwarding.
fn assert_delivery_sets_match(model: &McModel) {
    model.validate().expect("model is in bounds");
    let budget = ExploreBudget::default();
    let mut by_mode: HashMap<(&str, &str, &str), DeliverySets> = HashMap::new();
    for cell in CheckCell::all() {
        if cell.layout != TableLayout::Sparse {
            continue;
        }
        let exploration = explore(model, cell, &budget);
        if let Some(cex) = &exploration.counterexample {
            panic!(
                "invariant violated under {}: {}\ntrace: {}",
                cell.name(),
                cex.violation,
                cex.to_json()
            );
        }
        assert!(
            !exploration.stats.terminal_delivery_sets.is_empty(),
            "{}: no terminal delivery set collected",
            cell.name()
        );
        by_mode.insert(
            (
                cell.queue.name(),
                cell.policy.name(),
                cell.forwarding.name(),
            ),
            exploration.stats.terminal_delivery_sets.clone(),
        );
    }
    for ((queue, policy, forwarding), sets) in &by_mode {
        if *forwarding != ForwardingMode::Aggregate.name() {
            continue;
        }
        let exact = &by_mode[&(*queue, *policy, ForwardingMode::Exact.name())];
        assert_eq!(
            exact, sets,
            "delivery sets diverged between exact and aggregate forwarding \
             under queue={queue} policy={policy}"
        );
    }
    // Sanity: something was actually delivered, in at least one terminal.
    assert!(
        by_mode.values().flatten().any(|set| !set.is_empty()),
        "model never delivered anything — the oracle is vacuous"
    );
}

#[test]
fn aggregate_forwarding_preserves_the_delivery_set_in_every_interleaving() {
    assert_delivery_sets_match(&static_model());
}

#[test]
fn aggregate_forwarding_preserves_the_delivery_set_under_churn() {
    assert_delivery_sets_match(&churn_model());
}

#[test]
fn envelope_tracks_member_list_through_a_midflight_leave() {
    assert_delivery_sets_match(&leave_before_expansion_model());
}
