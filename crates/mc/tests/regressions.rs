//! Historical oracle-found bugs, re-encoded as tiny exhaustively-explored
//! models so they can never silently return.
//!
//! * **Calendar rewidth on sparse pops** — the calendar queue once
//!   mis-resized its buckets when a dense burst of events was followed by a
//!   long silent stretch ending in one far-future event, perturbing pop
//!   order relative to the binary heap. The model packs eight publications
//!   into the first seconds and parks one scenario event minutes later;
//!   the regression holds iff the heap and calendar cells reach identical
//!   terminal-state sets.
//! * **Nested flap contained in a transfer** — a link that failed *and*
//!   recovered (twice, nested) entirely within one copy's transfer window
//!   once confused the generation check that voids stale completions,
//!   leaking or double-counting the in-flight copy. The model flaps the
//!   first-hop link inside a 1-second transfer; conservation must hold
//!   after every event in every interleaving.

use bdps_mc::{explore, CheckCell, ExploreBudget, McModel, ModelTopology};
use bdps_sim::scenario::ScenarioAction;
use bdps_types::id::LinkId;
use bdps_types::time::Duration;

fn calendar_rewidth_model() -> McModel {
    let mut model = McModel::named("calendar-rewidth", ModelTopology::Line(3));
    model.publishers = vec![0, 2];
    model.subscribers = vec![0, 1, 1, 2];
    model.publications_per_publisher = 4;
    model.publish_gap = Duration::from_secs(1);
    // One event far past the publication burst: the queue's time span stays
    // minutes wide while pops drain the dense early seconds, which is
    // exactly the shape that once made the calendar queue rewidth wrongly.
    model.events = vec![(
        Duration::from_secs(300),
        ScenarioAction::PhaseMark {
            label: "far-future".into(),
        },
    )];
    model
}

#[test]
fn calendar_rewidth_on_sparse_pops_matches_the_heap_everywhere() {
    let model = calendar_rewidth_model();
    model.validate().expect("model is in bounds");
    let budget = ExploreBudget::default();
    for cell in CheckCell::all() {
        let exploration = explore(&model, cell, &budget);
        assert!(
            exploration.ok(),
            "violation under {}: {}",
            cell.name(),
            exploration.counterexample.unwrap().to_json()
        );
        if cell.queue.name() == "calendar" {
            let heap_cell = CheckCell {
                queue: bdps_sim::sched::EventQueueKind::BinaryHeap,
                ..cell
            };
            let heap = explore(&model, heap_cell, &budget);
            assert_eq!(
                heap.stats.terminal_digests,
                exploration.stats.terminal_digests,
                "calendar rewidth perturbed terminal states for {}",
                cell.name()
            );
        }
    }
}

fn nested_flap_model() -> McModel {
    let mut model = McModel::named("nested-flap", ModelTopology::Line(3));
    model.publishers = vec![0, 2];
    model.subscribers = vec![0, 1, 1, 2];
    // 2 publishers × 2 publications (t = 5 s, 10 s) + 4 flap events = 8.
    model.publications_per_publisher = 2;
    // 50 KB × 20 ms/KB = 1 s per hop: the first-hop copy of the t = 5 s
    // publication is in flight on l0 (B0→B1) over [5.002 s, 6.002 s]. Both
    // failures and both recoveries land inside that window — the flap is
    // invisible at the endpoints and only the generation check can tell the
    // completion is stale.
    model.events = vec![
        (
            Duration::from_millis(5_300),
            ScenarioAction::LinkDown {
                link: LinkId::new(0),
            },
        ),
        (
            Duration::from_millis(5_450),
            ScenarioAction::LinkDown {
                link: LinkId::new(0),
            },
        ),
        (
            Duration::from_millis(5_600),
            ScenarioAction::LinkUp {
                link: LinkId::new(0),
            },
        ),
        (
            Duration::from_millis(5_750),
            ScenarioAction::LinkUp {
                link: LinkId::new(0),
            },
        ),
    ];
    model
}

#[test]
fn nested_flap_contained_in_a_transfer_conserves_every_copy() {
    let model = nested_flap_model();
    model.validate().expect("model is in bounds");

    // The regression only bites if the flap actually voids a transfer: the
    // default-order run must exercise the requeue path, otherwise the model
    // has drifted away from the bug it encodes.
    let probe = model.build(CheckCell::all()[0]).run();
    assert!(probe.transmissions > 0, "model must put copies on the wire");
    assert!(
        probe.requeued() > 0,
        "the contained flap must void and requeue at least one transfer"
    );

    let budget = ExploreBudget::default();
    for cell in CheckCell::all() {
        let exploration = explore(&model, cell, &budget);
        assert!(
            exploration.ok(),
            "violation under {}: {}",
            cell.name(),
            exploration.counterexample.unwrap().to_json()
        );
        assert!(
            exploration.stats.terminals > 0,
            "{}: flapped link must still drain to quiescence",
            cell.name()
        );
    }
}
