//! Shard-boundary models: tiny deployments whose traffic is forced across
//! the contiguous broker→shard partition the multi-core executor uses.
//!
//! Each model is checked two ways:
//!
//! 1. **Exhaustively** — the explorer enumerates every ordering of
//!    simultaneous events under every `{scheduler × policy × layout}` cell,
//!    holding the standard invariants (conservation, no duplicates,
//!    quiescence) after every event. This pins the *sequential* semantics.
//! 2. **Differentially** — the same model is run through
//!    [`bdps_sim::run_sharded`] at every shard count from 2 up to one shard
//!    per broker, and the outcome must match the sequential run on every
//!    report-visible metric. Combined with (1), any interleaving bug at a
//!    shard boundary either shows up as an invariant violation or as a
//!    drift from the sequential oracle.
//!
//! The models are shaped so the boundary is load-bearing: on a 4-broker
//! line split 2+2, every delivery crosses the one cut link; the flap model
//! kills exactly that cut link mid-transfer, so the voided-transfer requeue
//! and the scenario barrier both happen at the boundary.

use bdps_mc::{explore, CheckCell, ExploreBudget, McModel, ModelTopology};
use bdps_sim::engine::{ForwardingMode, SimulationOutcome};
use bdps_sim::run_sharded;
use bdps_sim::scenario::ScenarioAction;
use bdps_types::id::LinkId;
use bdps_types::time::{Duration, SimTime};

/// Every report-visible metric of an outcome, collected so sequential and
/// sharded runs can be compared with one `assert_eq!`. Floats are compared
/// exactly — the executor's effect-log replay promises bit-identical
/// accumulation order, not just tolerance-close results.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    published: u64,
    interested: u64,
    on_time: u64,
    late: u64,
    delivery_rate: f64,
    total_earning: f64,
    message_number: u64,
    dropped_expired: u64,
    dropped_unlikely: u64,
    dropped_unsubscribed: u64,
    requeued: u64,
    duplicate_deliveries: u64,
    transmissions: u64,
    completed_transfers: u64,
    mean_valid_delay_ms: f64,
    finished_at: SimTime,
    events_processed: u64,
    queued_at_end: u64,
    in_flight_at_end: u64,
    pending_process_at_end: u64,
    phases: Vec<(String, u64, u64, u64, u64, u64)>,
}

fn fingerprint(out: &SimulationOutcome) -> Fingerprint {
    Fingerprint {
        published: out.published,
        interested: out.tracker.total_interested(),
        on_time: out.tracker.total_on_time(),
        late: out.tracker.total_late(),
        delivery_rate: out.tracker.delivery_rate(),
        total_earning: out.tracker.total_earning().as_f64(),
        message_number: out.message_number(),
        dropped_expired: out.dropped_expired(),
        dropped_unlikely: out.dropped_unlikely(),
        dropped_unsubscribed: out.dropped_unsubscribed(),
        requeued: out.requeued(),
        duplicate_deliveries: out.tracker.duplicate_deliveries(),
        transmissions: out.transmissions,
        completed_transfers: out.completed_transfers,
        mean_valid_delay_ms: out.valid_delays_ms.clone().mean(),
        finished_at: out.finished_at,
        events_processed: out.events_processed,
        queued_at_end: out.queued_at_end,
        in_flight_at_end: out.in_flight_at_end,
        pending_process_at_end: out.pending_process_at_end,
        phases: out
            .phases
            .iter()
            .map(|p| {
                (
                    p.label.clone(),
                    p.published,
                    p.on_time,
                    p.late,
                    p.dropped,
                    p.transmissions,
                )
            })
            .collect(),
    }
}

/// Explores the model exhaustively in every cell, then holds every shard
/// count from 2 to one-shard-per-broker to the sequential oracle.
fn check_boundary_model(model: &McModel) {
    model.validate().expect("model is in bounds");
    let budget = ExploreBudget::default();
    for cell in CheckCell::all() {
        let exploration = explore(model, cell, &budget);
        assert!(
            exploration.ok(),
            "{}: violation under {}: {}",
            model.name,
            cell.name(),
            exploration.counterexample.unwrap().to_json()
        );

        let oracle = fingerprint(&model.build(cell).run());
        if cell.forwarding == ForwardingMode::Aggregate {
            // The sharded executor rejects aggregate forwarding (edge
            // expansion would race cross-shard churn); those cells are
            // covered by the exhaustive pass above only.
            continue;
        }
        for shards in 2..=model.topology.brokers() {
            let sharded = fingerprint(&run_sharded(model.build(cell), shards));
            assert_eq!(
                sharded,
                oracle,
                "{}: {shards}-shard run drifted from the sequential oracle \
                 under {}",
                model.name,
                cell.name()
            );
        }
    }
}

/// Line(4) split 2+2 (or 1+1+1+1): publishers at the ends, subscribers in
/// the middle, so every copy crosses at least one shard boundary and the
/// two publication streams meet head-on at the cut.
fn boundary_line_model() -> McModel {
    let mut model = McModel::named("shard-boundary-line", ModelTopology::Line(4));
    model.publishers = vec![0, 3];
    model.subscribers = vec![1, 2, 1, 2];
    model.publications_per_publisher = 4;
    model.publish_gap = Duration::from_secs(5);
    model
}

#[test]
fn boundary_line_matches_the_sequential_oracle_at_every_shard_count() {
    check_boundary_model(&boundary_line_model());
}

/// Line(4) whose *cut* link (B1↔B2, the one every 2-shard delivery rides)
/// flaps while a copy is in flight on it: the voided transfer is requeued
/// on one side of the boundary and the scenario barrier that serialises the
/// flap happens between windows. 50 KB × 20 ms/KB = 1 s per hop, so the
/// t = 5 s publication from B0 is on l2 (B1→B2) over roughly
/// [6.004 s, 7.004 s]; both the failure and the recovery land inside.
fn boundary_flap_model() -> McModel {
    let mut model = McModel::named("shard-boundary-flap", ModelTopology::Line(4));
    model.publishers = vec![0];
    model.subscribers = vec![2, 3, 3];
    model.publications_per_publisher = 3;
    model.publish_gap = Duration::from_secs(5);
    model.events = vec![
        (
            Duration::from_millis(6_300),
            ScenarioAction::LinkDown {
                link: LinkId::new(2),
            },
        ),
        (
            Duration::from_millis(6_700),
            ScenarioAction::LinkUp {
                link: LinkId::new(2),
            },
        ),
    ];
    model
}

#[test]
fn boundary_flap_voids_transfers_without_drifting_from_the_oracle() {
    let model = boundary_flap_model();
    // The model only earns its keep if the flap actually voids a copy on
    // the cut link — otherwise it has drifted away from the boundary
    // behaviour it is meant to pin.
    let probe = model.build(CheckCell::all()[0]).run();
    assert!(
        probe.requeued() > 0,
        "the flap must void and requeue at least one boundary transfer"
    );
    check_boundary_model(&model);
}

/// Star(4): the hub is homed in shard 0 while the spokes spread across the
/// remaining shards, so spoke→spoke traffic crosses a boundary inbound and
/// a (usually different) boundary outbound within one processing hop.
fn boundary_star_model() -> McModel {
    let mut model = McModel::named("shard-boundary-star", ModelTopology::Star(4));
    model.publishers = vec![1, 2];
    model.subscribers = vec![2, 3, 3, 1];
    model.publications_per_publisher = 3;
    model.publish_gap = Duration::from_secs(5);
    model
}

#[test]
fn boundary_star_funnels_through_the_hub_without_drifting() {
    check_boundary_model(&boundary_star_model());
}
