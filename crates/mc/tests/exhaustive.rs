//! The acceptance model of the `bdps-mc` subsystem: a 3-broker line with
//! two symmetric publishers (same deterministic gap, so every publication
//! instant is a genuine same-instant collision), four subscriptions and
//! eight publications, exhaustively explored under **every** cell of the
//! {event scheduler × rebuild policy × table layout × forwarding mode}
//! cross-product.
//!
//! Beyond "no invariant ever breaks in any interleaving", the scheduler
//! axis carries an extra obligation: the binary-heap and calendar queues
//! must reach the *same set of terminal states* for the same (policy,
//! layout) — the scheduler is an implementation detail and must not leak
//! into protocol behaviour.

use std::collections::HashMap;

use bdps_mc::{explore, CheckCell, ExploreBudget, McModel, ModelTopology};

fn acceptance_model() -> McModel {
    let mut model = McModel::named("acceptance-line3", ModelTopology::Line(3));
    // B0 —l0/l1— B1 —l2/l3— B2; publishers on both ends force traffic
    // through the middle broker in both directions, so B1 sees same-instant
    // arrival collisions on top of the publication collisions.
    model.publishers = vec![0, 2];
    model.subscribers = vec![0, 1, 1, 2];
    model.publications_per_publisher = 4; // 2 × 4 = 8 events
    model
}

#[test]
fn every_cell_upholds_every_invariant_in_every_interleaving() {
    let model = acceptance_model();
    model.validate().expect("acceptance model is in bounds");
    let budget = ExploreBudget::default();

    // Terminal-state digests keyed by the non-scheduler axes: when the heap
    // and calendar cells of the same (policy, layout, forwarding) disagree,
    // the scheduler has changed observable protocol state.
    let mut digests: HashMap<(&str, &str, &str), Vec<u64>> = HashMap::new();

    let cells = CheckCell::all();
    assert_eq!(
        cells.len(),
        12,
        "2 schedulers × 2 policies × 2 layouts, plus 2 × 2 aggregate × sparse"
    );
    for cell in cells {
        let exploration = explore(&model, cell, &budget);
        if let Some(cex) = &exploration.counterexample {
            panic!(
                "invariant violated under {}: {}\ntrace: {}",
                cell.name(),
                cex.violation,
                cex.to_json()
            );
        }
        let stats = &exploration.stats;
        assert!(stats.terminals > 0, "{}: no terminal reached", cell.name());
        assert!(
            stats.branch_points > 0,
            "{}: symmetric publishers must produce same-instant frontiers",
            cell.name()
        );
        assert!(
            stats.max_frontier >= 2,
            "{}: no simultaneous events seen — the model is not exercising \
             interleavings at all",
            cell.name()
        );
        assert!(
            stats.deduped > 0,
            "{}: commuting publications must merge via the state digest",
            cell.name()
        );

        let key = (
            cell.policy.name(),
            cell.layout.name(),
            cell.forwarding.name(),
        );
        if let Some(previous) = digests.insert(key, stats.terminal_digests.clone()) {
            assert_eq!(
                previous, digests[&key],
                "heap and calendar schedulers reached different terminal states \
                 for policy={} layout={} forwarding={}",
                key.0, key.1, key.2
            );
        }
    }
}
