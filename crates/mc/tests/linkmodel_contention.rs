//! Fair-share link contention under exhaustive interleaving: two publishers
//! on the *same* broker publish at the same deterministic instants, so both
//! copies want the single `B0 → B1` link at once. Under the constant-delay
//! model the second copy waits in the output queue; under fair-share both
//! are admitted as concurrent flows and the link's completion times are
//! recomputed at each admission/departure. The explorer enumerates every
//! ordering of the same-instant events under every {scheduler × policy ×
//! layout} cell and checks the engine's invariants in each.

use std::collections::HashMap;

use bdps_mc::{explore, CheckCell, ExploreBudget, McModel, ModelTopology};
use bdps_net::linkmodel::LinkModelKind;

/// Two same-broker publishers, one two-broker line: every publication
/// instant puts two copies in front of the same link.
fn contention_model(link_model: LinkModelKind) -> McModel {
    let mut model = McModel::named("contention-line2", ModelTopology::Line(2));
    model.publishers = vec![0, 0];
    // Six subscriptions on the far broker and this seed make every
    // publication match at least one of them (filters are seed-derived), so
    // all four copies cross the single B0 → B1 link.
    model.subscribers = vec![1; 6];
    model.publications_per_publisher = 2; // 2 × 2 = 4 events
    model.link_model = link_model;
    model.seed = 4;
    model
}

#[test]
fn fair_share_contention_upholds_every_invariant_in_every_interleaving() {
    let model = contention_model(LinkModelKind::FairShare);
    model.validate().expect("contention model is in bounds");
    let budget = ExploreBudget::default();

    let mut digests: HashMap<(&str, &str, &str), Vec<u64>> = HashMap::new();
    for cell in CheckCell::all() {
        let exploration = explore(&model, cell, &budget);
        if let Some(cex) = &exploration.counterexample {
            panic!(
                "invariant violated under {}: {}\ntrace: {}",
                cell.name(),
                cex.violation,
                cex.to_json()
            );
        }
        let stats = &exploration.stats;
        assert!(stats.terminals > 0, "{}: no terminal reached", cell.name());
        assert!(
            stats.branch_points > 0,
            "{}: same-instant publications must produce frontiers",
            cell.name()
        );

        // The scheduler axis must not leak into protocol behaviour even
        // with flow re-scheduling in play.
        let key = (
            cell.policy.name(),
            cell.layout.name(),
            cell.forwarding.name(),
        );
        if let Some(previous) = digests.insert(key, stats.terminal_digests.clone()) {
            assert_eq!(
                previous, digests[&key],
                "heap and calendar schedulers reached different terminal states \
                 for policy={} layout={} forwarding={}",
                key.0, key.1, key.2
            );
        }
    }
}

#[test]
fn fair_share_actually_contends_and_constant_delay_serialises() {
    // A straight (non-explored) run of the same model pins the observable
    // difference between the models: fair-share admits both same-instant
    // copies as concurrent flows, the exclusive oracle never has more than
    // one in flight.
    let cell = CheckCell::all()[0];
    let fair = contention_model(LinkModelKind::FairShare).build(cell).run();
    let peak_fair = fair.link_loads.iter().map(|l| l.peak_flows).max().unwrap();
    assert!(
        peak_fair >= 2,
        "same-instant copies must share the link (peak flows {peak_fair})"
    );
    fair.check_conservation().unwrap();
    fair.check_no_duplicates().unwrap();

    let constant = contention_model(LinkModelKind::Constant).build(cell).run();
    let peak_const = constant
        .link_loads
        .iter()
        .map(|l| l.peak_flows)
        .max()
        .unwrap();
    assert!(peak_const <= 1, "the exclusive model serialises transfers");
    // Both models deliver everything eventually — contention changes
    // timing, not delivery.
    assert_eq!(fair.published, constant.published);
    assert_eq!(
        fair.tracker.total_on_time() + fair.tracker.total_late(),
        constant.tracker.total_on_time() + constant.tracker.total_late(),
        "fair sharing must not lose deliveries"
    );
}
