//! Replayable counterexample traces.
//!
//! A [`Counterexample`] pins everything needed to re-drive the engine down
//! the violating path: the model name and seed, the
//! {scheduler × policy × layout} cell, the violated invariant, and the
//! ordered branch [`ChoiceRecord`]s. Traces serialise to a single JSON
//! object so CI can upload them as artifacts; the JSON is hand-rolled
//! against a minimal parser because the vendored `serde` is a marker-only
//! stand-in (the same precedent as the `scale` bench reports).

use std::fmt::Write as _;

/// One branch decision: which of the same-instant frontier events was
/// applied first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceRecord {
    /// The frontier instant, in microseconds since the simulation epoch.
    pub time_us: u64,
    /// Label of the event applied first (see `EventKind::label`).
    pub chosen: String,
    /// Labels of the whole frontier in default scheduling order; the first
    /// entry is the choice a plain run would have made.
    pub alternatives: Vec<String>,
}

/// A minimised, replayable witness of an invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Name of the violated model.
    pub model: String,
    /// The model seed (filters and message contents derive from it).
    pub seed: u64,
    /// The cell name, parseable with `CheckCell::from_name`.
    pub cell: String,
    /// Machine-readable violation discriminant (`InvariantViolation::kind`).
    pub kind: String,
    /// Human-readable description of the violated invariant.
    pub violation: String,
    /// Branch choices, in order; replay defaults past the end of the list.
    pub choices: Vec<ChoiceRecord>,
}

impl Counterexample {
    /// Serialises the trace to a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        write!(
            out,
            "\"model\":{},\"seed\":{},\"cell\":{},\"kind\":{},\"violation\":{},\"choices\":[",
            json_string(&self.model),
            self.seed,
            json_string(&self.cell),
            json_string(&self.kind),
            json_string(&self.violation),
        )
        .expect("writing to a String cannot fail");
        for (i, choice) in self.choices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"time_us\":{},\"chosen\":{},\"alternatives\":[",
                choice.time_us,
                json_string(&choice.chosen)
            )
            .expect("writing to a String cannot fail");
            for (j, alt) in choice.alternatives.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(alt));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a trace previously produced by [`to_json`](Self::to_json).
    pub fn from_json(text: &str) -> Result<Counterexample, String> {
        let value = Parser::new(text).parse()?;
        let obj = value.as_object("counterexample")?;
        let choices_value = obj_get(obj, "choices")?;
        let mut choices = Vec::new();
        for entry in choices_value.as_array("choices")? {
            let choice = entry.as_object("choice")?;
            let mut alternatives = Vec::new();
            for alt in obj_get(choice, "alternatives")?.as_array("alternatives")? {
                alternatives.push(alt.as_string("alternative")?.to_string());
            }
            choices.push(ChoiceRecord {
                time_us: obj_get(choice, "time_us")?.as_u64("time_us")?,
                chosen: obj_get(choice, "chosen")?.as_string("chosen")?.to_string(),
                alternatives,
            });
        }
        Ok(Counterexample {
            model: obj_get(obj, "model")?.as_string("model")?.to_string(),
            seed: obj_get(obj, "seed")?.as_u64("seed")?,
            cell: obj_get(obj, "cell")?.as_string("cell")?.to_string(),
            kind: obj_get(obj, "kind")?.as_string("kind")?.to_string(),
            violation: obj_get(obj, "violation")?
                .as_string("violation")?
                .to_string(),
            choices,
        })
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail")
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The subset of JSON the traces use: objects, arrays, strings and
/// non-negative integers.
enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    String(String),
    Number(u64),
}

impl Value {
    fn as_object(&self, what: &str) -> Result<&[(String, Value)], String> {
        match self {
            Value::Object(fields) => Ok(fields),
            _ => Err(format!("{what}: expected an object")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Value], String> {
        match self {
            Value::Array(items) => Ok(items),
            _ => Err(format!("{what}: expected an array")),
        }
    }

    fn as_string(&self, what: &str) -> Result<&str, String> {
        match self {
            Value::String(s) => Ok(s),
            _ => Err(format!("{what}: expected a string")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Value::Number(n) => Ok(*n),
            _ => Err(format!("{what}: expected a number")),
        }
    }
}

fn obj_get<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field \"{key}\""))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Value, String> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing input at byte {}", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' in object, found '{}' at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' in array, found '{}' at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            self.pos += 4;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape \"{hex}\""))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: take the full scalar from the source.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid UTF-8");
        digits
            .parse::<u64>()
            .map(Value::Number)
            .map_err(|_| format!("number out of range at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counterexample {
        Counterexample {
            model: "nested-flap".into(),
            seed: 7,
            cell: "calendar/incremental/sparse".into(),
            kind: "conservation".into(),
            violation: "transfer balance broke: \"in flight\" copy vanished".into(),
            choices: vec![
                ChoiceRecord {
                    time_us: 5_000_000,
                    chosen: "publish:p1".into(),
                    alternatives: vec!["publish:p0".into(), "publish:p1".into()],
                },
                ChoiceRecord {
                    time_us: 6_002_000,
                    chosen: "link-up:l2".into(),
                    alternatives: vec!["send-complete:l2".into(), "link-up:l2".into()],
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_including_escapes() {
        let cex = sample();
        let json = cex.to_json();
        assert_eq!(Counterexample::from_json(&json).unwrap(), cex);
    }

    #[test]
    fn empty_choice_list_round_trips() {
        let mut cex = sample();
        cex.choices.clear();
        assert_eq!(Counterexample::from_json(&cex.to_json()).unwrap(), cex);
    }

    #[test]
    fn malformed_json_is_rejected_with_a_reason() {
        assert!(Counterexample::from_json("").is_err());
        assert!(Counterexample::from_json("{\"model\":\"m\"}").is_err());
        assert!(Counterexample::from_json("{\"model\":1}junk").is_err());
    }
}
