//! Tiny checkable models and the {scheduler × policy × layout} cells they
//! are explored under.
//!
//! A [`McModel`] is a complete, deterministic description of a miniature
//! BDPS deployment: a line or star of at most [`MAX_BROKERS`] brokers with
//! fixed-rate links, explicitly placed publishers and subscribers,
//! deterministic publication arrivals, and an optional list of explicit
//! scenario events (link flaps, joins/leaves, rate changes). The model is
//! small enough that the explorer can enumerate **every** ordering of
//! simultaneous events within the configured budgets.
//!
//! [`McModel::build`] materialises the model into a [`Simulation`] for one
//! [`CheckCell`] — a point of the {event scheduler × rebuild policy × table
//! layout} cross-product. Exploring every cell of [`CheckCell::all`]
//! exhaustively cross-checks the configurations the integration-level
//! differential oracles only sample.

use bdps_core::config::{SchedulerConfig, StrategyKind};
use bdps_net::bandwidth::FixedRate;
use bdps_net::link::LinkQuality;
use bdps_net::linkmodel::LinkModelKind;
use bdps_net::measure::EstimationError;
use bdps_overlay::sparse::TableLayout;
use bdps_overlay::topology::Topology;
use bdps_sim::engine::{ForwardingMode, RebuildPolicy, Simulation};
use bdps_sim::scenario::{DynamicScenario, ScenarioAction};
use bdps_sim::sched::EventQueueKind;
use bdps_sim::workload::{ArrivalKind, WorkloadConfig};
use bdps_stats::rng::SimRng;
use bdps_types::id::{BrokerId, PublisherId, SubscriberId};
use bdps_types::time::Duration;

#[cfg(feature = "fault-injection")]
use bdps_sim::engine::InjectedFault;

/// Maximum brokers a checkable model may have.
pub const MAX_BROKERS: usize = 4;
/// Maximum subscriptions a checkable model may have.
pub const MAX_SUBSCRIPTIONS: usize = 6;
/// Maximum model events (publications plus explicit scenario events).
pub const MAX_EVENTS: usize = 10;

/// The overlay shape of a tiny model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelTopology {
    /// `n` brokers in a line: `B0 — B1 — … — B(n-1)`. Bidirectional link
    /// pair `i` connects `Bi` and `B(i+1)` (directed ids `2i`, `2i+1`).
    Line(usize),
    /// A hub (`B0`) with `n - 1` spokes. Bidirectional link pair `i`
    /// connects the hub and spoke `B(i+1)`.
    Star(usize),
}

impl ModelTopology {
    /// Number of brokers in the shape.
    pub fn brokers(self) -> usize {
        match self {
            ModelTopology::Line(n) | ModelTopology::Star(n) => n,
        }
    }
}

/// One point of the {event scheduler × rebuild policy × table layout ×
/// forwarding mode} cross-product a model is checked under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CheckCell {
    /// The event scheduler implementation.
    pub queue: EventQueueKind,
    /// The routing/table rebuild policy.
    pub policy: RebuildPolicy,
    /// The subscription-table layout.
    pub layout: TableLayout,
    /// How publish-time matching scopes copies. Aggregate forwarding only
    /// pairs with the sparse layout (the dense combination is rejected by
    /// the engine), so [`all`](Self::all) skips aggregate × dense.
    pub forwarding: ForwardingMode,
}

impl CheckCell {
    /// Every cell of the cross-product, oracle configurations first: 2
    /// schedulers × 2 policies × 2 layouts under exact forwarding (8 cells)
    /// plus 2 schedulers × 2 policies under aggregate × sparse (4 cells) —
    /// 12 in total.
    pub fn all() -> Vec<CheckCell> {
        let mut cells = Vec::with_capacity(12);
        for forwarding in ForwardingMode::ALL {
            for queue in EventQueueKind::ALL {
                for policy in RebuildPolicy::ALL {
                    for layout in TableLayout::ALL {
                        if forwarding == ForwardingMode::Aggregate && layout == TableLayout::Dense {
                            continue; // rejected by the engine up front
                        }
                        cells.push(CheckCell {
                            queue,
                            policy,
                            layout,
                            forwarding,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Stable cell name, `"<queue>/<policy>/<layout>"` for exact forwarding
    /// (unchanged from before the forwarding axis existed) with a fourth
    /// `"/aggregate"` part under aggregate forwarding (e.g.
    /// `"calendar/incremental/sparse/aggregate"`).
    pub fn name(&self) -> String {
        match self.forwarding {
            ForwardingMode::Exact => format!(
                "{}/{}/{}",
                self.queue.name(),
                self.policy.name(),
                self.layout.name()
            ),
            ForwardingMode::Aggregate => format!(
                "{}/{}/{}/{}",
                self.queue.name(),
                self.policy.name(),
                self.layout.name(),
                self.forwarding.name()
            ),
        }
    }

    /// Parses a [`name`](Self::name)-formatted cell (the fourth, forwarding
    /// part is optional and defaults to exact).
    pub fn from_name(name: &str) -> Option<CheckCell> {
        let mut parts = name.split('/');
        let queue = EventQueueKind::from_name(parts.next()?)?;
        let policy = RebuildPolicy::from_name(parts.next()?)?;
        let layout = TableLayout::from_name(parts.next()?)?;
        let forwarding = match parts.next() {
            Some(part) => ForwardingMode::from_name(part)?,
            None => ForwardingMode::Exact,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(CheckCell {
            queue,
            policy,
            layout,
            forwarding,
        })
    }
}

impl std::fmt::Display for CheckCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A tiny, fully deterministic BDPS model for exhaustive checking.
#[derive(Debug, Clone)]
pub struct McModel {
    /// Display name, carried into counterexample traces.
    pub name: String,
    /// The overlay shape.
    pub topology: ModelTopology,
    /// Fixed per-KB link rate (ms/KB) of every link; deterministic transfer
    /// times keep the branching confined to genuinely simultaneous events.
    pub link_rate_ms_per_kb: f64,
    /// Broker index each publisher attaches to. Every publisher publishes on
    /// the same deterministic schedule, so `k` publishers produce `k`-way
    /// same-instant publication frontiers.
    pub publishers: Vec<u32>,
    /// Broker index each subscriber attaches to (one subscription each).
    pub subscribers: Vec<u32>,
    /// Publications per publisher over the run.
    pub publications_per_publisher: u32,
    /// Gap between consecutive publications of one publisher.
    pub publish_gap: Duration,
    /// Message size (KB); with fixed-rate links this pins transfer times.
    pub message_size_kb: f64,
    /// Explicit scenario events (link flaps, joins/leaves, rate changes).
    pub events: Vec<(Duration, ScenarioAction)>,
    /// Scheduling strategy brokers select transmissions with.
    pub strategy: StrategyKind,
    /// The link transfer-time model (constant delay by default). Under
    /// [`LinkModelKind::FairShare`] same-instant copies contend on one link
    /// instead of serialising, so the explorer also covers flow-admission
    /// interleavings.
    pub link_model: LinkModelKind,
    /// Seed for subscription filters and message contents.
    pub seed: u64,
    /// How long past the publication period the model keeps draining.
    pub drain_grace: Duration,
    /// Whether quiescence must find nothing queued, in flight or
    /// mid-processing. Set false for models that deliberately end with a
    /// dead link holding a backlog.
    pub require_quiescence: bool,
    /// Deliberately broken invariant to arm (explorer self-test).
    #[cfg(feature = "fault-injection")]
    pub fault: Option<InjectedFault>,
}

impl McModel {
    /// A model skeleton with sane defaults: 50 KB messages, 20 ms/KB links
    /// (1 s per hop), four publications per publisher 5 s apart, a generous
    /// drain grace, full quiescence required.
    pub fn named(name: impl Into<String>, topology: ModelTopology) -> Self {
        McModel {
            name: name.into(),
            topology,
            link_rate_ms_per_kb: 20.0,
            publishers: Vec::new(),
            subscribers: Vec::new(),
            publications_per_publisher: 4,
            publish_gap: Duration::from_secs(5),
            message_size_kb: 50.0,
            events: Vec::new(),
            strategy: StrategyKind::Fifo,
            link_model: LinkModelKind::default(),
            seed: 1,
            drain_grace: Duration::from_secs(600),
            require_quiescence: true,
            #[cfg(feature = "fault-injection")]
            fault: None,
        }
    }

    /// Total model events: publications plus explicit scenario events.
    pub fn event_count(&self) -> usize {
        self.publishers.len() * self.publications_per_publisher as usize + self.events.len()
    }

    /// Checks the tiny-model bounds and internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.topology.brokers();
        if n == 0 || n > MAX_BROKERS {
            return Err(format!(
                "model must have 1..={MAX_BROKERS} brokers, has {n}"
            ));
        }
        if self.subscribers.is_empty() || self.subscribers.len() > MAX_SUBSCRIPTIONS {
            return Err(format!(
                "model must have 1..={MAX_SUBSCRIPTIONS} subscriptions, has {}",
                self.subscribers.len()
            ));
        }
        if self.publishers.is_empty() {
            return Err("model needs at least one publisher".into());
        }
        if self.event_count() > MAX_EVENTS {
            return Err(format!(
                "model has {} events (publications + scenario events), max {MAX_EVENTS}",
                self.event_count()
            ));
        }
        if self.publish_gap.is_zero() {
            return Err("publish gap must be positive".into());
        }
        if let Some(&b) = self
            .publishers
            .iter()
            .chain(self.subscribers.iter())
            .find(|&&b| b as usize >= n)
        {
            return Err(format!("broker index {b} out of range (model has {n})"));
        }
        Ok(())
    }

    /// The publication period implied by the publication schedule: long
    /// enough for every deterministic publication, short enough that no
    /// extra one fits.
    pub fn duration(&self) -> Duration {
        // Publications fire at gap, 2·gap, …, k·gap (each publish schedules
        // the next one gap later and the engine drops events at or past the
        // period end), so k·gap + gap/2 admits exactly k per publisher.
        let k = self.publications_per_publisher as u64;
        Duration::from_micros(self.publish_gap.as_micros() * k + self.publish_gap.as_micros() / 2)
    }

    /// Materialises the model into a ready-to-explore [`Simulation`] for one
    /// cell of the cross-product.
    ///
    /// # Panics
    ///
    /// Panics when [`validate`](Self::validate) fails — model bounds are
    /// authoring errors, not runtime conditions.
    pub fn build(&self, cell: CheckCell) -> Simulation {
        self.validate().expect("invalid mc model");
        let rate = self.link_rate_ms_per_kb;
        let mut topo_rng = SimRng::seed_from(self.seed);
        let mut topo = match self.topology {
            ModelTopology::Line(n) => {
                Topology::line(n, &mut topo_rng, |_| LinkQuality::new(FixedRate::new(rate)))
            }
            ModelTopology::Star(n) => {
                Topology::star(n, &mut topo_rng, |_| LinkQuality::new(FixedRate::new(rate)))
            }
        };
        for (i, &b) in self.publishers.iter().enumerate() {
            let p = PublisherId::new(i as u32);
            let broker = BrokerId::new(b);
            topo.graph.attach_publisher(broker, p);
            topo.publishers.push((p, broker));
        }
        for (i, &b) in self.subscribers.iter().enumerate() {
            let s = SubscriberId::new(i as u32);
            let broker = BrokerId::new(b);
            topo.graph.attach_subscriber(broker, s);
            topo.subscribers.push((s, broker));
        }

        let gap_secs = self.publish_gap.as_millis_f64() / 1_000.0;
        let mut workload = WorkloadConfig::paper_ssd(60.0 / gap_secs);
        workload.duration = self.duration();
        workload.message_size_kb = self.message_size_kb;
        workload.arrivals = ArrivalKind::Deterministic;

        let mut scenario = DynamicScenario::named(self.name.clone());
        for (at, action) in &self.events {
            scenario = scenario.at(*at, action.clone());
        }

        #[allow(unused_mut)]
        let mut sim = Simulation::with_scenario(
            topo,
            workload,
            SchedulerConfig::paper(self.strategy),
            SimRng::seed_from(self.seed),
            EstimationError::NONE,
            scenario,
        )
        .with_event_queue(cell.queue)
        .with_rebuild_policy(cell.policy)
        .with_table_layout(cell.layout)
        .with_link_model(self.link_model)
        .with_forwarding(cell.forwarding)
        .with_drain_grace(self.drain_grace);
        #[cfg(feature = "fault-injection")]
        if let Some(fault) = self.fault {
            sim.inject_fault(fault);
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> McModel {
        let mut m = McModel::named("tiny", ModelTopology::Line(3));
        m.publishers = vec![0, 2];
        m.subscribers = vec![0, 1, 1, 2];
        m
    }

    #[test]
    fn cell_cross_product_has_twelve_named_round_tripping_cells() {
        let cells = CheckCell::all();
        assert_eq!(cells.len(), 12);
        let names: std::collections::HashSet<String> = cells.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 12, "cell names must be distinct");
        for cell in &cells {
            assert_eq!(CheckCell::from_name(&cell.name()), Some(*cell));
        }
        // Aggregate forwarding never pairs with the dense layout.
        assert!(cells
            .iter()
            .all(|c| c.forwarding == ForwardingMode::Exact || c.layout == TableLayout::Sparse));
        // Pre-forwarding three-part names still parse, as exact cells.
        let legacy = CheckCell::from_name("calendar/incremental/sparse").unwrap();
        assert_eq!(legacy.forwarding, ForwardingMode::Exact);
        assert!(CheckCell::from_name("calendar/incremental").is_none());
        assert!(CheckCell::from_name("bogus/full/dense").is_none());
        assert!(CheckCell::from_name("calendar/incremental/sparse/aggregate/extra").is_none());
    }

    #[test]
    fn model_bounds_are_enforced() {
        let m = tiny();
        m.validate().unwrap();
        assert_eq!(m.event_count(), 8);

        let mut too_many_brokers = tiny();
        too_many_brokers.topology = ModelTopology::Line(5);
        assert!(too_many_brokers.validate().is_err());

        let mut too_many_subs = tiny();
        too_many_subs.subscribers = vec![0; 7];
        assert!(too_many_subs.validate().is_err());

        let mut too_many_events = tiny();
        too_many_events.publications_per_publisher = 6;
        assert!(too_many_events.validate().is_err());

        let mut bad_index = tiny();
        bad_index.subscribers = vec![3];
        assert!(bad_index.validate().is_err());
    }

    #[test]
    fn built_model_publishes_exactly_the_declared_events() {
        let m = tiny();
        for cell in CheckCell::all() {
            let out = m.build(cell).run();
            assert_eq!(
                out.published,
                8,
                "2 publishers × 4 publications ({})",
                cell.name()
            );
            out.check_conservation().unwrap();
            out.check_no_duplicates().unwrap();
        }
    }
}
