//! # bdps-mc
//!
//! A bounded exhaustive **model checker** for the BDPS protocol at tiny
//! scale: take a model small enough to enumerate (≤ 4 brokers, ≤ 6
//! subscriptions, ≤ 10 publications/scenario events), and DFS-explore
//! **every permutation of same-instant pending events**, asserting the
//! protocol invariants in every interleaving:
//!
//! * **No duplicate delivery** — no (message, subscriber) pair is ever
//!   delivered twice, in any ordering of simultaneous events;
//! * **Copy conservation** — every copy entering an output queue leaves it
//!   exactly once (sent, dropped or still queued), and every transmission
//!   completes, is voided-and-requeued, or is still in flight;
//! * **Table/routing agreement** — routing and every broker's subscription
//!   table always equal a from-scratch rebuild at the last-rebuilt link
//!   liveness, mid-flap-batch included;
//! * **No stranded copies at quiescence** — when the model expects full
//!   drainage, nothing is left queued, in flight or mid-processing.
//!
//! Why this is sound: every event handler schedules its successors strictly
//! later than the event itself (processing delay and transfer times are
//! positive), so once the simulation clock reaches an instant its frontier —
//! the set of pending events at that instant — is *fixed*. Exploring all
//! orders of applying the frontier therefore covers all same-instant
//! interleavings, and exploring every frontier covers the model exhaustively.
//! Branches that converge to the same state (commuting events) are pruned by
//! a full-state digest that includes broker tables, queues, link state, the
//! RNG stream position and the delivery audit trail.
//!
//! The same model is explored under the full cross-product of
//! {event scheduler × rebuild policy × table layout}
//! ([`CheckCell::all`]), so the differential-oracle configurations the
//! integration suites sample are themselves exhaustively cross-checked at
//! small scale.
//!
//! On a violation the explorer emits a [`Counterexample`]: the exact branch
//! choices taken (greedily minimised back towards the default order), the
//! cell, the model seed and the violated invariant — serialisable to JSON
//! and replayable with [`explorer::replay`] so every mc-found bug becomes a
//! permanent regression test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explorer;
pub mod model;
pub mod trace;

pub use explorer::{explore, replay, Exploration, ExploreBudget, ExploreStats, InvariantViolation};
pub use model::{CheckCell, McModel, ModelTopology};
pub use trace::{ChoiceRecord, Counterexample};
