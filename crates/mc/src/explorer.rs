//! The bounded exhaustive DFS explorer and the counterexample replayer.
//!
//! [`explore`] walks **every** ordering of same-instant pending events of a
//! [`McModel`] under one [`CheckCell`], checking the protocol invariants
//! after every applied event and at every quiescent terminal. Branches that
//! converge onto an already-visited full-state digest are pruned, so
//! commuting event pairs cost one exploration instead of two.
//!
//! The walk is sound because every engine handler schedules its successors
//! strictly later than the event it handles (processing delays and transfer
//! times are positive, the next publication fires one gap later), so the
//! frontier at an instant is fixed once the clock reaches it: permuting the
//! frontier covers all same-instant interleavings, and recursing through
//! every frontier covers the model.
//!
//! On a violation the offending branch choices are greedily minimised back
//! towards the default (first-scheduled) order and packaged as a
//! [`Counterexample`]; [`replay`] re-drives the engine down exactly that
//! path, so traces double as permanent regression tests.

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use bdps_sim::engine::{ConservationViolation, DuplicateDeliveryViolation, EventKind, Simulation};
use bdps_sim::sched::Scheduled;

use crate::model::{CheckCell, McModel};
use crate::trace::{ChoiceRecord, Counterexample};

/// Exploration budgets. Tiny models finish far inside the defaults; hitting
/// a budget is reported as [`InvariantViolation::BudgetExhausted`] so an
/// accidentally huge model fails loudly instead of silently passing a
/// partial search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreBudget {
    /// Maximum events applied along any single path.
    pub max_depth: usize,
    /// Maximum events applied across the whole search.
    pub max_states: u64,
}

impl Default for ExploreBudget {
    fn default() -> Self {
        ExploreBudget {
            max_depth: 4_096,
            max_states: 500_000,
        }
    }
}

/// Search accounting reported by [`explore`].
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Events applied across all branches (post-dedup states visited).
    pub states: u64,
    /// Branches abandoned because their state digest was already visited.
    pub deduped: u64,
    /// Quiescent terminal states reached and checked.
    pub terminals: u64,
    /// Frontiers with at least two same-instant events (real branch points).
    pub branch_points: u64,
    /// Largest same-instant frontier seen.
    pub max_frontier: usize,
    /// Deepest path explored, in applied events.
    pub max_depth: usize,
    /// Sorted distinct digests of the terminal states. A model whose
    /// interleavings all commute converges to a single digest; comparing
    /// the set across scheduler cells asserts layout equivalence.
    pub terminal_digests: Vec<u64>,
    /// Distinct delivered `(message, subscriber)` pair sets observed at the
    /// terminals, as raw id pairs in sorted order. Unlike the full digests —
    /// which legitimately differ between forwarding modes (traffic counters,
    /// scope contents) — the set of delivery sets must be identical between
    /// exact and aggregate forwarding in every interleaving: the
    /// aggregate-forwarding delivery-set oracle at model-checking depth.
    pub terminal_delivery_sets: BTreeSet<Vec<(u64, u32)>>,
}

/// A protocol invariant the explorer found violated (or a blown budget).
#[derive(Debug, Clone)]
pub enum InvariantViolation {
    /// A (message, subscriber) pair was delivered more than once.
    DuplicateDelivery(DuplicateDeliveryViolation),
    /// A queue or transfer conservation balance broke.
    Conservation(ConservationViolation),
    /// Routing or a broker table diverged from a from-scratch rebuild.
    TableAudit(String),
    /// The model required full drainage but quiescence left copies behind.
    Stranded {
        /// Copies still in output queues.
        queued: u64,
        /// Copies still in flight on links.
        in_flight: u64,
        /// Copies still inside a broker's processing module.
        pending_process: u64,
    },
    /// The search exceeded its budget — the model is too large to check
    /// exhaustively, which for a tiny model is an authoring error.
    BudgetExhausted {
        /// Events applied when the budget tripped.
        states: u64,
        /// Path depth when the budget tripped.
        depth: usize,
    },
}

impl InvariantViolation {
    /// Stable machine-readable discriminant name, used to decide whether a
    /// minimised trace still reproduces "the same" violation.
    pub fn kind(&self) -> &'static str {
        match self {
            InvariantViolation::DuplicateDelivery(_) => "duplicate-delivery",
            InvariantViolation::Conservation(_) => "conservation",
            InvariantViolation::TableAudit(_) => "table-audit",
            InvariantViolation::Stranded { .. } => "stranded",
            InvariantViolation::BudgetExhausted { .. } => "budget-exhausted",
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::DuplicateDelivery(v) => write!(f, "{v}"),
            InvariantViolation::Conservation(v) => write!(f, "{v}"),
            InvariantViolation::TableAudit(msg) => write!(f, "table audit failed: {msg}"),
            InvariantViolation::Stranded {
                queued,
                in_flight,
                pending_process,
            } => write!(
                f,
                "copies stranded at quiescence: {queued} queued, {in_flight} in flight, \
                 {pending_process} mid-processing"
            ),
            InvariantViolation::BudgetExhausted { states, depth } => write!(
                f,
                "exploration budget exhausted after {states} states at depth {depth}"
            ),
        }
    }
}

/// The outcome of exhaustively exploring one model under one cell.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The {scheduler × policy × layout} cell explored.
    pub cell: CheckCell,
    /// Search accounting.
    pub stats: ExploreStats,
    /// The first violation found, minimised and replayable; `None` when
    /// every interleaving upheld every invariant.
    pub counterexample: Option<Counterexample>,
}

impl Exploration {
    /// True when no interleaving violated any invariant.
    pub fn ok(&self) -> bool {
        self.counterexample.is_none()
    }
}

struct Ctx<'a> {
    budget: &'a ExploreBudget,
    stats: ExploreStats,
    seen: HashSet<u64>,
    path: Vec<ChoiceRecord>,
    require_quiescence: bool,
}

/// Exhaustively explores every same-instant interleaving of `model` under
/// `cell`, checking every invariant after every event.
pub fn explore(model: &McModel, cell: CheckCell, budget: &ExploreBudget) -> Exploration {
    let mut ctx = Ctx {
        budget,
        stats: ExploreStats::default(),
        seen: HashSet::new(),
        path: Vec::new(),
        require_quiescence: model.require_quiescence,
    };
    let result = dfs(model.build(cell), 0, &mut ctx);
    let Ctx {
        mut stats, path, ..
    } = ctx;
    stats.terminal_digests.sort_unstable();
    stats.terminal_digests.dedup();
    let counterexample = result
        .err()
        .map(|violation| build_counterexample(model, cell, violation, path));
    Exploration {
        cell,
        stats,
        counterexample,
    }
}

fn dfs(mut sim: Simulation, mut depth: usize, ctx: &mut Ctx<'_>) -> Result<(), InvariantViolation> {
    loop {
        if depth > ctx.stats.max_depth {
            ctx.stats.max_depth = depth;
        }
        if depth > ctx.budget.max_depth {
            return Err(InvariantViolation::BudgetExhausted {
                states: ctx.stats.states,
                depth,
            });
        }
        let frontier = sim.take_frontier(sim.hard_stop());
        if frontier.is_empty() {
            ctx.stats.terminals += 1;
            let digest = sim.state_digest();
            if !ctx.stats.terminal_digests.contains(&digest) {
                ctx.stats.terminal_digests.push(digest);
            }
            ctx.stats.terminal_delivery_sets.insert(
                sim.tracker()
                    .delivered_pairs()
                    .into_iter()
                    .map(|(m, s)| (m.raw(), s.raw()))
                    .collect(),
            );
            return check_terminal(&sim, ctx.require_quiescence);
        }
        if frontier.len() > ctx.stats.max_frontier {
            ctx.stats.max_frontier = frontier.len();
        }
        if frontier.len() == 1 {
            let ev = frontier.into_iter().next().expect("frontier has one event");
            step(&mut sim, ev, depth, ctx)?;
            if !ctx.seen.insert(sim.state_digest()) {
                ctx.stats.deduped += 1;
                return Ok(());
            }
            depth += 1;
            continue;
        }

        ctx.stats.branch_points += 1;
        let labels: Vec<String> = frontier.iter().map(|e| e.item.label()).collect();
        let time_us = frontier[0].time.as_micros();
        for i in 0..frontier.len() {
            let mut branch = sim.fork();
            for (j, ev) in frontier.iter().enumerate() {
                if j != i {
                    branch.push_back(ev.clone());
                }
            }
            ctx.path.push(ChoiceRecord {
                time_us,
                chosen: labels[i].clone(),
                alternatives: labels.clone(),
            });
            let mut result = step(&mut branch, frontier[i].clone(), depth, ctx);
            if result.is_ok() {
                if !ctx.seen.insert(branch.state_digest()) {
                    ctx.stats.deduped += 1;
                } else {
                    result = dfs(branch, depth + 1, ctx);
                }
            }
            // On a violation the recorded path IS the counterexample prefix:
            // leave it in place and unwind.
            result?;
            ctx.path.pop();
        }
        return Ok(());
    }
}

fn step(
    sim: &mut Simulation,
    event: Scheduled<EventKind>,
    depth: usize,
    ctx: &mut Ctx<'_>,
) -> Result<(), InvariantViolation> {
    sim.apply(event);
    ctx.stats.states += 1;
    if ctx.stats.states > ctx.budget.max_states {
        return Err(InvariantViolation::BudgetExhausted {
            states: ctx.stats.states,
            depth,
        });
    }
    check_step(sim)
}

/// The per-event invariants: no duplicate delivery so far, both conservation
/// balances on the live snapshot, and table/routing agreement with a
/// from-scratch rebuild.
fn check_step(sim: &Simulation) -> Result<(), InvariantViolation> {
    let outcome = sim.outcome_snapshot();
    outcome
        .check_no_duplicates()
        .map_err(InvariantViolation::DuplicateDelivery)?;
    outcome
        .check_conservation()
        .map_err(InvariantViolation::Conservation)?;
    sim.audit_tables().map_err(InvariantViolation::TableAudit)?;
    Ok(())
}

fn check_terminal(sim: &Simulation, require_quiescence: bool) -> Result<(), InvariantViolation> {
    check_step(sim)?;
    if require_quiescence {
        let outcome = sim.outcome_snapshot();
        if outcome.queued_at_end != 0
            || outcome.in_flight_at_end != 0
            || outcome.pending_process_at_end != 0
        {
            return Err(InvariantViolation::Stranded {
                queued: outcome.queued_at_end,
                in_flight: outcome.in_flight_at_end,
                pending_process: outcome.pending_process_at_end,
            });
        }
    }
    Ok(())
}

/// Re-drives `model` under `cell` down one recorded path: at every branch
/// point the next [`ChoiceRecord`] selects the event to apply (falling back
/// to the default first-scheduled event when the label is absent or the
/// records are exhausted). Returns the violation the path reproduces, or
/// `None` when the path upholds every invariant.
pub fn replay(
    model: &McModel,
    cell: CheckCell,
    choices: &[ChoiceRecord],
) -> Option<InvariantViolation> {
    let mut sim = model.build(cell);
    let mut next = 0usize;
    loop {
        let mut frontier = sim.take_frontier(sim.hard_stop());
        if frontier.is_empty() {
            return check_terminal(&sim, model.require_quiescence).err();
        }
        let pick = if frontier.len() > 1 && next < choices.len() {
            let wanted = &choices[next].chosen;
            next += 1;
            frontier
                .iter()
                .position(|e| e.item.label() == *wanted)
                .unwrap_or(0)
        } else {
            0
        };
        let chosen = frontier.swap_remove(pick);
        // Scheduling order is (time, seq) and push preserves seq, so the
        // re-inserted leftovers keep their original relative order.
        for ev in frontier {
            sim.push_back(ev);
        }
        sim.apply(chosen);
        if let Err(violation) = check_step(&sim) {
            return Some(violation);
        }
    }
}

fn build_counterexample(
    model: &McModel,
    cell: CheckCell,
    violation: InvariantViolation,
    mut choices: Vec<ChoiceRecord>,
) -> Counterexample {
    // A blown budget is not a protocol violation; replaying one path cannot
    // reproduce it, so keep the raw prefix.
    if !matches!(violation, InvariantViolation::BudgetExhausted { .. }) {
        choices = minimize(model, cell, &violation, choices);
    }
    Counterexample {
        model: model.name.clone(),
        seed: model.seed,
        cell: cell.name(),
        kind: violation.kind().to_string(),
        violation: violation.to_string(),
        choices,
    }
}

/// Greedy minimisation: walk the recorded choices back-to-front, replacing
/// each non-default choice with the default first-scheduled event whenever
/// the same violation kind still reproduces, then drop the now-default tail
/// (replay defaults to the first-scheduled event past the end of the
/// records anyway).
fn minimize(
    model: &McModel,
    cell: CheckCell,
    violation: &InvariantViolation,
    mut choices: Vec<ChoiceRecord>,
) -> Vec<ChoiceRecord> {
    for i in (0..choices.len()).rev() {
        if choices[i].chosen == choices[i].alternatives[0] {
            continue;
        }
        let mut candidate = choices.clone();
        candidate[i].chosen = candidate[i].alternatives[0].clone();
        let reproduces =
            replay(model, cell, &candidate).is_some_and(|v| v.kind() == violation.kind());
        if reproduces {
            choices = candidate;
        }
    }
    while choices
        .last()
        .is_some_and(|c| c.chosen == c.alternatives[0])
    {
        choices.pop();
    }
    choices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{McModel, ModelTopology};

    fn two_publisher_line() -> McModel {
        let mut m = McModel::named("two-publisher-line", ModelTopology::Line(3));
        m.publishers = vec![0, 2];
        m.subscribers = vec![0, 1, 1, 2];
        m.publications_per_publisher = 3;
        m
    }

    #[test]
    fn symmetric_publishers_branch_and_uphold_every_invariant() {
        let model = two_publisher_line();
        let cell = CheckCell::all()[0];
        let exploration = explore(&model, cell, &ExploreBudget::default());
        assert!(
            exploration.ok(),
            "unexpected violation: {:?}",
            exploration.counterexample
        );
        assert!(
            exploration.stats.branch_points > 0,
            "two equal-gap publishers must collide at every publication instant"
        );
        assert!(exploration.stats.max_frontier >= 2);
        assert!(exploration.stats.terminals > 0);
        assert!(
            exploration.stats.deduped > 0,
            "independent publications commute, so branches must merge"
        );
    }

    #[test]
    fn default_replay_of_a_clean_model_reports_no_violation() {
        let model = two_publisher_line();
        for cell in CheckCell::all() {
            assert!(replay(&model, cell, &[]).is_none(), "{}", cell.name());
        }
    }

    #[test]
    fn budget_exhaustion_is_reported_not_silently_truncated() {
        let model = two_publisher_line();
        let cell = CheckCell::all()[0];
        let tiny = ExploreBudget {
            max_depth: 4_096,
            max_states: 3,
        };
        let exploration = explore(&model, cell, &tiny);
        let cex = exploration
            .counterexample
            .expect("a three-state budget cannot cover the model");
        assert_eq!(cex.kind, "budget-exhausted");
    }
}
