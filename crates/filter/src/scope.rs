//! Interned subscription-scope sets.
//!
//! Every message copy travelling through the overlay carries a *scope*: the
//! set of subscription identifiers it is responsible for, frozen at
//! publication time so churn can neither duplicate nor resurrect deliveries.
//! At paper scale (160 subscribers) a `Vec<SubscriptionId>` per copy is
//! harmless; at 10⁵ subscribers a single publication matches tens of
//! thousands of subscriptions and the same set is re-materialised at every
//! hop of every copy — the dominant allocation in the simulator's hot path.
//!
//! [`ScopeSet`] is an immutable, **sorted**, reference-counted slice of
//! subscription ids: cloning is an `Arc` bump, membership is a binary
//! search. [`ScopeInterner`] hash-conses the sets so that all copies of one
//! message — and all messages matching the same population subset — share a
//! single allocation. Under churn the live population drifts, so the
//! interner periodically drops entries nobody references anymore.

use bdps_types::id::SubscriptionId;
use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An immutable, sorted, deduplicated set of subscription identifiers.
///
/// Cheap to clone (`Arc` bump) and to test membership (binary search).
/// Construction goes through [`ScopeSet::from_sorted`] or a
/// [`ScopeInterner`], both of which require ascending, duplicate-free input
/// — the order every producer in the workspace already emits (the matching
/// index returns ascending ids; per-copy target lists preserve it).
#[derive(Clone)]
pub struct ScopeSet(Arc<[SubscriptionId]>);

impl ScopeSet {
    /// The empty scope.
    pub fn empty() -> Self {
        ScopeSet(Arc::from([]))
    }

    /// Builds a scope from an ascending, duplicate-free id list.
    ///
    /// # Panics
    ///
    /// Panics when the input is not strictly ascending.
    pub fn from_sorted(ids: impl Into<Arc<[SubscriptionId]>>) -> Self {
        let ids = ids.into();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "scope ids must be strictly ascending"
        );
        ScopeSet(ids)
    }

    /// Builds a scope from an arbitrary id list, sorting and deduplicating.
    pub fn from_unsorted(mut ids: Vec<SubscriptionId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        ScopeSet(Arc::from(ids))
    }

    /// Number of subscriptions in scope.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns true when the scope is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search — the set is sorted by construction).
    pub fn contains(&self, id: SubscriptionId) -> bool {
        self.0.binary_search(&id).is_ok()
    }

    /// The ids, ascending.
    pub fn ids(&self) -> &[SubscriptionId] {
        &self.0
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = SubscriptionId> + '_ {
        self.0.iter().copied()
    }

    /// Number of strong references to the underlying allocation (interner
    /// bookkeeping and tests).
    fn ref_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl PartialEq for ScopeSet {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality first: interned sets share one allocation, so the
        // common case is O(1).
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for ScopeSet {}

impl Hash for ScopeSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with the slice hash so `HashSet<ScopeSet>` lookups can
        // borrow as `&[SubscriptionId]`.
        self.0.hash(state);
    }
}

impl Borrow<[SubscriptionId]> for ScopeSet {
    fn borrow(&self) -> &[SubscriptionId] {
        &self.0
    }
}

impl fmt::Debug for ScopeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScopeSet({} ids)", self.0.len())
    }
}

/// How many interns happen between two purges of dead entries.
const PURGE_INTERVAL: u64 = 4_096;

/// A hash-consing pool of [`ScopeSet`]s.
///
/// [`intern`](Self::intern) returns the existing allocation when an equal
/// set is already pooled, so repeated scopes — one per hop per copy of every
/// message — collapse to `Arc` clones. Entries whose only reference is the
/// pool itself are dropped every 4096 interns, keeping the
/// pool proportional to the *live* scope population under churn.
#[derive(Debug, Clone, Default)]
pub struct ScopeInterner {
    sets: HashSet<ScopeSet>,
    interns: u64,
    hits: u64,
}

impl ScopeInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an ascending, duplicate-free id list.
    ///
    /// The slice is only copied into a fresh allocation on a pool miss; a
    /// hit is a hash lookup plus an `Arc` clone.
    pub fn intern(&mut self, ids: &[SubscriptionId]) -> ScopeSet {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "scope ids must be strictly ascending"
        );
        self.interns += 1;
        if self.interns.is_multiple_of(PURGE_INTERVAL) {
            self.purge();
        }
        if let Some(existing) = self.sets.get(ids) {
            self.hits += 1;
            return existing.clone();
        }
        let set = ScopeSet(Arc::from(ids));
        self.sets.insert(set.clone());
        set
    }

    /// Drops every pooled set whose only owner is the pool.
    pub fn purge(&mut self) {
        self.sets.retain(|s| s.ref_count() > 1);
    }

    /// Number of distinct sets currently pooled.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns true when nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Total interns served so far.
    pub fn interns(&self) -> u64 {
        self.interns
    }

    /// Interns that reused an existing allocation.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<SubscriptionId> {
        raw.iter().copied().map(SubscriptionId::new).collect()
    }

    #[test]
    fn membership_and_accessors() {
        let s = ScopeSet::from_sorted(ids(&[1, 3, 5]));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.contains(SubscriptionId::new(3)));
        assert!(!s.contains(SubscriptionId::new(4)));
        assert_eq!(s.iter().count(), 3);
        assert_eq!(s.ids()[0], SubscriptionId::new(1));
        assert!(ScopeSet::empty().is_empty());
        assert!(!ScopeSet::empty().contains(SubscriptionId::new(0)));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_input_is_rejected() {
        let _ = ScopeSet::from_sorted(ids(&[3, 1]));
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s = ScopeSet::from_unsorted(ids(&[5, 1, 3, 1]));
        assert_eq!(s.ids(), ids(&[1, 3, 5]).as_slice());
    }

    #[test]
    fn equality_and_hashing_follow_content() {
        let a = ScopeSet::from_sorted(ids(&[1, 2]));
        let b = ScopeSet::from_sorted(ids(&[1, 2]));
        let c = ScopeSet::from_sorted(ids(&[1, 3]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(ids(&[1, 2]).as_slice()));
        assert!(!set.contains(ids(&[1, 3]).as_slice()));
    }

    #[test]
    fn interning_shares_allocations() {
        let mut pool = ScopeInterner::new();
        let a = pool.intern(&ids(&[1, 2, 3]));
        let b = pool.intern(&ids(&[1, 2, 3]));
        assert!(Arc::ptr_eq(&a.0, &b.0), "equal sets must share storage");
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.interns(), 2);
        let c = pool.intern(&ids(&[4]));
        assert!(!Arc::ptr_eq(&a.0, &c.0));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn purge_drops_only_dead_entries() {
        let mut pool = ScopeInterner::new();
        let live = pool.intern(&ids(&[1]));
        {
            let _dead = pool.intern(&ids(&[2]));
        }
        assert_eq!(pool.len(), 2);
        pool.purge();
        assert_eq!(pool.len(), 1);
        assert!(pool.intern(&ids(&[1])).contains(SubscriptionId::new(1)));
        drop(live);
    }

    #[test]
    fn empty_scope_interns_fine() {
        let mut pool = ScopeInterner::new();
        let a = pool.intern(&[]);
        let b = pool.intern(&[]);
        assert!(a.is_empty());
        assert_eq!(a, b);
        assert_eq!(pool.len(), 1);
    }
}
