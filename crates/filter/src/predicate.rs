//! Atomic predicates over message-head attributes.

use bdps_types::message::MessageHead;
use bdps_types::value::{AttrName, AttrValue};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CompOp {
    /// Evaluates the operator against an ordering between attribute value and constant.
    fn eval_ordering(self, ord: Ordering) -> bool {
        match self {
            CompOp::Lt => ord == Ordering::Less,
            CompOp::Le => ord != Ordering::Greater,
            CompOp::Gt => ord == Ordering::Greater,
            CompOp::Ge => ord != Ordering::Less,
            CompOp::Eq => ord == Ordering::Equal,
            CompOp::Ne => ord != Ordering::Equal,
        }
    }

    /// The textual form of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
            CompOp::Eq => "==",
            CompOp::Ne => "!=",
        }
    }

    /// The operator with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CompOp {
        match self {
            CompOp::Lt => CompOp::Gt,
            CompOp::Le => CompOp::Ge,
            CompOp::Gt => CompOp::Lt,
            CompOp::Ge => CompOp::Le,
            CompOp::Eq => CompOp::Eq,
            CompOp::Ne => CompOp::Ne,
        }
    }

    /// The logical negation of the operator (`!(a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> CompOp {
        match self {
            CompOp::Lt => CompOp::Ge,
            CompOp::Le => CompOp::Gt,
            CompOp::Gt => CompOp::Le,
            CompOp::Ge => CompOp::Lt,
            CompOp::Eq => CompOp::Ne,
            CompOp::Ne => CompOp::Eq,
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An atomic predicate `attribute op constant`.
///
/// A predicate evaluates to `false` when the attribute is missing from the
/// message head or when its type cannot be compared with the constant —
/// content-based pub/sub treats non-comparable as non-matching rather than
/// erroring at runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// The attribute the predicate constrains.
    pub attr: AttrName,
    /// The comparison operator.
    pub op: CompOp,
    /// The constant to compare against.
    pub value: AttrValue,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(attr: impl Into<AttrName>, op: CompOp, value: impl Into<AttrValue>) -> Self {
        Predicate {
            attr: attr.into(),
            op,
            value: value.into(),
        }
    }

    /// Shorthand for `attr < value`.
    pub fn lt(attr: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        Self::new(attr, CompOp::Lt, value)
    }

    /// Shorthand for `attr <= value`.
    pub fn le(attr: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        Self::new(attr, CompOp::Le, value)
    }

    /// Shorthand for `attr > value`.
    pub fn gt(attr: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        Self::new(attr, CompOp::Gt, value)
    }

    /// Shorthand for `attr >= value`.
    pub fn ge(attr: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        Self::new(attr, CompOp::Ge, value)
    }

    /// Shorthand for `attr == value`.
    pub fn eq(attr: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        Self::new(attr, CompOp::Eq, value)
    }

    /// Shorthand for `attr != value`.
    pub fn ne(attr: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        Self::new(attr, CompOp::Ne, value)
    }

    /// Evaluates the predicate against a message head.
    pub fn matches(&self, head: &MessageHead) -> bool {
        match head.get(self.attr.as_str()) {
            Some(v) => self.matches_value(v),
            None => false,
        }
    }

    /// Evaluates the predicate against a single attribute value.
    pub fn matches_value(&self, v: &AttrValue) -> bool {
        match v.partial_cmp_value(&self.value) {
            Some(ord) => self.op.eval_ordering(ord),
            // Non-comparable types: != is vacuously satisfied, everything else fails.
            None => self.op == CompOp::Ne,
        }
    }

    /// The logical negation of this predicate.
    pub fn negated(&self) -> Predicate {
        Predicate {
            attr: self.attr.clone(),
            op: self.op.negated(),
            value: self.value.clone(),
        }
    }

    /// Returns true when every value satisfying `self` also satisfies `other`
    /// (i.e. `self` ⟹ `other`). Conservative: only decides implication between
    /// predicates on the same attribute with comparable constants; returns
    /// `false` when implication cannot be proven.
    pub fn implies(&self, other: &Predicate) -> bool {
        if self.attr != other.attr {
            return false;
        }
        if self == other {
            return true;
        }
        let cmp = match self.value.partial_cmp_value(&other.value) {
            Some(c) => c,
            None => return false,
        };
        use CompOp::*;
        match (self.op, other.op) {
            // x < a implies x < b when a <= b; x < a implies x <= b when a <= b.
            (Lt, Lt) | (Lt, Le) => cmp != Ordering::Greater,
            (Le, Le) => cmp != Ordering::Greater,
            (Le, Lt) => cmp == Ordering::Less,
            (Gt, Gt) | (Gt, Ge) => cmp != Ordering::Less,
            (Ge, Ge) => cmp != Ordering::Less,
            (Ge, Gt) => cmp == Ordering::Greater,
            (Eq, Le) => cmp != Ordering::Greater,
            (Eq, Lt) => cmp == Ordering::Less,
            (Eq, Ge) => cmp != Ordering::Less,
            (Eq, Gt) => cmp == Ordering::Greater,
            (Eq, Eq) => cmp == Ordering::Equal,
            (Eq, Ne) => cmp != Ordering::Equal,
            (Lt, Ne) => cmp != Ordering::Greater,
            (Gt, Ne) => cmp != Ordering::Less,
            (Le, Ne) | (Ge, Ne) => false,
            _ => false,
        }
    }

    /// Returns true when no value can satisfy both predicates (conservative:
    /// `false` means "possibly compatible").
    pub fn contradicts(&self, other: &Predicate) -> bool {
        if self.attr != other.attr {
            return false;
        }
        let cmp = match self.value.partial_cmp_value(&other.value) {
            Some(c) => c,
            None => return false,
        };
        use CompOp::*;
        match (self.op, other.op) {
            (Eq, Eq) => cmp != Ordering::Equal,
            (Eq, Ne) | (Ne, Eq) => cmp == Ordering::Equal,
            // x < a contradicts x > b when a <= b (no value below a exceeds b).
            (Lt, Gt) | (Lt, Ge) | (Le, Gt) => cmp != Ordering::Greater,
            (Le, Ge) => cmp == Ordering::Less,
            (Gt, Lt) | (Ge, Lt) | (Gt, Le) => cmp != Ordering::Less,
            (Ge, Le) => cmp == Ordering::Greater,
            (Eq, Lt) => cmp != Ordering::Less,
            (Eq, Le) => cmp == Ordering::Greater,
            (Eq, Gt) => cmp != Ordering::Greater,
            (Eq, Ge) => cmp == Ordering::Less,
            (Lt, Eq) => cmp != Ordering::Greater,
            (Le, Eq) => cmp == Ordering::Less,
            (Gt, Eq) => cmp != Ordering::Less,
            (Ge, Eq) => cmp == Ordering::Greater,
            _ => false,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(a1: f64, a2: f64) -> MessageHead {
        let mut h = MessageHead::new();
        h.set("A1", a1).set("A2", a2);
        h
    }

    #[test]
    fn numeric_comparisons() {
        let h = head(3.0, 7.0);
        assert!(Predicate::lt("A1", 5.0).matches(&h));
        assert!(!Predicate::lt("A1", 3.0).matches(&h));
        assert!(Predicate::le("A1", 3.0).matches(&h));
        assert!(Predicate::gt("A2", 5.0).matches(&h));
        assert!(Predicate::ge("A2", 7.0).matches(&h));
        assert!(Predicate::eq("A1", 3.0).matches(&h));
        assert!(Predicate::ne("A1", 4.0).matches(&h));
    }

    #[test]
    fn missing_attribute_never_matches() {
        let h = head(1.0, 2.0);
        assert!(!Predicate::lt("A3", 100.0).matches(&h));
        assert!(!Predicate::ne("A3", 100.0).matches(&h));
    }

    #[test]
    fn type_mismatch_matches_only_ne() {
        let mut h = MessageHead::new();
        h.set("sym", "ACME");
        assert!(!Predicate::lt("sym", 5.0).matches(&h));
        assert!(!Predicate::eq("sym", 5.0).matches(&h));
        assert!(Predicate::ne("sym", 5.0).matches(&h));
        assert!(Predicate::eq("sym", "ACME").matches(&h));
    }

    #[test]
    fn int_float_coercion() {
        let mut h = MessageHead::new();
        h.set("n", 5i64);
        assert!(Predicate::lt("n", 5.5).matches(&h));
        assert!(Predicate::eq("n", 5.0).matches(&h));
    }

    #[test]
    fn negation_is_complementary() {
        let h = head(3.0, 7.0);
        for p in [
            Predicate::lt("A1", 5.0),
            Predicate::le("A1", 2.0),
            Predicate::gt("A2", 9.0),
            Predicate::ge("A2", 7.0),
            Predicate::eq("A1", 3.0),
            Predicate::ne("A1", 3.0),
        ] {
            assert_ne!(p.matches(&h), p.negated().matches(&h), "predicate {p}");
        }
    }

    #[test]
    fn operator_helpers() {
        assert_eq!(CompOp::Lt.flipped(), CompOp::Gt);
        assert_eq!(CompOp::Le.flipped(), CompOp::Ge);
        assert_eq!(CompOp::Eq.flipped(), CompOp::Eq);
        assert_eq!(CompOp::Lt.negated(), CompOp::Ge);
        assert_eq!(CompOp::Ne.negated(), CompOp::Eq);
        assert_eq!(CompOp::Ge.as_str(), ">=");
    }

    #[test]
    fn implication() {
        // x < 3 implies x < 5.
        assert!(Predicate::lt("A1", 3.0).implies(&Predicate::lt("A1", 5.0)));
        assert!(!Predicate::lt("A1", 5.0).implies(&Predicate::lt("A1", 3.0)));
        // x < 3 implies x <= 3.
        assert!(Predicate::lt("A1", 3.0).implies(&Predicate::le("A1", 3.0)));
        // x <= 3 does not imply x < 3.
        assert!(!Predicate::le("A1", 3.0).implies(&Predicate::lt("A1", 3.0)));
        // x > 5 implies x > 3, x >= 3.
        assert!(Predicate::gt("A1", 5.0).implies(&Predicate::gt("A1", 3.0)));
        assert!(Predicate::gt("A1", 5.0).implies(&Predicate::ge("A1", 5.0)));
        // x == 4 implies x < 5 and x >= 4 and x != 9.
        assert!(Predicate::eq("A1", 4.0).implies(&Predicate::lt("A1", 5.0)));
        assert!(Predicate::eq("A1", 4.0).implies(&Predicate::ge("A1", 4.0)));
        assert!(Predicate::eq("A1", 4.0).implies(&Predicate::ne("A1", 9.0)));
        // Different attributes never imply.
        assert!(!Predicate::lt("A1", 3.0).implies(&Predicate::lt("A2", 5.0)));
        // Identity.
        let p = Predicate::ge("A1", 2.0);
        assert!(p.implies(&p));
    }

    #[test]
    fn contradiction() {
        assert!(Predicate::lt("A1", 3.0).contradicts(&Predicate::gt("A1", 5.0)));
        assert!(Predicate::lt("A1", 3.0).contradicts(&Predicate::ge("A1", 3.0)));
        assert!(!Predicate::lt("A1", 5.0).contradicts(&Predicate::gt("A1", 3.0)));
        assert!(Predicate::eq("A1", 1.0).contradicts(&Predicate::eq("A1", 2.0)));
        assert!(Predicate::eq("A1", 1.0).contradicts(&Predicate::ne("A1", 1.0)));
        assert!(!Predicate::eq("A1", 1.0).contradicts(&Predicate::le("A1", 1.0)));
        assert!(Predicate::eq("A1", 5.0).contradicts(&Predicate::lt("A1", 5.0)));
        // Different attributes never contradict.
        assert!(!Predicate::lt("A1", 3.0).contradicts(&Predicate::gt("A2", 5.0)));
    }

    #[test]
    fn display() {
        assert_eq!(Predicate::lt("A1", 5.0).to_string(), "A1 < 5");
        assert_eq!(Predicate::eq("sym", "ACME").to_string(), "sym == \"ACME\"");
    }
}
