//! Covering-set maintenance for subscription aggregation.
//!
//! Content-based pub/sub systems keep broker state sublinear in the global
//! population by *aggregating* subscriptions: instead of advertising every
//! filter to every broker, an edge broker advertises only the **covering
//! set** of its attached subscriptions — the filters that are maximal under
//! [`Filter::covers`]. A message that matches any member filter necessarily
//! matches some cover (covering is semantically sound), so interior brokers
//! can route on the much smaller cover set and only the edge broker expands
//! to concrete subscribers. False-positive forwards are possible (a message
//! can match a cover but no member); false negatives are not.
//!
//! [`CoverForest`] maintains that structure incrementally under churn: each
//! member is a node, every non-root node hangs under a parent whose filter
//! covers it (verified at attach time), and the roots are the covering set.
//! Insert and remove touch only the root list and the affected subtree, so
//! the cost per churn event is proportional to the number of covers — for
//! random conjunction workloads the expected cover count grows
//! logarithmically with the member count, making maintenance effectively
//! `O(log n)` where a from-scratch recomputation is `O(n²)`.

use crate::filter::Filter;
use bdps_types::id::SubscriptionId;
use bdps_types::message::MessageHead;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
struct Node {
    filter: Filter,
    /// A member whose filter covers this one (`None` for roots).
    parent: Option<SubscriptionId>,
    /// Members attached directly under this node.
    children: BTreeSet<SubscriptionId>,
}

/// An incrementally maintained covering forest over a set of member filters.
///
/// Invariants (checked by [`check_invariants`](Self::check_invariants)):
///
/// * every non-root node's parent filter covers the node's filter under the
///   (sound, conservative) [`Filter::covers`] check;
/// * roots carry no parent and no root is covered by another root;
/// * consequently any message head matching a member filter also matches the
///   filter of that member's root — the **aggregate soundness** property the
///   sparse subscription tables rely on.
///
/// All iteration orders are ascending by subscription id, so two forests
/// built through the same operation sequence are structurally identical —
/// the determinism the simulator's replay guarantee requires.
#[derive(Debug, Clone, Default)]
pub struct CoverForest {
    nodes: BTreeMap<SubscriptionId, Node>,
    roots: BTreeSet<SubscriptionId>,
}

impl CoverForest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        CoverForest::default()
    }

    /// Builds a forest from a member list (any order; insertion is
    /// order-insensitive for the soundness invariant, though the concrete
    /// tree shape depends on it — callers wanting reproducible shapes should
    /// feed ids in ascending order, as every population builder does).
    pub fn from_members(members: impl IntoIterator<Item = (SubscriptionId, Filter)>) -> Self {
        let mut forest = CoverForest::new();
        for (id, filter) in members {
            forest.insert(id, filter);
        }
        forest
    }

    /// Number of member filters.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns true when the forest has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of covers (roots) — the size of the aggregate a broker would
    /// actually store or advertise.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Returns true when `id` is a member.
    pub fn contains(&self, id: SubscriptionId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// The member's filter, when present.
    pub fn filter_of(&self, id: SubscriptionId) -> Option<&Filter> {
        self.nodes.get(&id).map(|n| &n.filter)
    }

    /// Iterates the covering set `(id, filter)` in ascending id order.
    pub fn roots(&self) -> impl Iterator<Item = (SubscriptionId, &Filter)> + '_ {
        self.roots.iter().map(|id| (*id, &self.nodes[id].filter))
    }

    /// Iterates every member `(id, filter)` in ascending id order.
    pub fn members(&self) -> impl Iterator<Item = (SubscriptionId, &Filter)> + '_ {
        self.nodes.iter().map(|(id, n)| (*id, &n.filter))
    }

    /// Returns true when some cover matches the head — the aggregate-level
    /// test interior brokers route on. Sound: a head matching any member
    /// matches some cover; false positives are possible and expected.
    pub fn any_root_matches(&self, head: &MessageHead) -> bool {
        self.roots
            .iter()
            .any(|id| self.nodes[id].filter.matches(head))
    }

    /// Adds (or replaces) a member filter.
    ///
    /// The new member attaches under the smallest-id root that covers it;
    /// when no root does, it becomes a root itself and adopts every existing
    /// root it covers. Cost: one [`Filter::covers`] check per root.
    pub fn insert(&mut self, id: SubscriptionId, filter: Filter) {
        if self.nodes.contains_key(&id) {
            self.remove(id);
        }
        // Shelter under the first root that covers the newcomer.
        let shelter = self
            .roots
            .iter()
            .copied()
            .find(|r| self.nodes[r].filter.covers(&filter));
        match shelter {
            Some(parent) => {
                self.nodes.insert(
                    id,
                    Node {
                        filter,
                        parent: Some(parent),
                        children: BTreeSet::new(),
                    },
                );
                self.nodes
                    .get_mut(&parent)
                    .expect("parent exists")
                    .children
                    .insert(id);
            }
            None => {
                // New root; existing roots it covers become its children.
                let demoted: Vec<SubscriptionId> = self
                    .roots
                    .iter()
                    .copied()
                    .filter(|r| filter.covers(&self.nodes[r].filter))
                    .collect();
                let mut children = BTreeSet::new();
                for r in demoted {
                    self.roots.remove(&r);
                    self.nodes.get_mut(&r).expect("root exists").parent = Some(id);
                    children.insert(r);
                }
                self.nodes.insert(
                    id,
                    Node {
                        filter,
                        parent: None,
                        children,
                    },
                );
                self.roots.insert(id);
            }
        }
    }

    /// Removes a member, returning its filter when present.
    ///
    /// The removed node's children (each keeping its own subtree) are
    /// re-homed in ascending id order: under the smallest current root that
    /// covers them, or promoted to roots themselves. Cost: one cover check
    /// per (orphan, root) pair.
    pub fn remove(&mut self, id: SubscriptionId) -> Option<Filter> {
        let node = self.nodes.remove(&id)?;
        match node.parent {
            Some(parent) => {
                self.nodes
                    .get_mut(&parent)
                    .expect("parent exists")
                    .children
                    .remove(&id);
            }
            None => {
                self.roots.remove(&id);
            }
        }
        for orphan in node.children {
            // Note: the old parent's parent is *not* guaranteed to pass the
            // conservative syntactic cover check against the orphan (covers
            // is sound but incomplete), so orphans are re-sheltered from the
            // root list instead of silently re-attached upward.
            let shelter = self
                .roots
                .iter()
                .copied()
                .find(|r| self.nodes[r].filter.covers(&self.nodes[&orphan].filter));
            let orphan_node = self.nodes.get_mut(&orphan).expect("orphan exists");
            match shelter {
                Some(parent) => {
                    orphan_node.parent = Some(parent);
                    self.nodes
                        .get_mut(&parent)
                        .expect("root exists")
                        .children
                        .insert(orphan);
                }
                None => {
                    orphan_node.parent = None;
                    self.roots.insert(orphan);
                }
            }
        }
        Some(node.filter)
    }

    /// Verifies the structural invariants, returning the first violation.
    /// Test and debug support; `O(members × roots)`.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (&id, node) in &self.nodes {
            match node.parent {
                None => {
                    if !self.roots.contains(&id) {
                        return Err(format!("{id} has no parent but is not a root"));
                    }
                }
                Some(parent) => {
                    let Some(p) = self.nodes.get(&parent) else {
                        return Err(format!("{id} has dangling parent {parent}"));
                    };
                    if !p.children.contains(&id) {
                        return Err(format!("{parent} does not list child {id}"));
                    }
                    if !p.filter.covers(&node.filter) {
                        return Err(format!("parent {parent} does not cover {id}"));
                    }
                    if self.roots.contains(&id) {
                        return Err(format!("{id} is a root but has a parent"));
                    }
                }
            }
            for child in &node.children {
                if self.nodes.get(child).map(|c| c.parent) != Some(Some(id)) {
                    return Err(format!("child link {id} -> {child} is not mirrored"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompOp, Predicate};
    use bdps_stats::rng::SimRng;

    fn sid(i: u32) -> SubscriptionId {
        SubscriptionId::new(i)
    }

    /// Seeded property harness in the style of `tests/properties.rs`: each
    /// property runs over a few hundred pseudo-random cases with the failing
    /// case index reported on panic.
    fn check(seed: u64, cases: usize, mut property: impl FnMut(&mut SimRng)) {
        for case in 0..cases {
            let mut rng = SimRng::seed_from(seed ^ (case as u64).wrapping_mul(0x9E37_79B9));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                property(&mut rng);
            }));
            if let Err(panic) = result {
                eprintln!("property failed at case {case} (seed {seed:#x})");
                std::panic::resume_unwind(panic);
            }
        }
    }

    /// A random conjunction over up to three attributes with random
    /// inequality operators — the general family where `covers` is sound
    /// but not complete.
    fn random_filter(rng: &mut SimRng) -> Filter {
        let attrs = ["A1", "A2", "A3"];
        let ops = [CompOp::Lt, CompOp::Le, CompOp::Gt, CompOp::Ge];
        let n = rng.uniform_usize(0, 4);
        let preds = (0..n)
            .map(|_| {
                Predicate::new(
                    attrs[rng.uniform_usize(0, attrs.len())],
                    ops[rng.uniform_usize(0, ops.len())],
                    rng.uniform_range(0.0, 10.0),
                )
            })
            .collect();
        Filter::new(preds)
    }

    fn random_head(rng: &mut SimRng) -> MessageHead {
        let mut h = MessageHead::new();
        h.set("A1", rng.uniform_range(-1.0, 11.0));
        h.set("A2", rng.uniform_range(-1.0, 11.0));
        h.set("A3", rng.uniform_range(-1.0, 11.0));
        h
    }

    #[test]
    fn covering_is_reflexive() {
        check(0xC0FE_0001, 300, |rng| {
            let f = random_filter(rng);
            assert!(f.covers(&f), "covers must be reflexive: {f}");
        });
    }

    #[test]
    fn covering_is_transitive_on_the_paper_family() {
        // On the paper's `A1 < x1 && A2 < x2` family the conservative check
        // is complete (covering = coordinate-wise domination), so syntactic
        // transitivity must hold exactly.
        check(0xC0FE_0002, 300, |rng| {
            let mut xs: Vec<(f64, f64)> = (0..3)
                .map(|_| (rng.uniform_range(0.0, 10.0), rng.uniform_range(0.0, 10.0)))
                .collect();
            // Sort into a dominated chain c <= b <= a coordinate-wise.
            xs.sort_by(|p, q| p.0.total_cmp(&q.0));
            let lo = (xs[0].0, xs[0].1.min(xs[1].1).min(xs[2].1));
            let mid = (xs[1].0, xs[1].1.min(xs[2].1).max(lo.1));
            let hi = (xs[2].0, xs[2].1.max(mid.1));
            let a = Filter::paper_conjunction(hi.0, hi.1);
            let b = Filter::paper_conjunction(mid.0, mid.1);
            let c = Filter::paper_conjunction(lo.0, lo.1);
            assert!(a.covers(&b) && b.covers(&c), "chain construction");
            assert!(a.covers(&c), "transitivity broke: {a} / {b} / {c}");
        });
    }

    #[test]
    fn covering_is_semantically_transitive_in_general() {
        // For arbitrary conjunctions syntactic transitivity is not promised,
        // but the *semantic* consequence must hold: when a covers b and b
        // covers c, every head matching c matches a.
        check(0xC0FE_0003, 300, |rng| {
            let a = random_filter(rng);
            let b = random_filter(rng);
            let c = random_filter(rng);
            if a.covers(&b) && b.covers(&c) {
                for _ in 0..20 {
                    let head = random_head(rng);
                    if c.matches(&head) {
                        assert!(
                            a.matches(&head),
                            "semantic transitivity broke: {a} / {b} / {c}"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn covering_is_antisymmetric_up_to_equivalence() {
        check(0xC0FE_0004, 300, |rng| {
            let a = random_filter(rng);
            let b = random_filter(rng);
            if a.equivalent(&b) {
                // Mutual covering (`Filter::equivalent`) means the filters
                // are semantically equivalent: no sampled head can separate
                // them.
                for _ in 0..30 {
                    let head = random_head(rng);
                    assert_eq!(
                        a.matches(&head),
                        b.matches(&head),
                        "mutually covering filters disagreed: {a} vs {b}"
                    );
                }
            }
        });
    }

    #[test]
    fn match_all_is_the_top_element() {
        check(0xC0FE_0005, 300, |rng| {
            let f = random_filter(rng);
            assert!(Filter::match_all().covers(&f));
            // Nothing below the top covers it (unless itself empty).
            if !f.is_empty() {
                // A non-empty conjunction of inequalities over a bounded
                // draw range cannot cover "everything" syntactically.
                assert!(!f.covers(&Filter::match_all()));
            }
        });
    }

    #[test]
    fn covering_soundness_on_sampled_heads() {
        // a covers b must mean: every head matching b matches a.
        check(0xC0FE_0006, 300, |rng| {
            let a = random_filter(rng);
            let b = random_filter(rng);
            if a.covers(&b) {
                for _ in 0..20 {
                    let head = random_head(rng);
                    if b.matches(&head) {
                        assert!(a.matches(&head), "cover soundness broke: {a} / {b}");
                    }
                }
            }
        });
    }

    #[test]
    fn forest_aggregate_is_sound_and_expansion_is_exact() {
        // The two halves of "aggregate soundness":
        //  * any head matching a member matches some root (no false
        //    negatives at the aggregate level);
        //  * expansion checks member filters, so a head matching no member
        //    is never *delivered*, even when a cover matched it (false
        //    positives forward, never deliver).
        check(0xC0FE_0007, 120, |rng| {
            let n = rng.uniform_usize(1, 40);
            let members: Vec<(SubscriptionId, Filter)> = (0..n as u32)
                .map(|i| (sid(i), random_filter(rng)))
                .collect();
            let forest = CoverForest::from_members(members.iter().cloned());
            forest.check_invariants().unwrap();
            assert_eq!(forest.len(), n);
            assert!(forest.root_count() <= n);
            for _ in 0..15 {
                let head = random_head(rng);
                let exact: Vec<SubscriptionId> = members
                    .iter()
                    .filter(|(_, f)| f.matches(&head))
                    .map(|(id, _)| *id)
                    .collect();
                if !exact.is_empty() {
                    assert!(
                        forest.any_root_matches(&head),
                        "aggregate missed a matching member (false negative)"
                    );
                }
                // Edge expansion: aggregate gate, then member filters.
                let delivered: Vec<SubscriptionId> = if forest.any_root_matches(&head) {
                    forest
                        .members()
                        .filter(|(_, f)| f.matches(&head))
                        .map(|(id, _)| id)
                        .collect()
                } else {
                    Vec::new()
                };
                assert_eq!(
                    delivered, exact,
                    "expansion must deliver exactly the matches"
                );
            }
        });
    }

    #[test]
    fn forest_invariants_survive_arbitrary_churn() {
        check(0xC0FE_0008, 80, |rng| {
            let mut forest = CoverForest::new();
            let mut live: Vec<(SubscriptionId, Filter)> = Vec::new();
            let mut next = 0u32;
            for _ in 0..rng.uniform_usize(10, 60) {
                if live.is_empty() || rng.chance(0.6) {
                    let f = random_filter(rng);
                    forest.insert(sid(next), f.clone());
                    live.push((sid(next), f));
                    next += 1;
                } else {
                    let victim = rng.uniform_usize(0, live.len());
                    let (id, f) = live.swap_remove(victim);
                    let removed = forest.remove(id).expect("member present");
                    assert_eq!(removed, f);
                }
                forest.check_invariants().unwrap();
                assert_eq!(forest.len(), live.len());
                // Soundness is preserved at every step.
                let head = random_head(rng);
                if live.iter().any(|(_, f)| f.matches(&head)) {
                    assert!(forest.any_root_matches(&head));
                }
            }
        });
    }

    #[test]
    fn covers_aggregate_to_the_pareto_frontier_on_the_paper_family() {
        // For dominated paper conjunctions the covering set is exactly the
        // Pareto-maximal (x1, x2) pairs — far smaller than the population.
        let mut forest = CoverForest::new();
        let points = [
            (5.0, 5.0),
            (3.0, 3.0), // dominated by (5,5)
            (9.0, 1.0), // maximal
            (1.0, 9.0), // maximal
            (4.0, 4.9), // dominated by (5,5)
            (9.0, 0.5), // dominated by (9,1)
        ];
        for (i, (x1, x2)) in points.iter().enumerate() {
            forest.insert(sid(i as u32), Filter::paper_conjunction(*x1, *x2));
        }
        forest.check_invariants().unwrap();
        let roots: Vec<SubscriptionId> = forest.roots().map(|(id, _)| id).collect();
        assert_eq!(roots, vec![sid(0), sid(2), sid(3)]);
        // Removing a root promotes exactly its dominated members.
        forest.remove(sid(0));
        forest.check_invariants().unwrap();
        let roots: Vec<SubscriptionId> = forest.roots().map(|(id, _)| id).collect();
        assert_eq!(roots, vec![sid(1), sid(2), sid(3), sid(4)]);
    }

    #[test]
    fn insert_replaces_existing_members() {
        let mut forest = CoverForest::new();
        forest.insert(sid(0), Filter::paper_conjunction(5.0, 5.0));
        forest.insert(sid(1), Filter::paper_conjunction(3.0, 3.0));
        assert_eq!(forest.root_count(), 1);
        // Replacing the root with a narrow filter flips the hierarchy.
        forest.insert(sid(0), Filter::paper_conjunction(1.0, 1.0));
        forest.check_invariants().unwrap();
        assert_eq!(forest.len(), 2);
        let roots: Vec<SubscriptionId> = forest.roots().map(|(id, _)| id).collect();
        assert_eq!(roots, vec![sid(1)]);
        assert!(forest.contains(sid(0)));
        assert!(forest.filter_of(sid(0)).is_some());
    }

    #[test]
    fn cover_join_covers_both_operands() {
        check(0xC0FE_0009, 300, |rng| {
            let a = random_filter(rng);
            let b = random_filter(rng);
            let join = a.cover_join(&b);
            assert!(join.covers(&a), "join {join} must cover {a}");
            assert!(join.covers(&b), "join {join} must cover {b}");
            // Joining with match_all yields match_all (the top element).
            assert!(a.cover_join(&Filter::match_all()).is_empty());
        });
    }
}
