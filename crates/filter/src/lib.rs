//! # bdps-filter
//!
//! The content-based subscription language of BDPS and the machinery brokers
//! use to evaluate it:
//!
//! * [`predicate`] — atomic comparisons over message-head attributes
//!   (`A1 < 5.0`, `symbol == "ACME"`, ...);
//! * [`filter`] — boolean filter expressions, their normalisation to
//!   disjunctions of conjunctions, matching against message heads, and the
//!   covering / overlap relations used when aggregating subscriptions;
//! * [`cover`] — incremental covering-set maintenance ([`CoverForest`]):
//!   the maximal filters under the covering relation, the aggregate interior
//!   brokers route on when subscription tables use the sparse layout;
//! * [`parser`] — a small recursive-descent parser for the textual filter
//!   syntax (`"A1 < 5 && A2 < 2"`), so examples and tests can write filters
//!   the way the paper writes them;
//! * [`index`] — a counting-based matching index that evaluates one message
//!   against many subscriptions in sub-linear time per subscription;
//! * [`subscription`] — a subscription bundles a filter with its subscriber
//!   and its QoS class (delay bound + price, paper §4.2);
//! * [`scope`] — interned, sorted subscription-id sets ([`ScopeSet`] /
//!   [`ScopeInterner`]): the scope a message copy carries through the
//!   overlay, hash-consed so forwarding stops allocating per event;
//! * [`selectivity`] — selectivity estimation for workload analysis (the
//!   paper's workload is designed so each message matches 25 % of
//!   subscriptions on average).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
pub mod filter;
pub mod index;
pub mod parser;
pub mod predicate;
pub mod scope;
pub mod selectivity;
pub mod subscription;

pub use cover::CoverForest;
pub use filter::{Filter, FilterExpr};
pub use index::MatchIndex;
pub use parser::parse_filter;
pub use predicate::{CompOp, Predicate};
pub use scope::{ScopeInterner, ScopeSet};
pub use subscription::Subscription;

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::cover::CoverForest;
    pub use crate::filter::{Filter, FilterExpr};
    pub use crate::index::MatchIndex;
    pub use crate::parser::parse_filter;
    pub use crate::predicate::{CompOp, Predicate};
    pub use crate::scope::{ScopeInterner, ScopeSet};
    pub use crate::subscription::Subscription;
}
