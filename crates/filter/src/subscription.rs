//! Subscriptions: a filter plus its subscriber identity and QoS class.
//!
//! Following the paper (§4.1/§4.2), a subscription carries the subscriber's
//! interest (a [`Filter`]), the worst-case delay `dl` the subscriber allows
//! for matching messages and the price `pr` it pays per valid message. In
//! the PSD scenario subscriptions carry no delay bound and a unit price.

use crate::filter::Filter;
use bdps_types::id::{SubscriberId, SubscriptionId};
use bdps_types::money::Price;
use bdps_types::qos::{DelayBound, QosClass};
use bdps_types::time::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A subscription registered by a subscriber.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subscription {
    /// Unique subscription identifier.
    pub id: SubscriptionId,
    /// The subscriber that owns the subscription.
    pub subscriber: SubscriberId,
    /// The content filter describing the subscriber's interest.
    pub filter: Filter,
    /// The subscriber-specified delay bound, if any (SSD scenario).
    pub delay_bound: Option<DelayBound>,
    /// The price paid per valid message.
    pub price: Price,
}

impl Subscription {
    /// Creates a best-effort subscription (no delay bound, unit price) —
    /// the form used in the PSD scenario.
    pub fn best_effort(id: SubscriptionId, subscriber: SubscriberId, filter: Filter) -> Self {
        Subscription {
            id,
            subscriber,
            filter,
            delay_bound: None,
            price: Price::unit(),
        }
    }

    /// Creates a subscription with an explicit QoS class (SSD scenario).
    pub fn with_qos(
        id: SubscriptionId,
        subscriber: SubscriberId,
        filter: Filter,
        qos: QosClass,
    ) -> Self {
        Subscription {
            id,
            subscriber,
            filter,
            delay_bound: Some(qos.delay),
            price: qos.price,
        }
    }

    /// The subscriber-specified allowed delay, treating "unspecified" as unbounded —
    /// the paper's `adl(s_i)` in the SSD scenario.
    pub fn allowed_delay(&self) -> Duration {
        self.delay_bound
            .map(DelayBound::duration)
            .unwrap_or(Duration::MAX)
    }

    /// Returns true if the subscription specifies a finite delay bound.
    pub fn is_delay_bounded(&self) -> bool {
        matches!(self.delay_bound, Some(b) if b != DelayBound::UNBOUNDED)
    }

    /// Returns the QoS class of the subscription (unbounded/unit when unspecified).
    pub fn qos(&self) -> QosClass {
        QosClass {
            delay: self.delay_bound.unwrap_or(DelayBound::UNBOUNDED),
            price: self.price,
        }
    }
}

impl fmt::Display for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} by {}: {}", self.id, self.subscriber, self.filter)?;
        if let Some(b) = self.delay_bound {
            write!(f, " [dl={} pr={}]", b.duration(), self.price)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;

    #[test]
    fn best_effort_subscription() {
        let s = Subscription::best_effort(
            SubscriptionId::new(1),
            SubscriberId::new(2),
            Filter::from(Predicate::lt("A1", 5.0)),
        );
        assert_eq!(s.allowed_delay(), Duration::MAX);
        assert!(!s.is_delay_bounded());
        assert_eq!(s.price, Price::unit());
        assert_eq!(s.qos().price, Price::unit());
    }

    #[test]
    fn qos_subscription() {
        let qos = QosClass::new(DelayBound::from_secs(10), Price::from_units(3));
        let s = Subscription::with_qos(
            SubscriptionId::new(1),
            SubscriberId::new(2),
            Filter::paper_conjunction(5.0, 5.0),
            qos,
        );
        assert_eq!(s.allowed_delay(), Duration::from_secs(10));
        assert!(s.is_delay_bounded());
        assert_eq!(s.price, Price::from_units(3));
        assert_eq!(s.qos(), qos);
    }

    #[test]
    fn display_includes_qos_when_present() {
        let s = Subscription::with_qos(
            SubscriptionId::new(4),
            SubscriberId::new(7),
            Filter::from(Predicate::lt("A1", 5.0)),
            QosClass::new(DelayBound::from_secs(30), Price::from_units(2)),
        );
        let text = s.to_string();
        assert!(text.contains("F4"));
        assert!(text.contains("S7"));
        assert!(text.contains("A1 < 5"));
        assert!(text.contains("dl=30.000s"));
    }
}
