//! A counting-based matching index.
//!
//! A broker needs to find, for every incoming message, the set of registered
//! subscriptions whose filter matches the message head. The naive approach
//! evaluates every filter independently; the classic *counting algorithm*
//! instead indexes individual predicates per attribute and counts, per
//! subscription, how many of its predicates a message satisfies — the
//! subscription matches when the count reaches its predicate total.
//!
//! For the inequality predicates that dominate content-based workloads
//! (`attr < c`, `attr >= c`, ...) the index keeps the constants sorted per
//! (attribute, operator) so that all satisfied predicates are found with one
//! binary search plus a contiguous scan, instead of evaluating every
//! predicate. Equality and string predicates fall back to a per-attribute
//! linear scan, and non-indexable situations are handled by a residual
//! re-check, so the index is *exact*: [`MatchIndex::matching`] returns the
//! same set a brute-force evaluation would.

use crate::filter::Filter;
use crate::predicate::{CompOp, Predicate};
use bdps_types::id::SubscriptionId;
use bdps_types::message::MessageHead;
use std::collections::HashMap;

/// Per-(attribute, operator) sorted list of numeric thresholds.
#[derive(Debug, Default, Clone)]
struct ThresholdList {
    /// (threshold, subscription) pairs sorted by threshold.
    entries: Vec<(f64, SubscriptionId)>,
}

impl ThresholdList {
    fn insert(&mut self, threshold: f64, sub: SubscriptionId) {
        let pos = self.entries.partition_point(|(t, _)| *t < threshold);
        self.entries.insert(pos, (threshold, sub));
    }

    /// Appends without maintaining order — bulk construction pushes
    /// everything first and [`sort`](Self::sort)s once, turning the
    /// quadratic build (one `memmove` per sorted insert) into `O(n log n)`.
    fn push_unsorted(&mut self, threshold: f64, sub: SubscriptionId) {
        self.entries.push((threshold, sub));
    }

    fn sort(&mut self) {
        self.entries
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    }

    /// Removes every entry of one subscription, preserving order.
    fn remove_sub(&mut self, sub: SubscriptionId) {
        self.entries.retain(|(_, s)| *s != sub);
    }

    /// Visits every subscription whose predicate `value OP threshold` is satisfied.
    fn for_each_satisfied(&self, op: CompOp, value: f64, mut f: impl FnMut(SubscriptionId)) {
        let n = self.entries.len();
        match op {
            // value < threshold  -> thresholds strictly greater than value.
            CompOp::Lt => {
                let start = self.entries.partition_point(|(t, _)| *t <= value);
                for &(_, sub) in &self.entries[start..n] {
                    f(sub);
                }
            }
            // value <= threshold -> thresholds >= value.
            CompOp::Le => {
                let start = self.entries.partition_point(|(t, _)| *t < value);
                for &(_, sub) in &self.entries[start..n] {
                    f(sub);
                }
            }
            // value > threshold  -> thresholds strictly less than value.
            CompOp::Gt => {
                let end = self.entries.partition_point(|(t, _)| *t < value);
                for &(_, sub) in &self.entries[..end] {
                    f(sub);
                }
            }
            // value >= threshold -> thresholds <= value.
            CompOp::Ge => {
                let end = self.entries.partition_point(|(t, _)| *t <= value);
                for &(_, sub) in &self.entries[..end] {
                    f(sub);
                }
            }
            CompOp::Eq | CompOp::Ne => unreachable!("equality handled separately"),
        }
    }
}

/// Predicates on one attribute.
#[derive(Debug, Default, Clone)]
struct AttrIndex {
    /// Sorted numeric thresholds, one list per inequality operator.
    lt: ThresholdList,
    le: ThresholdList,
    gt: ThresholdList,
    ge: ThresholdList,
    /// Equality/inequality and non-numeric predicates, evaluated directly.
    other: Vec<(Predicate, SubscriptionId)>,
}

/// An exact matching index over a set of subscriptions.
#[derive(Debug, Default, Clone)]
pub struct MatchIndex {
    attrs: HashMap<String, AttrIndex>,
    /// Number of predicates per subscription (the match target of the counting algorithm).
    pred_counts: HashMap<SubscriptionId, usize>,
    /// Subscriptions with an empty filter: they match every message.
    match_all: Vec<SubscriptionId>,
    /// Original filters, kept so that removal can rebuild and callers can inspect.
    filters: HashMap<SubscriptionId, Filter>,
}

impl MatchIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index from an iterator of subscriptions.
    ///
    /// Bulk construction: predicates are appended unsorted and every
    /// threshold list is sorted once at the end, so building over `n`
    /// subscriptions costs `O(n log n)` instead of the `O(n²)` of repeated
    /// sorted inserts — the difference between seconds and hours at 10⁵
    /// subscriptions.
    pub fn from_subscriptions<'a>(
        subs: impl IntoIterator<Item = (SubscriptionId, &'a Filter)>,
    ) -> Self {
        let mut idx = MatchIndex::new();
        for (id, filter) in subs {
            if idx.filters.contains_key(&id) {
                // Duplicate id in the input: keep replace semantics.
                idx.remove(id);
            }
            idx.index_filter_unsorted(id, filter);
            idx.filters.insert(id, filter.clone());
        }
        for attr_index in idx.attrs.values_mut() {
            attr_index.lt.sort();
            attr_index.le.sort();
            attr_index.gt.sort();
            attr_index.ge.sort();
        }
        idx
    }

    /// Number of indexed subscriptions.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Returns true when no subscription is indexed.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Returns the filter registered for a subscription, if present.
    pub fn filter_of(&self, id: SubscriptionId) -> Option<&Filter> {
        self.filters.get(&id)
    }

    /// Inserts (or replaces) a subscription's filter.
    pub fn insert(&mut self, id: SubscriptionId, filter: Filter) {
        if self.filters.contains_key(&id) {
            self.remove(id);
        }
        self.index_filter(id, &filter);
        self.filters.insert(id, filter);
    }

    fn index_filter(&mut self, id: SubscriptionId, filter: &Filter) {
        if filter.is_empty() {
            self.match_all.push(id);
            return;
        }
        self.pred_counts.insert(id, filter.len());
        for pred in filter.predicates() {
            let attr_index = self.attrs.entry(pred.attr.as_str().to_owned()).or_default();
            match (pred.op, pred.value.as_f64()) {
                (CompOp::Lt, Some(c)) => attr_index.lt.insert(c, id),
                (CompOp::Le, Some(c)) => attr_index.le.insert(c, id),
                (CompOp::Gt, Some(c)) => attr_index.gt.insert(c, id),
                (CompOp::Ge, Some(c)) => attr_index.ge.insert(c, id),
                _ => attr_index.other.push((pred.clone(), id)),
            }
        }
    }

    /// Like [`index_filter`](Self::index_filter) but without maintaining
    /// threshold order; the bulk constructor sorts once afterwards.
    fn index_filter_unsorted(&mut self, id: SubscriptionId, filter: &Filter) {
        if filter.is_empty() {
            self.match_all.push(id);
            return;
        }
        self.pred_counts.insert(id, filter.len());
        for pred in filter.predicates() {
            let attr_index = self.attrs.entry(pred.attr.as_str().to_owned()).or_default();
            match (pred.op, pred.value.as_f64()) {
                (CompOp::Lt, Some(c)) => attr_index.lt.push_unsorted(c, id),
                (CompOp::Le, Some(c)) => attr_index.le.push_unsorted(c, id),
                (CompOp::Gt, Some(c)) => attr_index.gt.push_unsorted(c, id),
                (CompOp::Ge, Some(c)) => attr_index.ge.push_unsorted(c, id),
                _ => attr_index.other.push((pred.clone(), id)),
            }
        }
    }

    /// Removes a subscription surgically: only the per-attribute lists its
    /// own predicates touch are scanned, so a removal is `O(entries of the
    /// touched attributes)` and never clones the remaining filters. (The
    /// previous implementation rebuilt the whole index per removal, which
    /// made churn quadratic in the population.)
    pub fn remove(&mut self, id: SubscriptionId) -> Option<Filter> {
        let removed = self.filters.remove(&id)?;
        if removed.is_empty() {
            self.match_all.retain(|s| *s != id);
            return Some(removed);
        }
        self.pred_counts.remove(&id);
        for pred in removed.predicates() {
            let Some(attr_index) = self.attrs.get_mut(pred.attr.as_str()) else {
                continue;
            };
            match (pred.op, pred.value.as_f64()) {
                (CompOp::Lt, Some(_)) => attr_index.lt.remove_sub(id),
                (CompOp::Le, Some(_)) => attr_index.le.remove_sub(id),
                (CompOp::Gt, Some(_)) => attr_index.gt.remove_sub(id),
                (CompOp::Ge, Some(_)) => attr_index.ge.remove_sub(id),
                _ => attr_index.other.retain(|(_, s)| *s != id),
            }
        }
        Some(removed)
    }

    /// Returns the identifiers of all subscriptions whose filter matches the
    /// message head, in ascending id order.
    pub fn matching(&self, head: &MessageHead) -> Vec<SubscriptionId> {
        let mut out = Vec::new();
        self.matching_into(head, &mut out);
        out
    }

    /// Like [`matching`](Self::matching), but appends into a caller-supplied
    /// buffer (cleared first) so hot paths can reuse one allocation across
    /// messages.
    pub fn matching_into(&self, head: &MessageHead, out: &mut Vec<SubscriptionId>) {
        out.clear();
        let mut counts: HashMap<SubscriptionId, usize> = HashMap::new();

        for (name, value) in head.iter() {
            let Some(attr_index) = self.attrs.get(name.as_str()) else {
                continue;
            };
            if let Some(v) = value.as_f64() {
                for (list, op) in [
                    (&attr_index.lt, CompOp::Lt),
                    (&attr_index.le, CompOp::Le),
                    (&attr_index.gt, CompOp::Gt),
                    (&attr_index.ge, CompOp::Ge),
                ] {
                    list.for_each_satisfied(op, v, |sub| {
                        *counts.entry(sub).or_insert(0) += 1;
                    });
                }
            }
            for (pred, sub) in &attr_index.other {
                if pred.matches_value(value) {
                    *counts.entry(*sub).or_insert(0) += 1;
                }
            }
        }

        out.extend(counts.into_iter().filter_map(|(sub, count)| {
            let needed = *self.pred_counts.get(&sub)?;
            (count >= needed).then_some(sub)
        }));
        out.extend(self.match_all.iter().copied());
        out.sort_unstable();
        out.dedup();
    }

    /// Brute-force matching used as the reference implementation in tests and
    /// to cross-check the index in property tests.
    pub fn matching_bruteforce(&self, head: &MessageHead) -> Vec<SubscriptionId> {
        let mut result: Vec<SubscriptionId> = self
            .filters
            .iter()
            .filter(|(_, f)| f.matches(head))
            .map(|(id, _)| *id)
            .collect();
        result.sort_unstable();
        result
    }
}

/// A message head value paired with the operators it satisfies — exposed for
/// benchmarking the raw threshold lists.
#[doc(hidden)]
pub fn __bench_threshold_probe(constants: &[f64], value: f64) -> usize {
    let mut list = ThresholdList::default();
    for (i, &c) in constants.iter().enumerate() {
        list.insert(c, SubscriptionId::new(i as u32));
    }
    let mut n = 0;
    list.for_each_satisfied(CompOp::Lt, value, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;

    fn head(a1: f64, a2: f64) -> MessageHead {
        let mut h = MessageHead::new();
        h.set("A1", a1).set("A2", a2);
        h
    }

    fn id(n: u32) -> SubscriptionId {
        SubscriptionId::new(n)
    }

    #[test]
    fn single_subscription_match() {
        let mut idx = MatchIndex::new();
        idx.insert(id(1), Filter::paper_conjunction(5.0, 5.0));
        assert_eq!(idx.matching(&head(3.0, 3.0)), vec![id(1)]);
        assert!(idx.matching(&head(6.0, 3.0)).is_empty());
        assert!(idx.matching(&head(3.0, 6.0)).is_empty());
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
    }

    #[test]
    fn counting_requires_all_predicates() {
        let mut idx = MatchIndex::new();
        // Subscription with a predicate on an attribute absent from the head.
        idx.insert(
            id(1),
            Filter::new(vec![Predicate::lt("A1", 5.0), Predicate::lt("A3", 5.0)]),
        );
        assert!(idx.matching(&head(1.0, 1.0)).is_empty());
    }

    #[test]
    fn match_all_subscription() {
        let mut idx = MatchIndex::new();
        idx.insert(id(7), Filter::match_all());
        idx.insert(id(3), Filter::paper_conjunction(5.0, 5.0));
        let m = idx.matching(&head(9.0, 9.0));
        assert_eq!(m, vec![id(7)]);
        let m = idx.matching(&head(1.0, 1.0));
        assert_eq!(m, vec![id(3), id(7)]);
    }

    #[test]
    fn all_operator_kinds() {
        let mut idx = MatchIndex::new();
        idx.insert(id(1), Filter::from(Predicate::lt("A1", 5.0)));
        idx.insert(id(2), Filter::from(Predicate::le("A1", 5.0)));
        idx.insert(id(3), Filter::from(Predicate::gt("A1", 5.0)));
        idx.insert(id(4), Filter::from(Predicate::ge("A1", 5.0)));
        idx.insert(id(5), Filter::from(Predicate::eq("A1", 5.0)));
        idx.insert(id(6), Filter::from(Predicate::ne("A1", 5.0)));

        let at = |v: f64| idx.matching(&head(v, 0.0));
        assert_eq!(at(4.0), vec![id(1), id(2), id(6)]);
        assert_eq!(at(5.0), vec![id(2), id(4), id(5)]);
        assert_eq!(at(6.0), vec![id(3), id(4), id(6)]);
    }

    #[test]
    fn string_and_bool_predicates() {
        let mut idx = MatchIndex::new();
        idx.insert(id(1), Filter::from(Predicate::eq("road", "M25")));
        idx.insert(id(2), Filter::from(Predicate::eq("closed", true)));
        let mut h = MessageHead::new();
        h.set("road", "M25").set("closed", false);
        assert_eq!(idx.matching(&h), vec![id(1)]);
        h.set("closed", true);
        assert_eq!(idx.matching(&h), vec![id(1), id(2)]);
    }

    #[test]
    fn replace_and_remove() {
        let mut idx = MatchIndex::new();
        idx.insert(id(1), Filter::from(Predicate::lt("A1", 5.0)));
        idx.insert(id(2), Filter::from(Predicate::lt("A1", 8.0)));
        // Replace subscription 1 with a non-matching filter.
        idx.insert(id(1), Filter::from(Predicate::gt("A1", 100.0)));
        assert_eq!(idx.matching(&head(3.0, 0.0)), vec![id(2)]);
        assert_eq!(idx.len(), 2);

        let removed = idx.remove(id(2)).unwrap();
        assert_eq!(removed, Filter::from(Predicate::lt("A1", 8.0)));
        assert!(idx.matching(&head(3.0, 0.0)).is_empty());
        assert_eq!(idx.len(), 1);
        assert!(idx.remove(id(99)).is_none());
        assert!(idx.filter_of(id(1)).is_some());
        assert!(idx.filter_of(id(2)).is_none());
    }

    #[test]
    fn index_agrees_with_bruteforce_on_random_workload() {
        let mut rng = SmallLcg::new(0xB0B0);
        let mut idx = MatchIndex::new();
        for i in 0..300u32 {
            let x1 = rng.next_f64() * 10.0;
            let x2 = rng.next_f64() * 10.0;
            idx.insert(id(i), Filter::paper_conjunction(x1, x2));
        }
        for _ in 0..200 {
            let h = head(rng.next_f64() * 10.0, rng.next_f64() * 10.0);
            assert_eq!(idx.matching(&h), idx.matching_bruteforce(&h));
        }
    }

    #[test]
    fn paper_workload_selectivity_is_about_25_percent() {
        let mut rng = SmallLcg::new(42);
        let mut idx = MatchIndex::new();
        let n_subs = 160u32;
        for i in 0..n_subs {
            idx.insert(
                id(i),
                Filter::paper_conjunction(rng.next_f64() * 10.0, rng.next_f64() * 10.0),
            );
        }
        let trials = 400;
        let mut total_matches = 0usize;
        for _ in 0..trials {
            let h = head(rng.next_f64() * 10.0, rng.next_f64() * 10.0);
            total_matches += idx.matching(&h).len();
        }
        let avg_fraction = total_matches as f64 / (trials as f64 * n_subs as f64);
        assert!(
            (avg_fraction - 0.25).abs() < 0.05,
            "average match fraction {avg_fraction}, expected ~0.25"
        );
    }

    #[test]
    fn bulk_build_agrees_with_incremental_inserts() {
        let mut rng = SmallLcg::new(0xFEED);
        let filters: Vec<(SubscriptionId, Filter)> = (0..500u32)
            .map(|i| {
                (
                    id(i),
                    Filter::paper_conjunction(rng.next_f64() * 10.0, rng.next_f64() * 10.0),
                )
            })
            .collect();
        let bulk = MatchIndex::from_subscriptions(filters.iter().map(|(i, f)| (*i, f)));
        let mut incremental = MatchIndex::new();
        for (i, f) in &filters {
            incremental.insert(*i, f.clone());
        }
        for _ in 0..100 {
            let h = head(rng.next_f64() * 10.0, rng.next_f64() * 10.0);
            assert_eq!(bulk.matching(&h), incremental.matching(&h));
        }
    }

    #[test]
    fn surgical_removal_keeps_index_exact() {
        let mut rng = SmallLcg::new(0xACE5);
        let mut idx = MatchIndex::new();
        for i in 0..200u32 {
            idx.insert(
                id(i),
                Filter::paper_conjunction(rng.next_f64() * 10.0, rng.next_f64() * 10.0),
            );
        }
        idx.insert(id(200), Filter::match_all());
        // Remove half the population, interleaved with matching checks.
        for i in (0..=200u32).step_by(2) {
            idx.remove(id(i));
            let h = head(rng.next_f64() * 10.0, rng.next_f64() * 10.0);
            assert_eq!(idx.matching(&h), idx.matching_bruteforce(&h));
        }
        assert_eq!(idx.len(), 100);
        assert!(idx.filter_of(id(200)).is_none());
    }

    #[test]
    fn matching_into_reuses_the_buffer() {
        let mut idx = MatchIndex::new();
        idx.insert(id(1), Filter::from(Predicate::lt("A1", 5.0)));
        let mut buf = vec![id(9), id(9), id(9)];
        idx.matching_into(&head(1.0, 0.0), &mut buf);
        assert_eq!(buf, vec![id(1)]);
        idx.matching_into(&head(9.0, 0.0), &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn from_subscriptions_constructor() {
        let filters = [
            (id(1), Filter::from(Predicate::lt("A1", 5.0))),
            (id(2), Filter::from(Predicate::gt("A1", 2.0))),
        ];
        let idx = MatchIndex::from_subscriptions(filters.iter().map(|(i, f)| (*i, f)));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.matching(&head(3.0, 0.0)), vec![id(1), id(2)]);
    }

    /// A tiny deterministic LCG so the tests do not need the `rand` crate here.
    struct SmallLcg(u64);

    impl SmallLcg {
        fn new(seed: u64) -> Self {
            SmallLcg(seed.max(1))
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}
