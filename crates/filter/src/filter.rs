//! Filters: conjunctions of predicates and general boolean filter expressions.
//!
//! The paper's subscriptions are conjunctions (`A1 < x1 ∧ A2 < x2`), which is
//! the canonical form content-based routing works with ([`Filter`]). General
//! boolean expressions ([`FilterExpr`]) are supported for application code
//! and are normalised into a disjunction of conjunctions before being
//! registered with a broker.

use crate::predicate::{CompOp, Predicate};
use bdps_types::message::MessageHead;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A conjunction of atomic predicates — the unit of subscription routing.
///
/// # The empty filter is *top*, not bottom
///
/// An empty filter matches every message (it is the "true" filter): an empty
/// conjunction is vacuously satisfied. Consequently [`match_all`](Self::match_all)
/// is the empty filter, it [`covers`](Self::covers) every other filter, and
/// [`cover_join`](Self::cover_join) with it yields the empty filter again —
/// the top element of the covering order. Code that inspects
/// [`is_empty`](Self::is_empty) or `predicates().is_empty()` must never read
/// an empty predicate list as "matches nothing"; the matches-nothing case is
/// [`FilterExpr::False`] (or an empty DNF), which deliberately has no
/// `Filter` representation.
///
/// The predicate list is shared behind an `Arc`: a filter is cloned into
/// every broker's subscription table and matching index, and at 10⁵
/// subscribers those copies dominated construction time and memory. Cloning
/// a filter is a reference-count bump; the rare mutation
/// ([`and`](Self::and)) copies on write.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    predicates: Arc<Vec<Predicate>>,
}

impl Filter {
    /// The filter that matches every message.
    pub fn match_all() -> Self {
        Filter::default()
    }

    /// Creates a filter from a list of predicates.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Filter {
            predicates: Arc::new(predicates),
        }
    }

    /// Builds the paper's workload filter `A1 < x1 ∧ A2 < x2`.
    pub fn paper_conjunction(x1: f64, x2: f64) -> Self {
        Filter::new(vec![Predicate::lt("A1", x1), Predicate::lt("A2", x2)])
    }

    /// Adds a predicate to the conjunction (copy-on-write when shared).
    pub fn and(mut self, p: Predicate) -> Self {
        Arc::make_mut(&mut self.predicates).push(p);
        self
    }

    /// The predicates of the conjunction.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Returns true when the filter has no predicates — i.e. when it is
    /// [`match_all`](Self::match_all), the *top* of the covering order.
    /// An empty filter matches everything, never nothing.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Evaluates the filter against a message head.
    pub fn matches(&self, head: &MessageHead) -> bool {
        self.predicates.iter().all(|p| p.matches(head))
    }

    /// Returns true when this filter *covers* `other`: every message matching
    /// `other` also matches `self`. The check is conservative (sound but not
    /// complete): it requires every predicate of `self` to be implied by some
    /// predicate of `other`.
    pub fn covers(&self, other: &Filter) -> bool {
        self.predicates
            .iter()
            .all(|mine| other.predicates.iter().any(|theirs| theirs.implies(mine)))
    }

    /// Returns true when the two filters are provably disjoint (no message
    /// can match both). Conservative: `false` means "possibly overlapping".
    pub fn disjoint_with(&self, other: &Filter) -> bool {
        self.predicates
            .iter()
            .any(|a| other.predicates.iter().any(|b| a.contradicts(b)))
    }

    /// Returns true when the two filters may both match some message
    /// (the complement of [`disjoint_with`](Self::disjoint_with)).
    pub fn may_overlap(&self, other: &Filter) -> bool {
        !self.disjoint_with(other)
    }

    /// The conjunction of two filters.
    pub fn intersect(&self, other: &Filter) -> Filter {
        let mut preds = (*self.predicates).clone();
        preds.extend(other.predicates.iter().cloned());
        Filter::new(preds)
    }

    /// Returns true when the two filters cover each other — equivalent under
    /// the conservative covering relation (they match the same messages).
    pub fn equivalent(&self, other: &Filter) -> bool {
        self.covers(other) && other.covers(self)
    }

    /// The covering join of two filters: a filter that covers both operands
    /// (a conservative least upper bound under [`covers`](Self::covers)).
    ///
    /// A filter `g` covers `f` when every predicate of `g` is implied by
    /// some predicate of `f`; the join therefore keeps exactly the
    /// predicates of either operand that the *other* operand implies, then
    /// drops internal redundancies. Joining with [`match_all`](Self::match_all)
    /// yields `match_all` — the top element of the covering order. Part of
    /// the covering algebra next to [`covers`](Self::covers) and
    /// [`CoverForest`](crate::cover::CoverForest), for callers that want a
    /// single summary filter per group instead of the full covering set
    /// (e.g. advertising one merged envelope upstream).
    pub fn cover_join(&self, other: &Filter) -> Filter {
        let implied_by = |preds: &[Predicate], p: &Predicate| preds.iter().any(|q| q.implies(p));
        let mut kept: Vec<Predicate> = Vec::new();
        for p in self.predicates.iter() {
            if implied_by(other.predicates(), p) {
                kept.push(p.clone());
            }
        }
        for p in other.predicates.iter() {
            if implied_by(self.predicates(), p) {
                kept.push(p.clone());
            }
        }
        Filter::new(kept).simplified()
    }

    /// Returns a simplified filter with redundant predicates removed
    /// (a predicate implied by another predicate of the same filter is dropped).
    pub fn simplified(&self) -> Filter {
        let mut kept: Vec<Predicate> = Vec::with_capacity(self.predicates.len());
        for (i, p) in self.predicates.iter().enumerate() {
            let redundant = self.predicates.iter().enumerate().any(|(j, q)| {
                if i == j {
                    return false;
                }
                // q implies p and either q is strictly stronger, or they are
                // equal and we keep only the first occurrence.
                q.implies(p) && (!p.implies(q) || j < i)
            });
            if !redundant {
                kept.push(p.clone());
            }
        }
        Filter::new(kept)
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return f.write_str("true");
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(" && ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl From<Predicate> for Filter {
    fn from(p: Predicate) -> Self {
        Filter::new(vec![p])
    }
}

/// A general boolean filter expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FilterExpr {
    /// The expression that matches everything.
    True,
    /// The expression that matches nothing.
    False,
    /// An atomic predicate.
    Pred(Predicate),
    /// Conjunction of sub-expressions.
    And(Vec<FilterExpr>),
    /// Disjunction of sub-expressions.
    Or(Vec<FilterExpr>),
    /// Negation of a sub-expression.
    Not(Box<FilterExpr>),
}

impl FilterExpr {
    /// Evaluates the expression against a message head.
    pub fn matches(&self, head: &MessageHead) -> bool {
        match self {
            FilterExpr::True => true,
            FilterExpr::False => false,
            FilterExpr::Pred(p) => p.matches(head),
            FilterExpr::And(xs) => xs.iter().all(|x| x.matches(head)),
            FilterExpr::Or(xs) => xs.iter().any(|x| x.matches(head)),
            FilterExpr::Not(x) => !x.matches(head),
        }
    }

    /// Pushes negations down to the predicate level (negation normal form).
    ///
    /// Comparison predicates have exact complements (`!(a < b)` is `a >= b`),
    /// so the resulting expression contains no `Not` nodes.
    /// Note: for heads where the attribute is *missing*, both a predicate and
    /// its complement evaluate to false; routing treats missing attributes as
    /// non-matching in either polarity, which is the conventional choice.
    pub fn to_nnf(&self) -> FilterExpr {
        match self {
            FilterExpr::True | FilterExpr::False | FilterExpr::Pred(_) => self.clone(),
            FilterExpr::And(xs) => FilterExpr::And(xs.iter().map(|x| x.to_nnf()).collect()),
            FilterExpr::Or(xs) => FilterExpr::Or(xs.iter().map(|x| x.to_nnf()).collect()),
            FilterExpr::Not(inner) => match &**inner {
                FilterExpr::True => FilterExpr::False,
                FilterExpr::False => FilterExpr::True,
                FilterExpr::Pred(p) => FilterExpr::Pred(p.negated()),
                FilterExpr::Not(x) => x.to_nnf(),
                FilterExpr::And(xs) => FilterExpr::Or(
                    xs.iter()
                        .map(|x| FilterExpr::Not(Box::new(x.clone())).to_nnf())
                        .collect(),
                ),
                FilterExpr::Or(xs) => FilterExpr::And(
                    xs.iter()
                        .map(|x| FilterExpr::Not(Box::new(x.clone())).to_nnf())
                        .collect(),
                ),
            },
        }
    }

    /// Normalises the expression into a disjunction of conjunctive [`Filter`]s.
    ///
    /// An empty vector means the expression is unsatisfiable (`False`);
    /// a vector containing an empty filter means it matches everything.
    pub fn to_dnf(&self) -> Vec<Filter> {
        fn go(expr: &FilterExpr) -> Vec<Vec<Predicate>> {
            match expr {
                FilterExpr::True => vec![vec![]],
                FilterExpr::False => vec![],
                FilterExpr::Pred(p) => vec![vec![p.clone()]],
                FilterExpr::Or(xs) => xs.iter().flat_map(go).collect(),
                FilterExpr::And(xs) => {
                    let mut acc: Vec<Vec<Predicate>> = vec![vec![]];
                    for x in xs {
                        let terms = go(x);
                        let mut next = Vec::with_capacity(acc.len() * terms.len().max(1));
                        for a in &acc {
                            for t in &terms {
                                let mut combined = a.clone();
                                combined.extend(t.iter().cloned());
                                next.push(combined);
                            }
                        }
                        acc = next;
                        if acc.is_empty() {
                            break;
                        }
                    }
                    acc
                }
                FilterExpr::Not(_) => go(&expr.to_nnf()),
            }
        }
        go(&self.to_nnf()).into_iter().map(Filter::new).collect()
    }

    /// Convenience constructor for a conjunction of two expressions.
    pub fn and(a: FilterExpr, b: FilterExpr) -> FilterExpr {
        FilterExpr::And(vec![a, b])
    }

    /// Convenience constructor for a disjunction of two expressions.
    pub fn or(a: FilterExpr, b: FilterExpr) -> FilterExpr {
        FilterExpr::Or(vec![a, b])
    }

    /// Convenience constructor for a negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: FilterExpr) -> FilterExpr {
        FilterExpr::Not(Box::new(a))
    }
}

impl From<Predicate> for FilterExpr {
    fn from(p: Predicate) -> Self {
        FilterExpr::Pred(p)
    }
}

impl From<Filter> for FilterExpr {
    fn from(f: Filter) -> Self {
        if f.is_empty() {
            FilterExpr::True
        } else {
            FilterExpr::And(
                f.predicates()
                    .iter()
                    .cloned()
                    .map(FilterExpr::Pred)
                    .collect(),
            )
        }
    }
}

impl fmt::Display for FilterExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterExpr::True => f.write_str("true"),
            FilterExpr::False => f.write_str("false"),
            FilterExpr::Pred(p) => write!(f, "{p}"),
            FilterExpr::And(xs) => {
                f.write_str("(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" && ")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str(")")
            }
            FilterExpr::Or(xs) => {
                f.write_str("(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" || ")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str(")")
            }
            FilterExpr::Not(x) => write!(f, "!({x})"),
        }
    }
}

/// Builds the half-open range filter `lo <= attr < hi`.
pub fn range_filter(attr: &str, lo: f64, hi: f64) -> Filter {
    Filter::new(vec![
        Predicate::new(attr, CompOp::Ge, lo),
        Predicate::new(attr, CompOp::Lt, hi),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(a1: f64, a2: f64) -> MessageHead {
        let mut h = MessageHead::new();
        h.set("A1", a1).set("A2", a2);
        h
    }

    #[test]
    fn conjunction_matching() {
        let f = Filter::paper_conjunction(5.0, 5.0);
        assert!(f.matches(&head(3.0, 4.9)));
        assert!(!f.matches(&head(5.0, 4.9)));
        assert!(!f.matches(&head(3.0, 6.0)));
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn empty_filter_matches_everything() {
        let f = Filter::match_all();
        assert!(f.matches(&head(1.0, 2.0)));
        assert!(f.matches(&MessageHead::new()));
        assert_eq!(f.to_string(), "true");
    }

    #[test]
    fn empty_filter_is_the_top_of_the_covering_order() {
        // Dedicated pin for the empty-filter-is-top convention (previously
        // only asserted incidentally inside a cover-forest property): the
        // result of `cover_join` with match_all is the *empty* filter, and
        // that empty filter must behave as "matches everything", not
        // "matches nothing". Aggregate summaries depend on this — a group
        // containing a match_all subscription summarises to an empty filter
        // that must keep matching every publication.
        let narrow = Filter::paper_conjunction(2.0, 2.0);
        let join = narrow.cover_join(&Filter::match_all());
        assert!(join.is_empty());
        assert_eq!(join, Filter::match_all());
        assert!(join.matches(&head(9.0, 9.0)));
        assert!(join.matches(&MessageHead::new()));
        assert!(join.covers(&narrow));
        assert!(join.covers(&Filter::match_all()));
        // Symmetric operand order.
        assert_eq!(Filter::match_all().cover_join(&narrow), Filter::match_all());
        // And the same filter via simplified()/new(vec![]) round trips.
        assert!(Filter::new(vec![]).matches(&head(0.0, 0.0)));
    }

    #[test]
    fn covering_relation() {
        let wide = Filter::paper_conjunction(8.0, 8.0);
        let narrow = Filter::paper_conjunction(3.0, 3.0);
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        // Everything covers itself; match_all covers everything.
        assert!(wide.covers(&wide));
        assert!(Filter::match_all().covers(&narrow));
        assert!(!narrow.covers(&Filter::match_all()));
        // A filter with an extra attribute is covered by one without it.
        let extra = narrow.clone().and(Predicate::gt("A3", 0.0));
        assert!(narrow.covers(&extra));
        assert!(!extra.covers(&narrow));
    }

    #[test]
    fn disjointness() {
        let low = Filter::from(Predicate::lt("A1", 2.0));
        let high = Filter::from(Predicate::gt("A1", 5.0));
        assert!(low.disjoint_with(&high));
        assert!(!low.may_overlap(&high));
        let mid = Filter::from(Predicate::lt("A1", 6.0));
        assert!(mid.may_overlap(&high));
        // Different attributes can always overlap.
        let other = Filter::from(Predicate::gt("A2", 9.0));
        assert!(low.may_overlap(&other));
    }

    #[test]
    fn intersect_combines_predicates() {
        let a = Filter::from(Predicate::lt("A1", 5.0));
        let b = Filter::from(Predicate::ge("A2", 1.0));
        let c = a.intersect(&b);
        assert_eq!(c.len(), 2);
        assert!(c.matches(&head(4.0, 1.0)));
        assert!(!c.matches(&head(4.0, 0.5)));
    }

    #[test]
    fn simplification_drops_redundant_predicates() {
        let f = Filter::new(vec![
            Predicate::lt("A1", 3.0),
            Predicate::lt("A1", 5.0), // implied by the previous one
            Predicate::gt("A2", 1.0),
        ]);
        let s = f.simplified();
        assert_eq!(s.len(), 2);
        assert!(s.predicates().contains(&Predicate::lt("A1", 3.0)));
        assert!(s.predicates().contains(&Predicate::gt("A2", 1.0)));
        // Duplicate predicates collapse to one.
        let dup = Filter::new(vec![Predicate::lt("A1", 3.0), Predicate::lt("A1", 3.0)]);
        assert_eq!(dup.simplified().len(), 1);
    }

    #[test]
    fn expr_evaluation() {
        let e = FilterExpr::or(
            FilterExpr::and(
                Predicate::lt("A1", 2.0).into(),
                Predicate::lt("A2", 2.0).into(),
            ),
            FilterExpr::not(Predicate::lt("A2", 9.0).into()),
        );
        assert!(e.matches(&head(1.0, 1.0)));
        assert!(e.matches(&head(5.0, 9.5)));
        assert!(!e.matches(&head(5.0, 5.0)));
        assert!(FilterExpr::True.matches(&head(0.0, 0.0)));
        assert!(!FilterExpr::False.matches(&head(0.0, 0.0)));
    }

    #[test]
    fn nnf_eliminates_not() {
        let e = FilterExpr::not(FilterExpr::or(
            Predicate::lt("A1", 2.0).into(),
            FilterExpr::not(Predicate::ge("A2", 3.0).into()),
        ));
        let nnf = e.to_nnf();
        fn has_not(e: &FilterExpr) -> bool {
            match e {
                FilterExpr::Not(_) => true,
                FilterExpr::And(xs) | FilterExpr::Or(xs) => xs.iter().any(has_not),
                _ => false,
            }
        }
        assert!(!has_not(&nnf));
        // Semantics preserved on heads with both attributes present.
        for (a1, a2) in [(1.0, 5.0), (3.0, 5.0), (3.0, 1.0), (1.0, 1.0)] {
            assert_eq!(e.matches(&head(a1, a2)), nnf.matches(&head(a1, a2)));
        }
    }

    #[test]
    fn dnf_of_conjunction_is_single_filter() {
        let e = FilterExpr::and(
            Predicate::lt("A1", 5.0).into(),
            Predicate::lt("A2", 5.0).into(),
        );
        let dnf = e.to_dnf();
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf[0].len(), 2);
    }

    #[test]
    fn dnf_distributes_or_over_and() {
        // (p1 || p2) && (q1 || q2) -> 4 conjunctions.
        let e = FilterExpr::and(
            FilterExpr::or(
                Predicate::lt("A1", 1.0).into(),
                Predicate::gt("A1", 9.0).into(),
            ),
            FilterExpr::or(
                Predicate::lt("A2", 1.0).into(),
                Predicate::gt("A2", 9.0).into(),
            ),
        );
        let dnf = e.to_dnf();
        assert_eq!(dnf.len(), 4);
        assert!(dnf.iter().all(|f| f.len() == 2));
        // Semantics preserved.
        for (a1, a2) in [(0.5, 0.5), (0.5, 9.5), (5.0, 0.5), (5.0, 5.0)] {
            let direct = e.matches(&head(a1, a2));
            let via_dnf = dnf.iter().any(|f| f.matches(&head(a1, a2)));
            assert_eq!(direct, via_dnf, "a1={a1} a2={a2}");
        }
    }

    #[test]
    fn dnf_edge_cases() {
        assert_eq!(FilterExpr::False.to_dnf().len(), 0);
        let dnf_true = FilterExpr::True.to_dnf();
        assert_eq!(dnf_true.len(), 1);
        assert!(dnf_true[0].is_empty());
        // And containing False collapses to empty DNF.
        let e = FilterExpr::and(FilterExpr::False, Predicate::lt("A1", 1.0).into());
        assert!(e.to_dnf().is_empty());
    }

    #[test]
    fn filter_expr_round_trip_from_filter() {
        let f = Filter::paper_conjunction(4.0, 6.0);
        let e: FilterExpr = f.clone().into();
        assert!(e.matches(&head(3.0, 5.0)));
        assert!(!e.matches(&head(5.0, 5.0)));
        let again = e.to_dnf();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0], f);
        let all: FilterExpr = Filter::match_all().into();
        assert_eq!(all, FilterExpr::True);
    }

    #[test]
    fn range_helper() {
        let f = range_filter("A1", 2.0, 4.0);
        assert!(f.matches(&head(2.0, 0.0)));
        assert!(f.matches(&head(3.9, 0.0)));
        assert!(!f.matches(&head(4.0, 0.0)));
        assert!(!f.matches(&head(1.9, 0.0)));
    }

    #[test]
    fn display_round_trip_shape() {
        let f = Filter::paper_conjunction(5.0, 2.5);
        assert_eq!(f.to_string(), "A1 < 5 && A2 < 2.5");
        let e = FilterExpr::or(Predicate::lt("A1", 1.0).into(), FilterExpr::True);
        assert_eq!(e.to_string(), "(A1 < 1 || true)");
    }
}
