//! Selectivity estimation for filters.
//!
//! The paper's workload is engineered so that each published message matches
//! 25 % of subscriptions on average (two independent uniform attributes, each
//! constrained by a uniform `<` threshold gives (1/2)² = 25 %). Workload
//! generators and experiment reports use these estimators to sanity-check
//! that generated subscription populations hit the intended selectivity.

use crate::filter::Filter;
use crate::predicate::{CompOp, Predicate};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The assumed marginal distribution of one message-head attribute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttributeModel {
    /// Uniformly distributed on `[lo, hi)` (the paper's attributes are U(0, 10)).
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
}

impl AttributeModel {
    /// `P(X < c)` under this model.
    fn prob_lt(&self, c: f64) -> f64 {
        match *self {
            AttributeModel::Uniform { lo, hi } => ((c - lo) / (hi - lo)).clamp(0.0, 1.0),
        }
    }

    /// `P(X <= c)`; identical to `prob_lt` for continuous models.
    fn prob_le(&self, c: f64) -> f64 {
        self.prob_lt(c)
    }
}

/// A collection of per-attribute models used to estimate filter selectivity.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SelectivityModel {
    attributes: HashMap<String, AttributeModel>,
}

impl SelectivityModel {
    /// Creates an empty model (unknown attributes get selectivity 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// The model of the paper's workload: `A1`, `A2` uniform on `(0, 10)`.
    pub fn paper_workload() -> Self {
        let mut m = SelectivityModel::new();
        m.set_attribute("A1", AttributeModel::Uniform { lo: 0.0, hi: 10.0 });
        m.set_attribute("A2", AttributeModel::Uniform { lo: 0.0, hi: 10.0 });
        m
    }

    /// Declares the distribution of an attribute.
    pub fn set_attribute(&mut self, name: impl Into<String>, model: AttributeModel) {
        self.attributes.insert(name.into(), model);
    }

    /// Estimated probability that a random message satisfies the predicate.
    /// Unknown attributes and non-numeric predicates yield the conservative
    /// estimate 1.0 (no reduction in selectivity).
    pub fn predicate_selectivity(&self, pred: &Predicate) -> f64 {
        let Some(model) = self.attributes.get(pred.attr.as_str()) else {
            return 1.0;
        };
        let Some(c) = pred.value.as_f64() else {
            return 1.0;
        };
        match pred.op {
            CompOp::Lt => model.prob_lt(c),
            CompOp::Le => model.prob_le(c),
            CompOp::Gt => 1.0 - model.prob_le(c),
            CompOp::Ge => 1.0 - model.prob_lt(c),
            // Point predicates over continuous models have measure ~0 / ~1.
            CompOp::Eq => 0.0,
            CompOp::Ne => 1.0,
        }
    }

    /// Estimated probability that a random message matches the whole filter,
    /// assuming attribute independence (the paper's workload is independent).
    pub fn filter_selectivity(&self, filter: &Filter) -> f64 {
        filter
            .predicates()
            .iter()
            .map(|p| self.predicate_selectivity(p))
            .product()
    }

    /// Estimated average fraction of a subscription population that a random
    /// message matches.
    pub fn population_selectivity<'a>(&self, filters: impl IntoIterator<Item = &'a Filter>) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for f in filters {
            total += self.filter_selectivity(f);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_predicate_selectivity() {
        let m = SelectivityModel::paper_workload();
        assert!((m.predicate_selectivity(&Predicate::lt("A1", 5.0)) - 0.5).abs() < 1e-12);
        assert!((m.predicate_selectivity(&Predicate::lt("A1", 2.5)) - 0.25).abs() < 1e-12);
        assert!((m.predicate_selectivity(&Predicate::gt("A1", 7.5)) - 0.25).abs() < 1e-12);
        assert!((m.predicate_selectivity(&Predicate::ge("A2", 0.0)) - 1.0).abs() < 1e-12);
        assert_eq!(m.predicate_selectivity(&Predicate::eq("A1", 5.0)), 0.0);
        assert_eq!(m.predicate_selectivity(&Predicate::ne("A1", 5.0)), 1.0);
        // Out-of-range constants clamp.
        assert_eq!(m.predicate_selectivity(&Predicate::lt("A1", 20.0)), 1.0);
        assert_eq!(m.predicate_selectivity(&Predicate::lt("A1", -1.0)), 0.0);
    }

    #[test]
    fn unknown_attribute_is_conservative() {
        let m = SelectivityModel::paper_workload();
        assert_eq!(m.predicate_selectivity(&Predicate::lt("A9", 1.0)), 1.0);
        assert_eq!(m.predicate_selectivity(&Predicate::eq("sym", "ACME")), 1.0);
    }

    #[test]
    fn filter_selectivity_is_product() {
        let m = SelectivityModel::paper_workload();
        let f = Filter::paper_conjunction(5.0, 5.0);
        assert!((m.filter_selectivity(&f) - 0.25).abs() < 1e-12);
        assert_eq!(m.filter_selectivity(&Filter::match_all()), 1.0);
    }

    #[test]
    fn expected_paper_population_selectivity_is_one_quarter() {
        // E[P(A1 < X1)] with X1 ~ U(0,10) is 1/2; two independent attributes -> 1/4.
        let m = SelectivityModel::paper_workload();
        // Deterministic grid over threshold space approximates the expectation.
        let mut filters = Vec::new();
        let steps = 40;
        for i in 0..steps {
            for j in 0..steps {
                let x1 = (i as f64 + 0.5) * 10.0 / steps as f64;
                let x2 = (j as f64 + 0.5) * 10.0 / steps as f64;
                filters.push(Filter::paper_conjunction(x1, x2));
            }
        }
        let avg = m.population_selectivity(filters.iter());
        assert!((avg - 0.25).abs() < 0.01, "avg = {avg}");
    }

    #[test]
    fn empty_population() {
        let m = SelectivityModel::paper_workload();
        assert_eq!(m.population_selectivity(std::iter::empty()), 0.0);
    }
}
