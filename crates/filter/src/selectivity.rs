//! Selectivity estimation for filters.
//!
//! The paper's workload is engineered so that each published message matches
//! 25 % of subscriptions on average (two independent uniform attributes, each
//! constrained by a uniform `<` threshold gives (1/2)² = 25 %). Workload
//! generators and experiment reports use these estimators to sanity-check
//! that generated subscription populations hit the intended selectivity.

use crate::filter::Filter;
use crate::predicate::{CompOp, Predicate};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The assumed marginal distribution of one message-head attribute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttributeModel {
    /// Uniformly distributed on `[lo, hi)` (the paper's attributes are U(0, 10)).
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Uniform over the integers `lo..=hi` (e.g. a priority or category code).
    /// Unlike the continuous model, point predicates carry real mass here, so
    /// `P(X <= c)` and `P(X < c)` genuinely differ.
    UniformInt {
        /// Smallest value (inclusive).
        lo: i64,
        /// Largest value (inclusive).
        hi: i64,
    },
}

impl AttributeModel {
    /// `P(X < c)` under this model.
    fn prob_lt(&self, c: f64) -> f64 {
        match *self {
            AttributeModel::Uniform { lo, hi } => ((c - lo) / (hi - lo)).clamp(0.0, 1.0),
            AttributeModel::UniformInt { lo, hi } => {
                // Largest integer strictly below c.
                let k = if c.fract() == 0.0 { c - 1.0 } else { c.floor() };
                Self::uniform_int_cdf(lo, hi, k)
            }
        }
    }

    /// `P(X <= c)` under this model. Coincides with [`prob_lt`](Self::prob_lt)
    /// only for continuous models; discrete models put mass on the boundary.
    fn prob_le(&self, c: f64) -> f64 {
        match *self {
            AttributeModel::Uniform { .. } => self.prob_lt(c),
            AttributeModel::UniformInt { lo, hi } => Self::uniform_int_cdf(lo, hi, c.floor()),
        }
    }

    /// `P(X = c)` under this model; zero for continuous models.
    fn prob_eq(&self, c: f64) -> f64 {
        match *self {
            AttributeModel::Uniform { .. } => 0.0,
            AttributeModel::UniformInt { lo, hi } => {
                let in_support = c.fract() == 0.0 && c >= lo as f64 && c <= hi as f64;
                if in_support {
                    1.0 / (hi - lo + 1) as f64
                } else {
                    0.0
                }
            }
        }
    }

    /// Fraction of the integers `lo..=hi` that are `<= k`.
    fn uniform_int_cdf(lo: i64, hi: i64, k: f64) -> f64 {
        let n = (hi - lo + 1) as f64;
        ((k - lo as f64 + 1.0) / n).clamp(0.0, 1.0)
    }
}

/// A collection of per-attribute models used to estimate filter selectivity.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SelectivityModel {
    attributes: HashMap<String, AttributeModel>,
}

impl SelectivityModel {
    /// Creates an empty model (unknown attributes get selectivity 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// The model of the paper's workload: `A1`, `A2` uniform on `(0, 10)`.
    pub fn paper_workload() -> Self {
        let mut m = SelectivityModel::new();
        m.set_attribute("A1", AttributeModel::Uniform { lo: 0.0, hi: 10.0 });
        m.set_attribute("A2", AttributeModel::Uniform { lo: 0.0, hi: 10.0 });
        m
    }

    /// Declares the distribution of an attribute.
    pub fn set_attribute(&mut self, name: impl Into<String>, model: AttributeModel) {
        self.attributes.insert(name.into(), model);
    }

    /// Estimated probability that a random message satisfies the predicate.
    /// Unknown attributes and non-numeric predicates yield the conservative
    /// estimate 1.0 (no reduction in selectivity).
    pub fn predicate_selectivity(&self, pred: &Predicate) -> f64 {
        let Some(model) = self.attributes.get(pred.attr.as_str()) else {
            return 1.0;
        };
        let Some(c) = pred.value.as_f64() else {
            return 1.0;
        };
        match pred.op {
            CompOp::Lt => model.prob_lt(c),
            CompOp::Le => model.prob_le(c),
            CompOp::Gt => 1.0 - model.prob_le(c),
            CompOp::Ge => 1.0 - model.prob_lt(c),
            // Point predicates have measure zero under continuous models but
            // genuine mass under discrete ones; ask the model rather than
            // hard-coding the continuous answer.
            CompOp::Eq => model.prob_eq(c),
            CompOp::Ne => 1.0 - model.prob_eq(c),
        }
    }

    /// Estimated probability that a random message matches the whole filter,
    /// assuming attribute independence (the paper's workload is independent).
    pub fn filter_selectivity(&self, filter: &Filter) -> f64 {
        filter
            .predicates()
            .iter()
            .map(|p| self.predicate_selectivity(p))
            .product()
    }

    /// Estimated average fraction of a subscription population that a random
    /// message matches.
    pub fn population_selectivity<'a>(&self, filters: impl IntoIterator<Item = &'a Filter>) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for f in filters {
            total += self.filter_selectivity(f);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_predicate_selectivity() {
        let m = SelectivityModel::paper_workload();
        assert!((m.predicate_selectivity(&Predicate::lt("A1", 5.0)) - 0.5).abs() < 1e-12);
        assert!((m.predicate_selectivity(&Predicate::lt("A1", 2.5)) - 0.25).abs() < 1e-12);
        assert!((m.predicate_selectivity(&Predicate::gt("A1", 7.5)) - 0.25).abs() < 1e-12);
        assert!((m.predicate_selectivity(&Predicate::ge("A2", 0.0)) - 1.0).abs() < 1e-12);
        assert_eq!(m.predicate_selectivity(&Predicate::eq("A1", 5.0)), 0.0);
        assert_eq!(m.predicate_selectivity(&Predicate::ne("A1", 5.0)), 1.0);
        // Out-of-range constants clamp.
        assert_eq!(m.predicate_selectivity(&Predicate::lt("A1", 20.0)), 1.0);
        assert_eq!(m.predicate_selectivity(&Predicate::lt("A1", -1.0)), 0.0);
    }

    #[test]
    fn discrete_le_differs_from_lt() {
        // Regression: prob_le used to be a blind alias of prob_lt, which is
        // wrong for any model with point mass. With X uniform on {0..=9}:
        //   P(X < 5)  = 5/10,  P(X <= 5) = 6/10,  P(X = 5) = 1/10.
        let mut m = SelectivityModel::new();
        m.set_attribute("prio", AttributeModel::UniformInt { lo: 0, hi: 9 });
        assert!((m.predicate_selectivity(&Predicate::lt("prio", 5.0)) - 0.5).abs() < 1e-12);
        assert!((m.predicate_selectivity(&Predicate::le("prio", 5.0)) - 0.6).abs() < 1e-12);
        assert!((m.predicate_selectivity(&Predicate::eq("prio", 5.0)) - 0.1).abs() < 1e-12);
        assert!((m.predicate_selectivity(&Predicate::ne("prio", 5.0)) - 0.9).abs() < 1e-12);
        // Gt/Ge complement Le/Lt respectively.
        assert!((m.predicate_selectivity(&Predicate::gt("prio", 5.0)) - 0.4).abs() < 1e-12);
        assert!((m.predicate_selectivity(&Predicate::ge("prio", 5.0)) - 0.5).abs() < 1e-12);
        // Non-integer and out-of-support constants.
        assert!((m.predicate_selectivity(&Predicate::le("prio", 4.5)) - 0.5).abs() < 1e-12);
        assert_eq!(m.predicate_selectivity(&Predicate::eq("prio", 4.5)), 0.0);
        assert_eq!(m.predicate_selectivity(&Predicate::eq("prio", 42.0)), 0.0);
        assert_eq!(m.predicate_selectivity(&Predicate::le("prio", 9.0)), 1.0);
        assert_eq!(m.predicate_selectivity(&Predicate::lt("prio", 0.0)), 0.0);
        // The continuous model keeps its old behaviour: Le == Lt, Eq == 0.
        let paper = SelectivityModel::paper_workload();
        assert_eq!(
            paper.predicate_selectivity(&Predicate::le("A1", 5.0)),
            paper.predicate_selectivity(&Predicate::lt("A1", 5.0)),
        );
    }

    #[test]
    fn unknown_attribute_is_conservative() {
        let m = SelectivityModel::paper_workload();
        assert_eq!(m.predicate_selectivity(&Predicate::lt("A9", 1.0)), 1.0);
        assert_eq!(m.predicate_selectivity(&Predicate::eq("sym", "ACME")), 1.0);
    }

    #[test]
    fn filter_selectivity_is_product() {
        let m = SelectivityModel::paper_workload();
        let f = Filter::paper_conjunction(5.0, 5.0);
        assert!((m.filter_selectivity(&f) - 0.25).abs() < 1e-12);
        assert_eq!(m.filter_selectivity(&Filter::match_all()), 1.0);
    }

    #[test]
    fn expected_paper_population_selectivity_is_one_quarter() {
        // E[P(A1 < X1)] with X1 ~ U(0,10) is 1/2; two independent attributes -> 1/4.
        let m = SelectivityModel::paper_workload();
        // Deterministic grid over threshold space approximates the expectation.
        let mut filters = Vec::new();
        let steps = 40;
        for i in 0..steps {
            for j in 0..steps {
                let x1 = (i as f64 + 0.5) * 10.0 / steps as f64;
                let x2 = (j as f64 + 0.5) * 10.0 / steps as f64;
                filters.push(Filter::paper_conjunction(x1, x2));
            }
        }
        let avg = m.population_selectivity(filters.iter());
        assert!((avg - 0.25).abs() < 0.01, "avg = {avg}");
    }

    #[test]
    fn empty_population() {
        let m = SelectivityModel::paper_workload();
        assert_eq!(m.population_selectivity(std::iter::empty()), 0.0);
    }
}
