//! A small recursive-descent parser for the textual filter syntax.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr     := or_expr
//! or_expr  := and_expr ( "||" and_expr )*
//! and_expr := unary ( "&&" unary )*
//! unary    := "!" unary | "(" expr ")" | predicate | "true" | "false"
//! predicate:= IDENT OP literal
//! OP       := "<" | "<=" | ">" | ">=" | "==" | "!="
//! literal  := NUMBER | STRING | "true" | "false"
//! ```
//!
//! Examples: `A1 < 5 && A2 < 2`, `severity >= 3 || road == "M25"`.

use crate::filter::FilterExpr;
use crate::predicate::{CompOp, Predicate};
use bdps_types::error::{BdpsError, Result};
use bdps_types::value::AttrValue;

/// Parses a textual filter expression.
pub fn parse_filter(input: &str) -> Result<FilterExpr> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.parse_or()?;
    if parser.pos != parser.tokens.len() {
        return Err(BdpsError::FilterParse(format!(
            "unexpected trailing input at token {:?}",
            parser.tokens[parser.pos]
        )));
    }
    Ok(expr)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Op(CompOp),
    AndAnd,
    OrOr,
    Not,
    LParen,
    RParen,
    True,
    False,
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(BdpsError::FilterParse("expected '&&'".into()));
                }
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(BdpsError::FilterParse("expected '||'".into()));
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Op(CompOp::Le));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CompOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Op(CompOp::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CompOp::Gt));
                    i += 1;
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Op(CompOp::Eq));
                    i += 2;
                } else {
                    return Err(BdpsError::FilterParse(
                        "single '=' is not an operator, use '=='".into(),
                    ));
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Op(CompOp::Ne));
                    i += 2;
                } else {
                    tokens.push(Token::Not);
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(BdpsError::FilterParse("unterminated string".into())),
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '-' || chars[i] == '+')
                            && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value = text.parse::<f64>().map_err(|_| {
                    BdpsError::FilterParse(format!("invalid number literal '{text}'"))
                })?;
                tokens.push(Token::Number(value));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                match word.as_str() {
                    "true" => tokens.push(Token::True),
                    "false" => tokens.push(Token::False),
                    _ => tokens.push(Token::Ident(word)),
                }
            }
            other => {
                return Err(BdpsError::FilterParse(format!(
                    "unexpected character '{other}'"
                )))
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_or(&mut self) -> Result<FilterExpr> {
        let mut terms = vec![self.parse_and()?];
        while self.peek() == Some(&Token::OrOr) {
            self.bump();
            terms.push(self.parse_and()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            FilterExpr::Or(terms)
        })
    }

    fn parse_and(&mut self) -> Result<FilterExpr> {
        let mut terms = vec![self.parse_unary()?];
        while self.peek() == Some(&Token::AndAnd) {
            self.bump();
            terms.push(self.parse_unary()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            FilterExpr::And(terms)
        })
    }

    fn parse_unary(&mut self) -> Result<FilterExpr> {
        match self.bump() {
            Some(Token::Not) => Ok(FilterExpr::not(self.parse_unary()?)),
            Some(Token::LParen) => {
                let inner = self.parse_or()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(BdpsError::FilterParse("expected ')'".into())),
                }
            }
            Some(Token::True) => Ok(FilterExpr::True),
            Some(Token::False) => Ok(FilterExpr::False),
            Some(Token::Ident(name)) => {
                let op = match self.bump() {
                    Some(Token::Op(op)) => op,
                    other => {
                        return Err(BdpsError::FilterParse(format!(
                            "expected comparison operator after '{name}', found {other:?}"
                        )))
                    }
                };
                let value: AttrValue = match self.bump() {
                    Some(Token::Number(n)) => AttrValue::Float(n),
                    Some(Token::Str(s)) => AttrValue::Str(s),
                    Some(Token::True) => AttrValue::Bool(true),
                    Some(Token::False) => AttrValue::Bool(false),
                    other => {
                        return Err(BdpsError::FilterParse(format!(
                            "expected literal after operator, found {other:?}"
                        )))
                    }
                };
                Ok(FilterExpr::Pred(Predicate::new(name.as_str(), op, value)))
            }
            other => Err(BdpsError::FilterParse(format!(
                "unexpected token {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdps_types::message::MessageHead;

    fn head(pairs: &[(&str, f64)]) -> MessageHead {
        let mut h = MessageHead::new();
        for (n, v) in pairs {
            h.set(*n, *v);
        }
        h
    }

    #[test]
    fn parses_paper_style_conjunction() {
        let e = parse_filter("A1 < 5 && A2 < 2").unwrap();
        assert!(e.matches(&head(&[("A1", 4.0), ("A2", 1.0)])));
        assert!(!e.matches(&head(&[("A1", 6.0), ("A2", 1.0)])));
        let dnf = e.to_dnf();
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf[0].len(), 2);
    }

    #[test]
    fn parses_all_operators() {
        for (text, a1, expect) in [
            ("A1 < 3", 2.0, true),
            ("A1 <= 2", 2.0, true),
            ("A1 > 3", 2.0, false),
            ("A1 >= 2", 2.0, true),
            ("A1 == 2", 2.0, true),
            ("A1 != 2", 2.0, false),
        ] {
            let e = parse_filter(text).unwrap();
            assert_eq!(e.matches(&head(&[("A1", a1)])), expect, "{text}");
        }
    }

    #[test]
    fn parses_strings_and_bools() {
        let e = parse_filter("road == \"M25\" && closed == true").unwrap();
        let mut h = MessageHead::new();
        h.set("road", "M25").set("closed", true);
        assert!(e.matches(&h));
        h.set("closed", false);
        assert!(!e.matches(&h));
    }

    #[test]
    fn parses_nested_or_and_not() {
        let e = parse_filter("!(A1 < 2) && (A2 < 1 || A2 > 9)").unwrap();
        assert!(e.matches(&head(&[("A1", 5.0), ("A2", 0.5)])));
        assert!(e.matches(&head(&[("A1", 5.0), ("A2", 9.5)])));
        assert!(!e.matches(&head(&[("A1", 1.0), ("A2", 0.5)])));
        assert!(!e.matches(&head(&[("A1", 5.0), ("A2", 5.0)])));
    }

    #[test]
    fn parses_numbers_with_sign_and_exponent() {
        let e = parse_filter("delta >= -1.5e-2").unwrap();
        assert!(e.matches(&head(&[("delta", 0.0)])));
        assert!(!e.matches(&head(&[("delta", -1.0)])));
    }

    #[test]
    fn operator_precedence_and_binds_tighter_than_or() {
        let e = parse_filter("A1 < 1 || A1 > 9 && A2 > 5").unwrap();
        // Parsed as A1<1 || (A1>9 && A2>5).
        assert!(e.matches(&head(&[("A1", 0.5), ("A2", 0.0)])));
        assert!(e.matches(&head(&[("A1", 9.5), ("A2", 6.0)])));
        assert!(!e.matches(&head(&[("A1", 9.5), ("A2", 1.0)])));
    }

    #[test]
    fn true_false_literals() {
        assert!(parse_filter("true").unwrap().matches(&MessageHead::new()));
        assert!(!parse_filter("false").unwrap().matches(&MessageHead::new()));
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(parse_filter("A1 <").is_err());
        assert!(parse_filter("A1 = 3").is_err());
        assert!(parse_filter("A1 < 3 &&").is_err());
        assert!(parse_filter("(A1 < 3").is_err());
        assert!(parse_filter("A1 < 3 extra").is_err());
        assert!(parse_filter("\"unterminated").is_err());
        assert!(parse_filter("A1 # 3").is_err());
        assert!(parse_filter("A1 & 3").is_err());
        assert!(parse_filter("A1 | 3").is_err());
        assert!(parse_filter("").is_err());
        assert!(parse_filter("A1 < 1.2.3").is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_filter("A1<5&&A2<2").unwrap();
        let b = parse_filter("  A1  <  5  &&  A2  <  2  ").unwrap();
        assert_eq!(a, b);
    }
}
