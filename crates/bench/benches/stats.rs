//! Benchmarks the statistical primitives the scheduler evaluates per message.

use bdps_stats::erf::erf;
use bdps_stats::normal::Normal;
use bdps_stats::rng::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_stats(c: &mut Criterion) {
    let n = Normal::new(75.0, 20.0);
    c.bench_function("erf", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 0.001;
            std::hint::black_box(erf(x % 3.0))
        })
    });
    c.bench_function("normal_cdf", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 0.37;
            std::hint::black_box(n.cdf(x % 200.0))
        })
    });
    c.bench_function("normal_sample", |b| {
        let mut rng = SimRng::seed_from(7);
        b.iter(|| std::hint::black_box(n.sample(&mut rng)))
    });
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
