//! Benchmarks the content-based matching index against brute force.

use bdps_filter::filter::Filter;
use bdps_filter::index::MatchIndex;
use bdps_stats::rng::SimRng;
use bdps_types::id::SubscriptionId;
use bdps_types::message::MessageHead;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn build_index(n: usize, rng: &mut SimRng) -> MatchIndex {
    let mut idx = MatchIndex::new();
    for i in 0..n {
        idx.insert(
            SubscriptionId::new(i as u32),
            Filter::paper_conjunction(rng.uniform_range(0.0, 10.0), rng.uniform_range(0.0, 10.0)),
        );
    }
    idx
}

fn heads(n: usize, rng: &mut SimRng) -> Vec<MessageHead> {
    (0..n)
        .map(|_| {
            let mut h = MessageHead::new();
            h.set("A1", rng.uniform_range(0.0, 10.0))
                .set("A2", rng.uniform_range(0.0, 10.0));
            h
        })
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for &n in &[160usize, 1_000, 10_000] {
        let mut rng = SimRng::seed_from(1);
        let idx = build_index(n, &mut rng);
        let hs = heads(64, &mut rng);
        group.bench_with_input(BenchmarkId::new("counting_index", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % hs.len();
                std::hint::black_box(idx.matching(&hs[i]))
            })
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % hs.len();
                std::hint::black_box(idx.matching_bruteforce(&hs[i]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
