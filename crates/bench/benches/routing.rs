//! Benchmarks routing-table and subscription-table construction on the paper topology.

use bdps_filter::filter::Filter;
use bdps_filter::subscription::Subscription;
use bdps_overlay::routing::Routing;
use bdps_overlay::subtable::SubscriptionTable;
use bdps_overlay::topology::Topology;
use bdps_stats::rng::SimRng;
use bdps_types::id::{BrokerId, SubscriptionId};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_routing(c: &mut Criterion) {
    let topo = Topology::paper_topology(&mut SimRng::seed_from(3));
    c.bench_function("routing_compute_paper_topology", |b| {
        b.iter(|| std::hint::black_box(Routing::compute(&topo.graph)))
    });

    let routing = Routing::compute(&topo.graph);
    let mut rng = SimRng::seed_from(4);
    let subs: Vec<(Subscription, BrokerId)> = topo
        .subscribers
        .iter()
        .enumerate()
        .map(|(i, (s, b))| {
            (
                Subscription::best_effort(
                    SubscriptionId::new(i as u32),
                    *s,
                    Filter::paper_conjunction(
                        rng.uniform_range(0.0, 10.0),
                        rng.uniform_range(0.0, 10.0),
                    ),
                ),
                *b,
            )
        })
        .collect();
    c.bench_function("subscription_tables_all_brokers", |b| {
        b.iter(|| std::hint::black_box(SubscriptionTable::build_all(&topo.graph, &routing, &subs)))
    });
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
