//! Benchmarks strategy selection cost as a function of output-queue length.

use bdps_core::config::{SchedulerConfig, StrategyKind};
use bdps_core::queue::{MatchedTarget, OutputQueue, QueuedMessage};
use bdps_overlay::pathstats::PathStats;
use bdps_stats::normal::Normal;
use bdps_stats::rng::SimRng;
use bdps_types::id::{BrokerId, LinkId, MessageId, PublisherId, SubscriberId, SubscriptionId};
use bdps_types::message::Message;
use bdps_types::money::Price;
use bdps_types::time::{Duration, SimTime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn make_queue(len: usize, targets_per_msg: usize, rng: &mut SimRng) -> OutputQueue {
    let mut q = OutputQueue::new(BrokerId::new(1), LinkId::new(0), 75.0);
    for i in 0..len {
        let message = Arc::new(
            Message::builder(MessageId::new(i as u64), PublisherId::new(0))
                .publish_time(SimTime::ZERO)
                .size_kb(50.0)
                .build(),
        );
        let targets = (0..targets_per_msg)
            .map(|t| MatchedTarget {
                subscription: SubscriptionId::new(t as u32),
                subscriber: SubscriberId::new(t as u32),
                price: Price::from_units(1 + (t % 3) as i64),
                allowed_delay: Duration::from_secs(10 + (t % 3) as u64 * 25),
                stats: PathStats::from_links([
                    &Normal::new(rng.uniform_range(50.0, 100.0), 20.0),
                    &Normal::new(rng.uniform_range(50.0, 100.0), 20.0),
                ]),
            })
            .collect();
        q.push(QueuedMessage {
            message,
            targets,
            enqueue_time: SimTime::ZERO,
        });
    }
    q
}

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pop_next");
    for &len in &[16usize, 64, 256] {
        for strategy in [
            StrategyKind::Fifo,
            StrategyKind::MaxEb,
            StrategyKind::MaxEbpc,
        ] {
            let cfg = SchedulerConfig::paper(strategy);
            group.bench_with_input(BenchmarkId::new(strategy.label(), len), &len, |b, &len| {
                let mut rng = SimRng::seed_from(5);
                b.iter_batched(
                    || make_queue(len, 8, &mut rng),
                    |mut q| std::hint::black_box(q.pop_next(SimTime::from_secs(3), &cfg)),
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
