//! Benchmarks end-to-end simulation throughput on a scaled-down topology.

use bdps_core::config::StrategyKind;
use bdps_overlay::topology::LayeredMeshConfig;
use bdps_sim::runner::{run, SimulationConfig, TopologySpec};
use bdps_sim::workload::WorkloadConfig;
use bdps_types::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_5min_small_mesh");
    group.sample_size(10);
    for strategy in [
        StrategyKind::Fifo,
        StrategyKind::MaxEb,
        StrategyKind::MaxEbpc,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                let workload =
                    WorkloadConfig::paper_ssd(10.0).with_duration(Duration::from_secs(300));
                let mut config = SimulationConfig::paper(strategy, workload, 11);
                config.topology = TopologySpec::LayeredMesh(LayeredMeshConfig::small());
                b.iter(|| std::hint::black_box(run(&config)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
