//! Compares the three dispatch styles for scoring a large output queue:
//!
//! * `enum` — a closed `match` over [`StrategyKind`] calling the metric
//!   functions directly (how the pre-trait scheduler worked);
//! * `trait_object` — one virtual `priority` call per queued message through
//!   a [`StrategyHandle`];
//! * `batch` — a single virtual `score_all` call scoring the whole queue
//!   (the hook the output queue uses on the hot path).
//!
//! Run with `cargo bench -p bdps-bench --bench dispatch`; the queue holds
//! 10 000 messages with 4 targets each.

use bdps_core::config::{SchedulerConfig, StrategyKind};
use bdps_core::metrics;
use bdps_core::queue::{MatchedTarget, QueuedMessage};
use bdps_core::strategy::{ScheduleContext, StrategyHandle};
use bdps_overlay::pathstats::PathStats;
use bdps_stats::normal::Normal;
use bdps_stats::rng::SimRng;
use bdps_types::id::{MessageId, PublisherId, SubscriberId, SubscriptionId};
use bdps_types::message::Message;
use bdps_types::money::Price;
use bdps_types::time::{Duration, SimTime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

const QUEUE_LEN: usize = 10_000;
const TARGETS_PER_MSG: usize = 4;

fn make_items(rng: &mut SimRng) -> Vec<QueuedMessage> {
    (0..QUEUE_LEN)
        .map(|i| {
            let message = Arc::new(
                Message::builder(MessageId::new(i as u64), PublisherId::new(0))
                    .publish_time(SimTime::ZERO)
                    .size_kb(50.0)
                    .build(),
            );
            let targets = (0..TARGETS_PER_MSG)
                .map(|t| MatchedTarget {
                    subscription: SubscriptionId::new(t as u32),
                    subscriber: SubscriberId::new(t as u32),
                    price: Price::from_units(1 + (t % 3) as i64),
                    allowed_delay: Duration::from_secs(10 + (t % 3) as u64 * 25),
                    stats: PathStats::from_links([
                        &Normal::new(rng.uniform_range(50.0, 100.0), 20.0),
                        &Normal::new(rng.uniform_range(50.0, 100.0), 20.0),
                    ]),
                })
                .collect();
            QueuedMessage {
                message,
                targets,
                enqueue_time: SimTime::from_millis(i as u64),
            }
        })
        .collect()
}

/// The pre-trait closed dispatch, kept here as the baseline under test.
fn enum_priority(kind: StrategyKind, ctx: &ScheduleContext, item: &QueuedMessage) -> f64 {
    match kind {
        StrategyKind::Fifo => -(item.enqueue_time.as_micros() as f64),
        StrategyKind::RemainingLifetime => -item.avg_remaining_lifetime_ms(ctx.now),
        StrategyKind::MaxEb => {
            metrics::expected_benefit(&item.message, &item.targets, ctx.now, ctx.processing_delay)
        }
        StrategyKind::MaxPc => metrics::postponing_cost(
            &item.message,
            &item.targets,
            ctx.now,
            ctx.processing_delay,
            ctx.first_send_estimate_ms,
        ),
        StrategyKind::MaxEbpc => metrics::ebpc(
            &item.message,
            &item.targets,
            ctx.now,
            ctx.processing_delay,
            ctx.first_send_estimate_ms,
            ctx.ebpc_weight,
        ),
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(7);
    let items = make_items(&mut rng);
    let mut group = c.benchmark_group("score_10k");
    group.sample_size(20);
    for kind in [
        StrategyKind::Fifo,
        StrategyKind::MaxEb,
        StrategyKind::MaxEbpc,
    ] {
        let config = SchedulerConfig::paper(kind);
        let ctx = ScheduleContext::new(SimTime::from_secs(3), &config, 50.0 * 75.0);
        let handle: StrategyHandle = kind.resolve();

        group.bench_with_input(
            BenchmarkId::new("enum", kind.label()),
            &items,
            |b, items| {
                b.iter(|| {
                    let mut best = f64::NEG_INFINITY;
                    for item in items {
                        best = best.max(std::hint::black_box(enum_priority(kind, &ctx, item)));
                    }
                    best
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("trait_object", kind.label()),
            &items,
            |b, items| {
                b.iter(|| {
                    let mut best = f64::NEG_INFINITY;
                    for item in items {
                        best = best.max(std::hint::black_box(handle.priority(&ctx, item)));
                    }
                    best
                })
            },
        );

        let mut scores = Vec::with_capacity(QUEUE_LEN);
        group.bench_with_input(
            BenchmarkId::new("batch", kind.label()),
            &items,
            |b, items| {
                b.iter(|| {
                    scores.clear();
                    handle.score_all(&ctx, items, &mut scores);
                    std::hint::black_box(scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
