//! # bdps-bench
//!
//! The experiment harness reproducing the paper's evaluation section plus a
//! set of Criterion micro/macro benchmarks.
//!
//! Each figure of the paper has a binary that regenerates its series:
//!
//! | Binary | Paper artefact |
//! |--------|----------------|
//! | `fig4` | Fig. 4(a) SSD earning vs `r`, Fig. 4(b) PSD delivery rate vs `r` |
//! | `fig5` | Fig. 5(a) SSD earning vs rate, Fig. 5(b) SSD message number vs rate |
//! | `fig6` | Fig. 6(a) PSD delivery rate vs rate, Fig. 6(b) PSD message number vs rate |
//! | `show_topology` | Fig. 3 (the simulated 32-broker network) |
//! | `ablation_epsilon` | effect of the invalid-detection threshold ε |
//! | `ablation_estimation` | effect of bandwidth-estimation error |
//! | `ablation_scheddelay` | multi-seed variance of the headline comparison |
//! | `dynamics` | beyond the paper: strategies under churn, bursts, link failures |
//!
//! By default the binaries run a shortened publication period so that the
//! whole suite finishes in minutes; pass `--full` for the paper's 2-hour
//! runs. The comparison binaries accept `--strategies <a,b,c>` with names
//! resolved through the
//! [`StrategyRegistry`](bdps_core::strategy::StrategyRegistry) (`fifo`,
//! `rl`, `eb`, `pc`, `ebpc`, `composite`, or their display labels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bdps_core::config::StrategyKind;
use bdps_core::strategy::{StrategyHandle, StrategyRegistry};
use bdps_sim::report::{render_markdown_table, SimulationReport};
use bdps_sim::runner::{sweep, SweepCell};
use bdps_sim::scenario::{DynamicScenario, ScenarioRegistry};

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOptions {
    /// Publication period in seconds (the paper uses 7200 s).
    pub duration_secs: u64,
    /// Root RNG seed.
    pub seed: u64,
    /// Worker threads for the sweep.
    pub threads: usize,
    /// Strategy names selected with `--strategies` (resolved through the
    /// [`StrategyRegistry`]); empty means "use the binary's paper default".
    pub strategies: Vec<String>,
    /// Dynamic-scenario names selected with `--scenarios` (resolved through
    /// the [`ScenarioRegistry`]); empty means "use the binary's default set".
    pub scenarios: Vec<String>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            duration_secs: 1_200,
            seed: 20060816,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            strategies: Vec::new(),
            scenarios: Vec::new(),
        }
    }
}

impl ExperimentOptions {
    /// Parses `--full`, `--duration <secs>`, `--seed <n>`, `--threads <n>`
    /// and `--strategies <a,b,c>` from the process arguments; anything else
    /// is ignored.
    pub fn from_args() -> Self {
        let mut opts = ExperimentOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => opts.duration_secs = 7_200,
                "--duration" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.duration_secs = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seed = v;
                        i += 1;
                    }
                }
                "--threads" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.threads = v;
                        i += 1;
                    }
                }
                "--strategies" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.strategies = v
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect();
                        i += 1;
                    }
                }
                "--scenarios" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.scenarios = v
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect();
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// The strategies a comparison binary should run: the names given with
    /// `--strategies`, resolved through the built-in [`StrategyRegistry`],
    /// or `default` when none were selected. Exits with a diagnostic on an
    /// unknown name, listing the registered ones.
    pub fn strategies_or(&self, default: &[StrategyKind]) -> Vec<StrategyHandle> {
        if self.strategies.is_empty() {
            return default.iter().map(|s| s.resolve()).collect();
        }
        let registry = StrategyRegistry::builtin();
        self.strategies
            .iter()
            .map(|name| {
                registry.resolve(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown strategy {name:?}; registered: {}",
                        registry.names().join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    }

    /// The dynamic scenarios a binary should run: the names given with
    /// `--scenarios`, resolved through the built-in [`ScenarioRegistry`],
    /// or `default` when none were selected. Exits with a diagnostic on an
    /// unknown name.
    pub fn scenarios_or(&self, default: &[&str]) -> Vec<DynamicScenario> {
        let registry = ScenarioRegistry::builtin();
        let names: Vec<&str> = if self.scenarios.is_empty() {
            default.to_vec()
        } else {
            self.scenarios.iter().map(|s| s.as_str()).collect()
        };
        names
            .iter()
            .map(|name| {
                registry.resolve(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown scenario {name:?}; registered: {}",
                        registry.names().join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    }

    /// A banner describing the run parameters.
    pub fn banner(&self, title: &str) -> String {
        format!(
            "# {title}\n\npublication period: {} s (paper: 7200 s), seed: {}, threads: {}\n",
            self.duration_secs, self.seed, self.threads
        )
    }
}

/// The publishing rates used on the x-axis of Figs. 5 and 6.
pub const PAPER_RATES: [f64; 6] = [1.0, 3.0, 6.0, 9.0, 12.0, 15.0];

/// The strategies compared in Figs. 5 and 6.
pub const PAPER_STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::MaxEb,
    StrategyKind::MaxPc,
    StrategyKind::Fifo,
    StrategyKind::RemainingLifetime,
];

/// Runs a set of cells and returns the reports keyed by label.
pub fn run_cells(cells: &[SweepCell], opts: &ExperimentOptions) -> Vec<(String, SimulationReport)> {
    sweep(cells, opts.threads)
}

/// Renders a per-strategy series table: one row per x value, one column per strategy.
pub fn series_table(
    x_header: &str,
    x_values: &[String],
    strategy_labels: &[&str],
    value_of: impl Fn(usize, &str) -> String,
) -> String {
    let mut headers = vec![x_header];
    headers.extend_from_slice(strategy_labels);
    let rows: Vec<Vec<String>> = x_values
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let mut row = vec![x.clone()];
            for s in strategy_labels {
                row.push(value_of(i, s));
            }
            row
        })
        .collect();
    render_markdown_table(&headers, &rows)
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sane() {
        let o = ExperimentOptions::default();
        assert!(o.duration_secs >= 600);
        assert!(o.threads >= 1);
        assert!(o.banner("Fig. 5").contains("Fig. 5"));
        assert!(o.strategies.is_empty());
    }

    #[test]
    fn strategy_selection_defaults_and_resolves() {
        let defaults = ExperimentOptions::default().strategies_or(&PAPER_STRATEGIES);
        assert_eq!(defaults.len(), PAPER_STRATEGIES.len());
        assert_eq!(defaults[0].label(), "EB");
        let picked = ExperimentOptions {
            strategies: vec!["fifo".into(), "composite".into()],
            ..ExperimentOptions::default()
        }
        .strategies_or(&PAPER_STRATEGIES);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].label(), "FIFO");
        assert_eq!(picked[1].label(), "COMPOSITE");
    }

    #[test]
    fn scenario_selection_defaults_and_resolves() {
        let defaults = ExperimentOptions::default().scenarios_or(&["static", "chaos"]);
        assert_eq!(defaults.len(), 2);
        assert_eq!(defaults[0].name, "static");
        assert_eq!(defaults[1].name, "chaos");
        let picked = ExperimentOptions {
            scenarios: vec!["churn".into(), "flash-crowd".into()],
            ..ExperimentOptions::default()
        }
        .scenarios_or(&["static"]);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].name, "churn");
        assert_eq!(picked[1].name, "flash-crowd");
    }

    #[test]
    fn series_table_layout() {
        let t = series_table(
            "rate",
            &["3".into(), "6".into()],
            &["EB", "FIFO"],
            |i, s| format!("{i}-{s}"),
        );
        assert!(t.contains("| rate | EB | FIFO |"));
        assert!(t.contains("| 3 | 0-EB | 0-FIFO |"));
        assert!(t.contains("| 6 | 1-EB | 1-FIFO |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(PAPER_RATES.len(), 6);
        assert_eq!(PAPER_STRATEGIES.len(), 4);
    }
}
