//! # bdps-bench
//!
//! The experiment harness reproducing the paper's evaluation section plus a
//! set of Criterion micro/macro benchmarks.
//!
//! Each figure of the paper has a binary that regenerates its series:
//!
//! | Binary | Paper artefact |
//! |--------|----------------|
//! | `fig4` | Fig. 4(a) SSD earning vs `r`, Fig. 4(b) PSD delivery rate vs `r` |
//! | `fig5` | Fig. 5(a) SSD earning vs rate, Fig. 5(b) SSD message number vs rate |
//! | `fig6` | Fig. 6(a) PSD delivery rate vs rate, Fig. 6(b) PSD message number vs rate |
//! | `show_topology` | Fig. 3 (the simulated 32-broker network) |
//! | `ablation_epsilon` | effect of the invalid-detection threshold ε |
//! | `ablation_estimation` | effect of bandwidth-estimation error |
//! | `ablation_scheddelay` | multi-seed variance of the headline comparison |
//! | `dynamics` | beyond the paper: strategies under churn, bursts, link failures |
//! | `scale` | beyond the paper: engine events/sec from 160 to 10⁵ subscribers, heap vs calendar scheduler, `BENCH_scale.json` for CI |
//!
//! By default the binaries run a shortened publication period so that the
//! whole suite finishes in minutes; pass `--full` for the paper's 2-hour
//! runs. The comparison binaries accept `--strategies <a,b,c>` with names
//! resolved through the [`StrategyRegistry`] (`fifo`, `rl`, `eb`, `pc`,
//! `ebpc`, `composite`, or their display labels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bdps_core::config::StrategyKind;
use bdps_core::strategy::{StrategyHandle, StrategyRegistry};
use bdps_net::linkmodel::{LinkModelKind, LinkModelRegistry};
use bdps_sim::report::{render_markdown_table, SimulationReport};
use bdps_sim::runner::{sweep, SweepCell};
use bdps_sim::scenario::{DynamicScenario, ScenarioRegistry};

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOptions {
    /// Publication period in seconds (the paper uses 7200 s).
    pub duration_secs: u64,
    /// Root RNG seed.
    pub seed: u64,
    /// Worker threads for the sweep.
    pub threads: usize,
    /// Strategy names selected with `--strategies` (resolved through the
    /// [`StrategyRegistry`]); empty means "use the binary's paper default".
    pub strategies: Vec<String>,
    /// Dynamic-scenario names selected with `--scenarios` (resolved through
    /// the [`ScenarioRegistry`]); empty means "use the binary's default set".
    pub scenarios: Vec<String>,
    /// Link-model names selected with `--link-model` (resolved through the
    /// [`LinkModelRegistry`]); empty means "use the binary's default"
    /// (usually the paper's constant-delay model).
    pub link_models: Vec<String>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            duration_secs: 1_200,
            seed: 20060816,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            strategies: Vec::new(),
            scenarios: Vec::new(),
            link_models: Vec::new(),
        }
    }
}

/// Cursor over a binary's argument list, shared by every experiment binary
/// so flag handling (and flag *rejection*) stays uniform.
#[derive(Debug)]
pub struct ArgParser {
    args: Vec<String>,
    pos: usize,
}

impl ArgParser {
    /// A parser over the process arguments (program name skipped).
    pub fn from_env() -> Self {
        ArgParser::new(std::env::args().skip(1).collect())
    }

    /// A parser over an explicit argument list.
    pub fn new(args: Vec<String>) -> Self {
        ArgParser { args, pos: 0 }
    }

    /// The next flag, or `None` when the arguments are exhausted.
    pub fn next_flag(&mut self) -> Option<String> {
        let arg = self.args.get(self.pos)?.clone();
        self.pos += 1;
        Some(arg)
    }

    /// The value following a flag, or a diagnostic naming the flag.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        let value = self
            .args
            .get(self.pos)
            .ok_or_else(|| format!("{flag} requires a value"))?
            .clone();
        self.pos += 1;
        Ok(value)
    }

    /// Like [`value`](Self::value), parsed into any `FromStr` type.
    pub fn parse_value<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|_| format!("{flag} got invalid value {raw:?}"))
    }

    /// A comma-separated list value (`a,b,c`), trimmed, empties dropped.
    pub fn list_value(&mut self, flag: &str) -> Result<Vec<String>, String> {
        Ok(self
            .value(flag)?
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect())
    }
}

/// The flags every experiment binary accepts (kept next to
/// [`ExperimentOptions::apply`] so usage strings stay truthful).
pub const COMMON_FLAGS_HELP: &str = "--full | --duration <secs> | --seed <n> | --threads <n> \
     | --strategies <a,b,c> | --scenarios <a,b,c> | --link-model <a,b>";

impl ExperimentOptions {
    /// Parses the shared flags (`--full`, `--duration <secs>`, `--seed <n>`,
    /// `--threads <n>`, `--strategies <a,b,c>`, `--scenarios <a,b,c>`) from
    /// the process arguments. An unknown flag is a **hard error** listing
    /// the accepted ones — a typo like `--scenario` used to be silently
    /// ignored, which meant a bench quietly ran its defaults.
    pub fn from_args() -> Self {
        let mut parser = ArgParser::from_env();
        let mut opts = ExperimentOptions::default();
        let result = (|| -> Result<(), String> {
            while let Some(flag) = parser.next_flag() {
                if !opts.apply(&flag, &mut parser)? {
                    return Err(format!("unknown flag {flag:?}; known: {COMMON_FLAGS_HELP}"));
                }
            }
            Ok(())
        })();
        if let Err(message) = result {
            eprintln!("{message}");
            std::process::exit(2);
        }
        opts
    }

    /// Tries to consume one shared flag; returns `Ok(false)` when the flag
    /// is not one of the shared set (so the binary can try its own flags
    /// before rejecting). Binary-specific parsers call this first and fall
    /// through to their own `match`.
    pub fn apply(&mut self, flag: &str, parser: &mut ArgParser) -> Result<bool, String> {
        match flag {
            "--full" => self.duration_secs = 7_200,
            "--duration" => self.duration_secs = parser.parse_value(flag)?,
            "--seed" => self.seed = parser.parse_value(flag)?,
            "--threads" => self.threads = parser.parse_value(flag)?,
            "--strategies" => self.strategies = parser.list_value(flag)?,
            "--scenarios" => self.scenarios = parser.list_value(flag)?,
            "--link-model" => self.link_models = parser.list_value(flag)?,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The strategies a comparison binary should run: the names given with
    /// `--strategies`, resolved through the built-in [`StrategyRegistry`],
    /// or `default` when none were selected. Exits with a diagnostic on an
    /// unknown name, listing the registered ones.
    pub fn strategies_or(&self, default: &[StrategyKind]) -> Vec<StrategyHandle> {
        if self.strategies.is_empty() {
            return default.iter().map(|s| s.resolve()).collect();
        }
        let registry = StrategyRegistry::builtin();
        self.strategies
            .iter()
            .map(|name| {
                registry.resolve(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown strategy {name:?}; registered: {}",
                        registry.names().join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    }

    /// The dynamic scenarios a binary should run: the names given with
    /// `--scenarios`, resolved through the built-in [`ScenarioRegistry`],
    /// or `default` when none were selected. Exits with a diagnostic on an
    /// unknown name.
    pub fn scenarios_or(&self, default: &[&str]) -> Vec<DynamicScenario> {
        let registry = ScenarioRegistry::builtin();
        let names: Vec<&str> = if self.scenarios.is_empty() {
            default.to_vec()
        } else {
            self.scenarios.iter().map(|s| s.as_str()).collect()
        };
        names
            .iter()
            .map(|name| {
                registry.resolve(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown scenario {name:?}; registered: {}",
                        registry.names().join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    }

    /// The link models a binary should run: the names given with
    /// `--link-model`, resolved through the built-in [`LinkModelRegistry`],
    /// or `default` when none were selected. Exits with a diagnostic on an
    /// unknown name, listing the registered ones — never silently defaults.
    pub fn link_models_or(&self, default: &[LinkModelKind]) -> Vec<LinkModelKind> {
        if self.link_models.is_empty() {
            return default.to_vec();
        }
        let registry = LinkModelRegistry::builtin();
        self.link_models
            .iter()
            .map(|name| {
                registry.resolve(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown link model {name:?}; registered: {}",
                        registry.names().join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    }

    /// A banner describing the run parameters.
    pub fn banner(&self, title: &str) -> String {
        format!(
            "# {title}\n\npublication period: {} s (paper: 7200 s), seed: {}, threads: {}\n",
            self.duration_secs, self.seed, self.threads
        )
    }
}

/// The publishing rates used on the x-axis of Figs. 5 and 6.
pub const PAPER_RATES: [f64; 6] = [1.0, 3.0, 6.0, 9.0, 12.0, 15.0];

/// The strategies compared in Figs. 5 and 6.
pub const PAPER_STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::MaxEb,
    StrategyKind::MaxPc,
    StrategyKind::Fifo,
    StrategyKind::RemainingLifetime,
];

/// Runs a set of cells and returns the reports keyed by label.
pub fn run_cells(cells: &[SweepCell], opts: &ExperimentOptions) -> Vec<(String, SimulationReport)> {
    sweep(cells, opts.threads)
}

/// Renders a per-strategy series table: one row per x value, one column per strategy.
pub fn series_table(
    x_header: &str,
    x_values: &[String],
    strategy_labels: &[&str],
    value_of: impl Fn(usize, &str) -> String,
) -> String {
    let mut headers = vec![x_header];
    headers.extend_from_slice(strategy_labels);
    let rows: Vec<Vec<String>> = x_values
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let mut row = vec![x.clone()];
            for s in strategy_labels {
                row.push(value_of(i, s));
            }
            row
        })
        .collect();
    render_markdown_table(&headers, &rows)
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sane() {
        let o = ExperimentOptions::default();
        assert!(o.duration_secs >= 600);
        assert!(o.threads >= 1);
        assert!(o.banner("Fig. 5").contains("Fig. 5"));
        assert!(o.strategies.is_empty());
    }

    #[test]
    fn strategy_selection_defaults_and_resolves() {
        let defaults = ExperimentOptions::default().strategies_or(&PAPER_STRATEGIES);
        assert_eq!(defaults.len(), PAPER_STRATEGIES.len());
        assert_eq!(defaults[0].label(), "EB");
        let picked = ExperimentOptions {
            strategies: vec!["fifo".into(), "composite".into()],
            ..ExperimentOptions::default()
        }
        .strategies_or(&PAPER_STRATEGIES);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].label(), "FIFO");
        assert_eq!(picked[1].label(), "COMPOSITE");
    }

    #[test]
    fn scenario_selection_defaults_and_resolves() {
        let defaults = ExperimentOptions::default().scenarios_or(&["static", "chaos"]);
        assert_eq!(defaults.len(), 2);
        assert_eq!(defaults[0].name, "static");
        assert_eq!(defaults[1].name, "chaos");
        let picked = ExperimentOptions {
            scenarios: vec!["churn".into(), "flash-crowd".into()],
            ..ExperimentOptions::default()
        }
        .scenarios_or(&["static"]);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].name, "churn");
        assert_eq!(picked[1].name, "flash-crowd");
    }

    #[test]
    fn link_model_selection_defaults_and_resolves() {
        let defaults = ExperimentOptions::default().link_models_or(&[LinkModelKind::Constant]);
        assert_eq!(defaults, vec![LinkModelKind::Constant]);
        let picked = ExperimentOptions {
            link_models: vec!["fair-share".into(), "constant".into()],
            ..ExperimentOptions::default()
        }
        .link_models_or(&[LinkModelKind::Constant]);
        assert_eq!(
            picked,
            vec![LinkModelKind::FairShare, LinkModelKind::Constant]
        );
    }

    #[test]
    fn series_table_layout() {
        let t = series_table(
            "rate",
            &["3".into(), "6".into()],
            &["EB", "FIFO"],
            |i, s| format!("{i}-{s}"),
        );
        assert!(t.contains("| rate | EB | FIFO |"));
        assert!(t.contains("| 3 | 0-EB | 0-FIFO |"));
        assert!(t.contains("| 6 | 1-EB | 1-FIFO |"));
    }

    fn parse_all(args: &[&str]) -> Result<ExperimentOptions, String> {
        let mut parser = ArgParser::new(args.iter().map(|s| s.to_string()).collect());
        let mut opts = ExperimentOptions::default();
        while let Some(flag) = parser.next_flag() {
            if !opts.apply(&flag, &mut parser)? {
                return Err(format!("unknown flag {flag:?}"));
            }
        }
        Ok(opts)
    }

    #[test]
    fn shared_flags_parse_and_unknown_flags_are_rejected() {
        let opts = parse_all(&[
            "--duration",
            "240",
            "--seed",
            "7",
            "--scenarios",
            "churn, chaos,",
            "--strategies",
            "eb,fifo",
            "--link-model",
            "fair-share,constant",
        ])
        .unwrap();
        assert_eq!(opts.duration_secs, 240);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.scenarios, vec!["churn", "chaos"]);
        assert_eq!(opts.strategies, vec!["eb", "fifo"]);
        assert_eq!(opts.link_models, vec!["fair-share", "constant"]);

        // The historical silent-skip bug: a singular "--scenario" typo must
        // be an error, not an ignored token.
        let err = parse_all(&["--scenario", "churn"]).unwrap_err();
        assert!(err.contains("--scenario"), "{err}");
        // Missing and malformed values are diagnosed by flag name.
        let err = parse_all(&["--seed"]).unwrap_err();
        assert!(err.contains("--seed requires a value"), "{err}");
        let err = parse_all(&["--duration", "soon"]).unwrap_err();
        assert!(err.contains("--duration"), "{err}");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(PAPER_RATES.len(), 6);
        assert_eq!(PAPER_STRATEGIES.len(), 4);
    }
}
