//! Reproduces Figure 6: performance comparison in the PSD scenario.
//!
//! * Fig. 6(a) — delivery rate (%) vs publishing rate for EB, PC, FIFO, RL.
//! * Fig. 6(b) — message number (k) vs rate.
//!
//! Usage: `cargo run --release -p bdps-bench --bin fig6 [--full] [--seed N]
//! [--strategies eb,pc,fifo,rl,composite]`.

use bdps_bench::{f1, run_cells, series_table, ExperimentOptions, PAPER_RATES, PAPER_STRATEGIES};
use bdps_sim::runner::strategy_rate_grid_with;
use std::collections::HashMap;

fn main() {
    let opts = ExperimentOptions::from_args();
    println!(
        "{}",
        opts.banner("Figure 6 — PSD scenario: delivery rate and message number vs publishing rate")
    );

    let strategies = opts.strategies_or(&PAPER_STRATEGIES);
    let cells = strategy_rate_grid_with(
        &strategies,
        &PAPER_RATES,
        false,
        opts.duration_secs,
        opts.seed,
    );
    let results = run_cells(&cells, &opts);
    let by_label: HashMap<&str, _> = results
        .iter()
        .map(|(label, report)| (label.as_str(), report))
        .collect();

    let labels: Vec<&str> = strategies.iter().map(|s| s.label()).collect();
    let xs: Vec<String> = PAPER_RATES.iter().map(|r| format!("{r}")).collect();

    println!("## Fig. 6(a) — delivery rate (%)\n");
    println!(
        "{}",
        series_table("publishing rate", &xs, &labels, |i, s| {
            let key = format!("{s}@rate{}", PAPER_RATES[i]);
            f1(by_label[key.as_str()].delivery_rate_percent())
        })
    );

    println!("## Fig. 6(b) — message number (k)\n");
    println!(
        "{}",
        series_table("publishing rate", &xs, &labels, |i, s| {
            let key = format!("{s}@rate{}", PAPER_RATES[i]);
            f1(by_label[key.as_str()].message_number_k())
        })
    );

    let at = |s: &str| by_label.get(format!("{s}@rate15").as_str()).copied();
    if let (Some(eb), Some(fifo), Some(rl)) = (at("EB"), at("FIFO"), at("RL")) {
        println!("## Shape checks (paper at rate 15: delivery rates EB 40.1%, FIFO 22.5%, RL 11.6%; EB traffic ~+17% vs FIFO, ~+60% vs RL)\n");
        println!(
            "- delivery rates: EB {:.1}%, FIFO {:.1}%, RL {:.1}%",
            eb.delivery_rate_percent(),
            fifo.delivery_rate_percent(),
            rl.delivery_rate_percent()
        );
        println!(
            "- traffic overhead EB vs FIFO = {:+.1}%, EB vs RL = {:+.1}%",
            100.0 * (eb.message_number as f64 / fifo.message_number.max(1) as f64 - 1.0),
            100.0 * (eb.message_number as f64 / rl.message_number.max(1) as f64 - 1.0)
        );
    }
}
