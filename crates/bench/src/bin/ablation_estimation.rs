//! Ablation: sensitivity of the EB strategy to bandwidth-estimation error.
//!
//! The paper assumes measurement reports the true `N(μ, σ²)` of every link.
//! Here the schedulers' believed parameters are systematically biased while
//! the network keeps behaving according to the true model.

use bdps_bench::{f1, ExperimentOptions};
use bdps_core::config::StrategyKind;
use bdps_net::measure::EstimationError;
use bdps_sim::engine::Simulation;
use bdps_sim::report::render_markdown_table;
use bdps_types::time::Duration;

fn main() {
    let opts = ExperimentOptions::from_args();
    println!(
        "{}",
        opts.banner("Ablation — bandwidth-estimation error (EB strategy, SSD, rate 12)")
    );

    let errors: Vec<(&str, EstimationError)> = vec![
        ("exact (paper assumption)", EstimationError::NONE),
        (
            "mean +25% (pessimistic)",
            EstimationError::relative(0.25, 0.0),
        ),
        (
            "mean -25% (optimistic)",
            EstimationError::relative(-0.25, 0.0),
        ),
        ("sigma x2", EstimationError::relative(0.0, 1.0)),
        ("sigma /2", EstimationError::relative(0.0, -0.5)),
        ("mean +50%, sigma x2", EstimationError::relative(0.5, 1.0)),
    ];

    let rows: Vec<Vec<String>> = errors
        .iter()
        .map(|(label, err)| {
            let r = Simulation::builder()
                .ssd(12.0)
                .duration(Duration::from_secs(opts.duration_secs))
                .strategy(StrategyKind::MaxEb)
                .estimation_error(*err)
                .seed(opts.seed)
                .report();
            vec![
                (*label).to_string(),
                f1(r.earning_k()),
                f1(r.delivery_rate_percent()),
                f1(r.message_number_k()),
                r.dropped_unlikely.to_string(),
            ]
        })
        .collect();

    println!(
        "{}",
        render_markdown_table(
            &[
                "estimation error",
                "earning (k)",
                "delivery rate (%)",
                "msg number (k)",
                "dropped unlikely"
            ],
            &rows
        )
    );
    println!("Expectation: moderate estimation error degrades EB only mildly (the ranking of messages is fairly robust); a strongly optimistic mean makes the epsilon test keep hopeless messages, wasting bandwidth.");
}
