//! Ablation: seed-to-seed variability of the headline comparison.
//!
//! The metrics of §5 assume zero scheduling delay downstream (eq. 4); whether
//! that simplification hurts shows up as variance across independent runs.
//! This binary repeats the PSD rate-12 comparison over several seeds and
//! reports mean ± std of the delivery rate per strategy.

use bdps_bench::{f1, run_cells, ExperimentOptions, PAPER_STRATEGIES};
use bdps_sim::engine::Simulation;
use bdps_sim::report::render_markdown_table;
use bdps_sim::runner::SweepCell;
use bdps_stats::summary::Summary;
use bdps_types::time::Duration;

fn main() {
    let opts = ExperimentOptions::from_args();
    println!(
        "{}",
        opts.banner("Ablation — multi-seed variability of the PSD comparison (rate 12)")
    );

    let strategies = opts.strategies_or(&PAPER_STRATEGIES);
    let seeds: Vec<u64> = (0..5).map(|i| opts.seed + i).collect();
    let mut cells = Vec::new();
    for strategy in &strategies {
        for &seed in &seeds {
            cells.push(SweepCell {
                label: format!("{}#{}", strategy.label(), seed),
                config: Simulation::builder()
                    .psd(12.0)
                    .duration(Duration::from_secs(opts.duration_secs))
                    .strategy(strategy.clone())
                    .seed(seed)
                    .build_config(),
            });
        }
    }
    let results = run_cells(&cells, &opts);

    let rows: Vec<Vec<String>> = strategies
        .iter()
        .map(|s| {
            let mut delivery = Summary::new();
            let mut traffic = Summary::new();
            for (label, r) in &results {
                if label.starts_with(&format!("{}#", s.label())) {
                    delivery.observe(r.delivery_rate_percent());
                    traffic.observe(r.message_number_k());
                }
            }
            vec![
                s.label().to_string(),
                format!("{} ± {}", f1(delivery.mean()), f1(delivery.std_dev())),
                format!("{} ± {}", f1(traffic.mean()), f1(traffic.std_dev())),
            ]
        })
        .collect();

    println!(
        "{}",
        render_markdown_table(
            &[
                "strategy",
                "delivery rate (%) mean ± std",
                "msg number (k) mean ± std"
            ],
            &rows
        )
    );
    println!(
        "Runs per strategy: {}. The ordering EB ≈ PC > FIFO > RL should hold for every seed.",
        seeds.len()
    );
}
