//! Ablation: how the invalid-message detection threshold ε (§5.4, eq. 11)
//! affects earning and traffic under the EB strategy in the SSD scenario.

use bdps_bench::{f1, run_cells, ExperimentOptions};
use bdps_core::config::{InvalidDetection, StrategyKind};
use bdps_sim::engine::Simulation;
use bdps_sim::report::render_markdown_table;
use bdps_sim::runner::SweepCell;
use bdps_types::time::Duration;

fn main() {
    let opts = ExperimentOptions::from_args();
    println!(
        "{}",
        opts.banner("Ablation — invalid-message detection policy (EB strategy, SSD, rate 12)")
    );

    let policies: Vec<(&str, InvalidDetection)> = vec![
        ("off", InvalidDetection::Off),
        ("expired-only", InvalidDetection::ExpiredOnly),
        ("eps=0.05% (paper)", InvalidDetection::Epsilon(5e-4)),
        ("eps=1%", InvalidDetection::Epsilon(1e-2)),
        ("eps=5%", InvalidDetection::Epsilon(5e-2)),
    ];

    let cells: Vec<SweepCell> = policies
        .iter()
        .map(|(label, policy)| SweepCell {
            label: (*label).to_string(),
            config: Simulation::builder()
                .ssd(12.0)
                .duration(Duration::from_secs(opts.duration_secs))
                .strategy(StrategyKind::MaxEb)
                .invalid_detection(*policy)
                .seed(opts.seed)
                .build_config(),
        })
        .collect();

    let results = run_cells(&cells, &opts);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, r)| {
            vec![
                label.clone(),
                f1(r.earning_k()),
                f1(r.message_number_k()),
                r.dropped_expired.to_string(),
                r.dropped_unlikely.to_string(),
                f1(r.delivery_rate_percent()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(
            &[
                "policy",
                "earning (k)",
                "msg number (k)",
                "dropped expired",
                "dropped unlikely",
                "delivery rate (%)"
            ],
            &rows
        )
    );
    println!("Expectation: early deletion of hopeless messages should not reduce earning while trimming useless traffic; an overly aggressive epsilon starts cancelling deliverable messages.");
}
