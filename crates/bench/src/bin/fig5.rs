//! Reproduces Figure 5: performance comparison in the SSD scenario.
//!
//! * Fig. 5(a) — total earning (k) vs publishing rate for EB, PC, FIFO, RL.
//! * Fig. 5(b) — message number (k, total receptions at all brokers) vs rate.
//!
//! Usage: `cargo run --release -p bdps-bench --bin fig5 [--full] [--seed N]
//! [--strategies eb,pc,fifo,rl,composite]`.

use bdps_bench::{f1, run_cells, series_table, ExperimentOptions, PAPER_RATES, PAPER_STRATEGIES};
use bdps_sim::runner::strategy_rate_grid_with;
use std::collections::HashMap;

fn main() {
    let opts = ExperimentOptions::from_args();
    println!(
        "{}",
        opts.banner("Figure 5 — SSD scenario: earning and message number vs publishing rate")
    );

    let strategies = opts.strategies_or(&PAPER_STRATEGIES);
    let cells = strategy_rate_grid_with(
        &strategies,
        &PAPER_RATES,
        true,
        opts.duration_secs,
        opts.seed,
    );
    let results = run_cells(&cells, &opts);
    let by_label: HashMap<&str, _> = results
        .iter()
        .map(|(label, report)| (label.as_str(), report))
        .collect();

    let labels: Vec<&str> = strategies.iter().map(|s| s.label()).collect();
    let xs: Vec<String> = PAPER_RATES.iter().map(|r| format!("{r}")).collect();

    println!("## Fig. 5(a) — total earning (k)\n");
    println!(
        "{}",
        series_table("publishing rate", &xs, &labels, |i, s| {
            let key = format!("{s}@rate{}", PAPER_RATES[i]);
            f1(by_label[key.as_str()].earning_k())
        })
    );

    println!("## Fig. 5(b) — message number (k)\n");
    println!(
        "{}",
        series_table("publishing rate", &xs, &labels, |i, s| {
            let key = format!("{s}@rate{}", PAPER_RATES[i]);
            f1(by_label[key.as_str()].message_number_k())
        })
    );

    // The paper's headline claims at rate 15 (only meaningful with the
    // default strategy set).
    let at = |s: &str| by_label.get(format!("{s}@rate15").as_str()).copied();
    if let (Some(eb), Some(fifo), Some(rl)) = (at("EB"), at("FIFO"), at("RL")) {
        println!("## Shape checks (paper: EB earns ~5x FIFO and ~10x RL at rate 15; EB traffic ~+23% vs FIFO, ~+64% vs RL)\n");
        println!(
            "- earning ratio EB/FIFO = {:.2}, EB/RL = {:.2}",
            eb.total_earning / fifo.total_earning.max(1e-9),
            eb.total_earning / rl.total_earning.max(1e-9)
        );
        println!(
            "- traffic overhead EB vs FIFO = {:+.1}%, EB vs RL = {:+.1}%",
            100.0 * (eb.message_number as f64 / fifo.message_number.max(1) as f64 - 1.0),
            100.0 * (eb.message_number as f64 / rl.message_number.max(1) as f64 - 1.0)
        );
    }
}
