//! Reproduces Figure 4: EB vs PC vs EBPC as the EB weight `r` varies.
//!
//! * Fig. 4(a) — SSD total earning (k) vs `r` at publishing rate 10.
//! * Fig. 4(b) — PSD delivery rate (%) vs `r` at publishing rate 10.
//!
//! EB and PC do not depend on `r`; they are run once each and reported as
//! horizontal reference lines, exactly as the paper plots them.
//!
//! Usage: `cargo run --release -p bdps-bench --bin fig4 [--full] [--seed N]`.

use bdps_bench::{f1, run_cells, series_table, ExperimentOptions};
use bdps_core::config::StrategyKind;
use bdps_sim::engine::Simulation;
use bdps_sim::runner::SweepCell;
use bdps_types::time::Duration;
use std::collections::HashMap;

const RATE: f64 = 10.0;
const R_VALUES: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

fn cells_for(ssd: bool, opts: &ExperimentOptions) -> Vec<SweepCell> {
    let base = |strategy: StrategyKind| {
        let b = Simulation::builder();
        let b = if ssd { b.ssd(RATE) } else { b.psd(RATE) };
        b.duration(Duration::from_secs(opts.duration_secs))
            .strategy(strategy)
            .seed(opts.seed)
    };
    let mut cells = vec![
        SweepCell {
            label: "EB".into(),
            config: base(StrategyKind::MaxEb).build_config(),
        },
        SweepCell {
            label: "PC".into(),
            config: base(StrategyKind::MaxPc).build_config(),
        },
    ];
    for r in R_VALUES {
        cells.push(SweepCell {
            label: format!("EBPC@r{}", (r * 100.0).round() as u32),
            config: base(StrategyKind::MaxEbpc).ebpc_weight(r).build_config(),
        });
    }
    cells
}

fn panel(ssd: bool, opts: &ExperimentOptions) -> String {
    let cells = cells_for(ssd, opts);
    let results = run_cells(&cells, opts);
    let by_label: HashMap<&str, _> = results
        .iter()
        .map(|(label, report)| (label.as_str(), report))
        .collect();
    let value = |r: &bdps_sim::report::SimulationReport| {
        if ssd {
            f1(r.earning_k())
        } else {
            f1(r.delivery_rate_percent())
        }
    };
    let xs: Vec<String> = R_VALUES
        .iter()
        .map(|r| format!("{}", (r * 100.0).round() as u32))
        .collect();
    series_table("r (%)", &xs, &["EBPC", "EB", "PC"], |i, s| match s {
        "EBPC" => {
            value(by_label[format!("EBPC@r{}", (R_VALUES[i] * 100.0).round() as u32).as_str()])
        }
        other => value(by_label[other]),
    })
}

fn main() {
    let opts = ExperimentOptions::from_args();
    println!(
        "{}",
        opts.banner("Figure 4 — EB / PC / EBPC comparison vs the EB weight r (publishing rate 10)")
    );

    println!("## Fig. 4(a) — SSD total earning (k) vs r\n");
    println!("{}", panel(true, &opts));

    println!("## Fig. 4(b) — PSD delivery rate (%) vs r\n");
    println!("{}", panel(false, &opts));

    println!("Shape checks (paper): PC below EB; EBPC ≥ EB for r in roughly (23%, 100%); EBPC(r=100%) == EB by construction.");
}
