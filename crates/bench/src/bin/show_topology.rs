//! Prints the paper's simulated network (Figure 3): 32 brokers in 4 layers,
//! 4 publishers, 160 subscribers, with the drawn per-link rate parameters.

use bdps_bench::ArgParser;
use bdps_overlay::topology::Topology;
use bdps_stats::rng::SimRng;

fn main() {
    let mut parser = ArgParser::from_env();
    let mut seed = 20060816u64;
    while let Some(flag) = parser.next_flag() {
        let result = match flag.as_str() {
            "--seed" => parser.parse_value(&flag).map(|v| seed = v),
            _ => Err(format!("unknown flag {flag:?}; known: --seed <n>")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
    let topo = Topology::paper_topology(&mut SimRng::seed_from(seed));
    let g = &topo.graph;

    println!("# Figure 3 — simulated broker network (seed {seed})\n");
    println!(
        "brokers: {}, directed links: {}, publishers: {}, subscribers: {}\n",
        g.broker_count(),
        g.link_count(),
        topo.publishers.len(),
        topo.subscribers.len()
    );
    for layer in 0..4u32 {
        let members: Vec<String> = g
            .brokers()
            .filter(|b| b.layer == Some(layer))
            .map(|b| {
                let mut tag = b.id.to_string();
                if !b.publishers.is_empty() {
                    tag.push_str(&format!("({} pub)", b.publishers.len()));
                }
                if !b.subscribers.is_empty() {
                    tag.push_str(&format!("({} sub)", b.subscribers.len()));
                }
                tag
            })
            .collect();
        println!("layer {}: {}", layer + 1, members.join(" "));
    }
    println!("\nlinks (upper layer -> lower layer, mean rate ms/KB):");
    for l in g.links() {
        // Print each undirected pair once (lower id first).
        if l.from < l.to {
            println!(
                "  {} <-> {}  mean {:.1} ms/KB, sigma {:.1}",
                l.from,
                l.to,
                l.quality.rate_distribution().mean(),
                l.quality.rate_distribution().std_dev()
            );
        }
    }
}
