//! Population-scaling benchmark: events/sec from paper scale to 10⁵
//! subscribers.
//!
//! The paper stops at 32 brokers / 160 subscribers; the ROADMAP's north star
//! is a production-scale simulator. This binary sweeps the subscriber
//! population (160 → ~1k → 10k → 100k, the paper's mesh shape with more
//! subscribers per edge broker) under dynamic scenarios and measures engine
//! throughput for each [`EventQueueKind`] — the `O(log n)` binary heap
//! versus the `O(1)`-amortised calendar queue — writing a machine-readable
//! `BENCH_scale.json` that CI tracks for regressions.
//!
//! Usage: `cargo run --release -p bdps-bench --bin scale -- [--quick]
//! [--populations 160,992,10000] [--queues heap,calendar]
//! [--scenarios churn,chaos] [--strategies fifo] [--seed N]
//! [--rebuild-policy full|incremental] [--table-layout dense,sparse]
//! [--shards 1,2,8] [--link-model constant,fair-share]
//! [--forwarding exact,aggregate]
//! [--out BENCH_scale.json]
//! [--check bench/baseline.json] [--max-regression 0.25]`.
//!
//! `--shards N` with `N > 1` runs the conservative time-window executor
//! (`bdps_sim::shard`) instead of the sequential loop; shard counts are
//! part of each cell's baseline key, so sharded and sequential cells are
//! never gated against each other. The link model is part of the key too
//! (baselines from before the axis existed default to `constant`), and
//! fair-share cells are skipped at `shards > 1` — the sharded executor
//! rejects sharing models by design. `--forwarding aggregate` measures
//! edge-only scope expansion: the forwarding mode joins the key (old
//! baselines default to `exact`), aggregate cells are skipped under the
//! dense layout and under `shards > 1` (both rejected by the engine), and
//! the run reports each aggregate cell's false-positive forwarding rate.
//!
//! With `--check <baseline>`, every cell present in the baseline is compared
//! by events/sec and the process exits non-zero when any regresses by more
//! than `--max-regression` (25 % by default) — the contract of the
//! `bench-perf` CI job.

use bdps_bench::{ArgParser, ExperimentOptions, COMMON_FLAGS_HELP};
use bdps_overlay::topology::LayeredMeshConfig;
use bdps_sim::prelude::*;
use bdps_sim::sched::EventQueueKind;
use bdps_sim::{RebuildPolicy, TableLayout};
use bdps_types::time::Duration;
use std::time::Instant;

const SCALE_FLAGS_HELP: &str = "--quick | --populations <n,n,..> | --queues <heap,calendar> \
     | --rebuild-policy <full|incremental> | --table-layout <dense,sparse> \
     | --shards <1,2,..> | --forwarding <exact,aggregate> | --passes <n> | --out <path> \
     | --check <baseline.json> | --max-regression <frac>";

/// Default populations of the full sweep (paper mesh: multiples of the 16
/// edge brokers).
const FULL_POPULATIONS: [usize; 4] = [160, 992, 10_000, 100_000];
/// Populations of the CI-friendly `--quick` sweep.
const QUICK_POPULATIONS: [usize; 3] = [160, 992, 10_000];

struct ScaleOptions {
    common: ExperimentOptions,
    quick: bool,
    populations: Vec<usize>,
    queues: Vec<EventQueueKind>,
    rebuild_policy: RebuildPolicy,
    layouts: Vec<TableLayout>,
    shards: Vec<usize>,
    forwardings: Vec<ForwardingMode>,
    out: String,
    check: Option<String>,
    max_regression: f64,
    duration_pinned: bool,
    passes: u32,
}

impl ScaleOptions {
    fn from_args() -> Self {
        let mut parser = ArgParser::from_env();
        let mut opts = ScaleOptions {
            common: ExperimentOptions::default(),
            quick: false,
            populations: Vec::new(),
            queues: EventQueueKind::ALL.to_vec(),
            rebuild_policy: RebuildPolicy::default(),
            layouts: TableLayout::ALL.to_vec(),
            shards: vec![1],
            forwardings: vec![ForwardingMode::Exact],
            out: "BENCH_scale.json".to_string(),
            check: None,
            max_regression: 0.25,
            duration_pinned: false,
            passes: 2,
        };
        let result = (|| -> Result<(), String> {
            while let Some(flag) = parser.next_flag() {
                if flag == "--duration" || flag == "--full" {
                    opts.duration_pinned = true;
                }
                if opts.common.apply(&flag, &mut parser)? {
                    continue;
                }
                match flag.as_str() {
                    "--quick" => opts.quick = true,
                    "--populations" => {
                        opts.populations = parser
                            .list_value(&flag)?
                            .iter()
                            .map(|v| {
                                v.parse::<usize>()
                                    .map_err(|_| format!("--populations got invalid count {v:?}"))
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    "--queues" => {
                        opts.queues = parser
                            .list_value(&flag)?
                            .iter()
                            .map(|name| {
                                EventQueueKind::from_name(name).ok_or_else(|| {
                                    format!("unknown event queue {name:?}; known: heap, calendar")
                                })
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    "--rebuild-policy" => {
                        let name = parser.value(&flag)?;
                        opts.rebuild_policy = RebuildPolicy::from_name(&name).ok_or_else(|| {
                            format!("unknown rebuild policy {name:?}; known: full, incremental")
                        })?;
                    }
                    "--table-layout" => {
                        opts.layouts = parser
                            .list_value(&flag)?
                            .iter()
                            .map(|name| {
                                TableLayout::from_name(name).ok_or_else(|| {
                                    format!("unknown table layout {name:?}; known: dense, sparse")
                                })
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    "--shards" => {
                        opts.shards = parser
                            .list_value(&flag)?
                            .iter()
                            .map(|v| {
                                v.parse::<usize>()
                                    .ok()
                                    .filter(|&n| n >= 1)
                                    .ok_or_else(|| format!("--shards got invalid count {v:?}"))
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    "--forwarding" => {
                        opts.forwardings = parser
                            .list_value(&flag)?
                            .iter()
                            .map(|name| {
                                ForwardingMode::from_name(name).ok_or_else(|| {
                                    format!(
                                        "unknown forwarding mode {name:?}; known: exact, aggregate"
                                    )
                                })
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    "--passes" => {
                        opts.passes = parser.parse_value(&flag)?;
                        if opts.passes == 0 {
                            return Err("--passes must be at least 1".to_string());
                        }
                    }
                    "--out" => opts.out = parser.value(&flag)?,
                    "--check" => opts.check = Some(parser.value(&flag)?),
                    "--max-regression" => opts.max_regression = parser.parse_value(&flag)?,
                    _ => {
                        return Err(format!(
                            "unknown flag {flag:?}; known: {COMMON_FLAGS_HELP} | {SCALE_FLAGS_HELP}"
                        ))
                    }
                }
            }
            Ok(())
        })();
        if let Err(message) = result {
            eprintln!("{message}");
            std::process::exit(2);
        }
        if opts.populations.is_empty() {
            opts.populations = if opts.quick {
                QUICK_POPULATIONS.to_vec()
            } else {
                FULL_POPULATIONS.to_vec()
            };
        }
        opts
    }

    /// Simulated seconds per run, shrinking with the population so the
    /// whole sweep stays tractable (each message fans out to ~25 % of the
    /// population, so per-message work grows linearly with it).
    fn duration_secs(&self, population: usize) -> u64 {
        if self.duration_pinned {
            return self.common.duration_secs;
        }
        match population {
            0..=1_000 => 300,
            1_001..=20_000 => 120,
            _ => 30,
        }
    }
}

/// One measured (population, scenario, queue) cell.
struct Cell {
    population: usize,
    scenario: String,
    queue: EventQueueKind,
    strategy: String,
    rebuild_policy: RebuildPolicy,
    table_layout: TableLayout,
    shards: usize,
    link_model: LinkModelKind,
    forwarding: ForwardingMode,
    duration_secs: u64,
    build_secs: f64,
    wall_secs: f64,
    events: u64,
    events_per_sec: f64,
    peak_pending_events: u64,
    published: u64,
    on_time: u64,
    transmissions: u64,
    false_positive_forwards: u64,
    scope_interns: u64,
    scope_intern_hits: u64,
    tables_rebuilt_full: u64,
    entries_retargeted: u64,
    aggregate_entries: u64,
    expanded_at_edge: u64,
    table_bytes_estimate: u64,
}

impl Cell {
    fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}/s{}/{}/{}",
            self.population,
            self.scenario,
            self.queue,
            self.rebuild_policy.name(),
            self.table_layout.name(),
            self.shards,
            self.link_model.name(),
            self.forwarding.name()
        )
    }

    /// Fraction of transmissions that were false-positive forwards — interior
    /// copies the covering summaries admitted but no edge subscriber matched.
    fn false_positive_rate(&self) -> f64 {
        self.false_positive_forwards as f64 / self.transmissions.max(1) as f64
    }

    fn to_json_line(&self) -> String {
        format!(
            "    {{\"population\": {}, \"scenario\": \"{}\", \"queue\": \"{}\", \
             \"strategy\": \"{}\", \"rebuild_policy\": \"{}\", \"table_layout\": \"{}\", \
             \"shards\": {}, \"link_model\": \"{}\", \"forwarding\": \"{}\", \
             \"duration_secs\": {}, \"build_secs\": {:.3}, \
             \"wall_secs\": {:.3}, \"events\": {}, \"events_per_sec\": {:.1}, \
             \"peak_pending_events\": {}, \"published\": {}, \"on_time\": {}, \
             \"transmissions\": {}, \"false_positive_forwards\": {}, \
             \"scope_interns\": {}, \"scope_intern_hits\": {}, \
             \"tables_rebuilt_full\": {}, \"entries_retargeted\": {}, \
             \"aggregate_entries\": {}, \"expanded_at_edge\": {}, \
             \"table_bytes_estimate\": {}}}",
            self.population,
            self.scenario,
            self.queue,
            self.strategy,
            self.rebuild_policy.name(),
            self.table_layout.name(),
            self.shards,
            self.link_model.name(),
            self.forwarding.name(),
            self.duration_secs,
            self.build_secs,
            self.wall_secs,
            self.events,
            self.events_per_sec,
            self.peak_pending_events,
            self.published,
            self.on_time,
            self.transmissions,
            self.false_positive_forwards,
            self.scope_interns,
            self.scope_intern_hits,
            self.tables_rebuilt_full,
            self.entries_retargeted,
            self.aggregate_entries,
            self.expanded_at_edge,
            self.table_bytes_estimate,
        )
    }
}

/// The paper's four-layer mesh shape, grown with the population: the edge
/// layer scales as √population (so both the broker overlay and the
/// per-broker subscriber load grow), the middle layers follow it, and the
/// paper's 160-subscriber configuration is reproduced exactly at the low
/// end. Returns the configuration and the actual population (a multiple of
/// the edge-broker count).
fn mesh_for(population: usize) -> (LayeredMeshConfig, usize) {
    let config = if population <= 160 {
        let mut paper = LayeredMeshConfig::paper();
        paper.subscribers_per_edge_broker = population.div_ceil(16).max(1);
        paper
    } else {
        let edges = ((population as f64).sqrt().round() as usize).max(16);
        LayeredMeshConfig {
            layer_sizes: vec![4, (edges / 8).max(4), (edges / 2).max(8), edges],
            fan_in: vec![0, 2, 2],
            publishers_per_first_layer_broker: 1,
            subscribers_per_edge_broker: population.div_ceil(edges),
        }
    };
    let actual = config.subscriber_count();
    (config, actual)
}

/// Builds and runs one cell `opts.passes` times and keeps the fastest pass
/// — the first run at a new population pays one-off allocator/page-cache
/// warmup that would otherwise be misread as a scheduler difference.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    opts: &ScaleOptions,
    population: usize,
    scenario: &DynamicScenario,
    queue: EventQueueKind,
    layout: TableLayout,
    shards: usize,
    link_model: LinkModelKind,
    forwarding: ForwardingMode,
    strategy: &bdps_core::strategy::StrategyHandle,
) -> Cell {
    let (mesh, actual_population) = mesh_for(population);
    let duration_secs = opts.duration_secs(population);
    let builder = Simulation::builder()
        .layered_mesh(mesh)
        .ssd(30.0)
        .duration(Duration::from_secs(duration_secs))
        .strategy(strategy.clone())
        .scenario(scenario.clone())
        .event_queue(queue)
        .rebuild_policy(opts.rebuild_policy)
        .table_layout(layout)
        .link_model(link_model)
        .forwarding(forwarding)
        .seed(opts.common.seed);
    let mut best: Option<Cell> = None;
    for _ in 0..opts.passes {
        let build_start = Instant::now();
        let sim = builder.build();
        let build_secs = build_start.elapsed().as_secs_f64();
        let run_start = Instant::now();
        let outcome = if shards > 1 {
            bdps_sim::run_sharded(sim, shards)
        } else {
            sim.run()
        };
        let wall_secs = run_start.elapsed().as_secs_f64();
        let cell = Cell {
            population: actual_population,
            scenario: scenario.name.clone(),
            queue,
            strategy: strategy.label().to_string(),
            rebuild_policy: opts.rebuild_policy,
            table_layout: layout,
            shards,
            link_model,
            forwarding,
            duration_secs,
            build_secs,
            wall_secs,
            events: outcome.events_processed,
            events_per_sec: outcome.events_processed as f64 / wall_secs.max(1e-9),
            peak_pending_events: outcome.peak_pending_events,
            published: outcome.published,
            on_time: outcome.tracker.total_on_time(),
            transmissions: outcome.transmissions,
            false_positive_forwards: outcome.false_positive_forwards(),
            scope_interns: outcome.scope_interns,
            scope_intern_hits: outcome.scope_intern_hits,
            tables_rebuilt_full: outcome.tables_rebuilt_full,
            entries_retargeted: outcome.entries_retargeted,
            aggregate_entries: outcome.aggregate_entries,
            expanded_at_edge: outcome.expanded_at_edge(),
            table_bytes_estimate: outcome.table_bytes_estimate,
        };
        if best.as_ref().is_none_or(|b| cell.wall_secs < b.wall_secs) {
            best = Some(cell);
        }
    }
    best.expect("at least one pass")
}

fn write_json(opts: &ScaleOptions, cells: &[Cell]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"scale\",\n");
    out.push_str(&format!("  \"seed\": {},\n", opts.common.seed));
    out.push_str(&format!("  \"quick\": {},\n", opts.quick));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&cell.to_json_line());
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&opts.out, out)
}

/// Extracts `"key": value` from a single-line JSON object without a JSON
/// dependency (the container builds offline; the format is produced by this
/// same binary, one cell object per line).
fn extract(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let rest = &line[line.find(&marker)? + marker.len()..];
    let rest = rest.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next().map(|s| s.to_string())
    } else {
        rest.split([',', '}']).next().map(|s| s.trim().to_string())
    }
}

/// `(population/scenario/queue/policy/layout/shards/model/forwarding,
/// events_per_sec)` pairs from a baseline file. The rebuild policy, table
/// layout, shard count, link model and forwarding mode are part of the key
/// so a full-policy, sparse-layout, multi-shard, fair-share or
/// aggregate-forwarding run is never gated against baselines measured under
/// another mode (their events/sec are not comparable); baselines from
/// before an axis existed default to its historical value ("incremental" /
/// "dense" / 1 shard / "constant" / "exact").
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|line| line.contains("\"population\""))
        .filter_map(|line| {
            let population = extract(line, "population")?;
            let scenario = extract(line, "scenario")?;
            let queue = extract(line, "queue")?;
            let policy =
                extract(line, "rebuild_policy").unwrap_or_else(|| "incremental".to_string());
            let layout = extract(line, "table_layout").unwrap_or_else(|| "dense".to_string());
            let shards = extract(line, "shards").unwrap_or_else(|| "1".to_string());
            let model = extract(line, "link_model").unwrap_or_else(|| "constant".to_string());
            let forwarding = extract(line, "forwarding").unwrap_or_else(|| "exact".to_string());
            let eps: f64 = extract(line, "events_per_sec")?.parse().ok()?;
            Some((
                format!(
                    "{population}/{scenario}/{queue}/{policy}/{layout}/s{shards}/{model}/{forwarding}"
                ),
                eps,
            ))
        })
        .collect()
}

/// Compares against a committed baseline; returns the failure messages.
fn check_regressions(opts: &ScaleOptions, cells: &[Cell]) -> Result<Vec<String>, String> {
    let path = opts.check.as_deref().expect("check mode");
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path:?}: {e}"))?;
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        return Err(format!("baseline {path:?} contains no cells"));
    }
    // Cells faster than this cannot measure throughput within the gate's
    // tolerance (the 160-population cells finish in ~40 ms, where run-to-run
    // swings already exceed 25 %); they are reported but never fail the gate.
    const MIN_GATED_WALL_SECS: f64 = 0.5;

    let mut failures = Vec::new();
    let mut compared = 0usize;
    println!(
        "\n## Baseline comparison ({path}, max regression {:.0} %)\n",
        opts.max_regression * 100.0
    );
    let mut rows = Vec::new();
    for (key, base_eps) in &baseline {
        let Some(cell) = cells.iter().find(|c| &c.key() == key) else {
            println!("- note: baseline cell {key} was not part of this run");
            continue;
        };
        let ratio = cell.events_per_sec / base_eps;
        let gated = cell.wall_secs >= MIN_GATED_WALL_SECS;
        rows.push(vec![
            key.clone(),
            format!("{base_eps:.0}"),
            format!("{:.0}", cell.events_per_sec),
            format!("{ratio:.2}x"),
            if gated { "yes" } else { "too fast to gate" }.to_string(),
        ]);
        if !gated {
            continue;
        }
        compared += 1;
        if ratio < 1.0 - opts.max_regression {
            failures.push(format!(
                "{key}: events/sec regressed to {:.0} from baseline {base_eps:.0} ({:.0} %)",
                cell.events_per_sec,
                ratio * 100.0
            ));
        }
    }
    println!(
        "{}",
        render_markdown_table(
            &["cell", "baseline ev/s", "now ev/s", "ratio", "gated"],
            &rows
        )
    );
    if compared == 0 {
        // A gate that matches nothing must fail loudly, not pass silently —
        // otherwise a renamed scenario or drifted population label would
        // turn the whole perf check into a no-op.
        return Err(format!(
            "baseline {path:?} has no gateable cell in common with this run \
             (populations/scenarios drifted, or every matching cell ran under \
             {MIN_GATED_WALL_SECS} s); regenerate the baseline"
        ));
    }
    Ok(failures)
}

fn main() {
    let opts = ScaleOptions::from_args();
    println!(
        "# Scale — engine throughput vs subscriber population\n\n\
         populations: {:?}, queues: {:?}, rebuild policy: {}, layouts: {:?}, \
         shards: {:?}, seed: {}\n",
        opts.populations,
        opts.queues.iter().map(|q| q.name()).collect::<Vec<_>>(),
        opts.rebuild_policy.name(),
        opts.layouts.iter().map(|l| l.name()).collect::<Vec<_>>(),
        opts.shards,
        opts.common.seed
    );

    // Quick includes link-flap so the CI regression gate also tracks the
    // rebuild path, not just the static-topology hot loop; the full sweep
    // adds the link-storm (overlapping ~5 s outages every ~2 s), the
    // scenario the incremental rebuild exists for.
    let default_scenarios: &[&str] = if opts.quick {
        &["churn", "link-flap"]
    } else {
        &["churn", "chaos", "link-storm"]
    };
    let scenarios = opts.common.scenarios_or(default_scenarios);
    let link_models = opts.common.link_models_or(&[LinkModelKind::Constant]);
    let strategies = opts
        .common
        .strategies_or(&[bdps_core::config::StrategyKind::MaxEb]);
    let strategy = &strategies[0];
    if strategies.len() > 1 {
        eprintln!(
            "note: scale uses one strategy per sweep; running {} and ignoring the rest",
            strategy.label()
        );
    }

    // Link-failure scenarios used to be capped at 20k subscribers because a
    // full rebuild is O(brokers × population) per link event; the
    // incremental rebuild lifted that cap. Warn loudly when someone asks the
    // oracle policy to do the old quadratic work at scale.
    const FULL_REBUILD_WARN_POPULATION: usize = 20_000;

    let mut cells = Vec::new();
    for &population in &opts.populations {
        for scenario in &scenarios {
            let uses_links = scenario.link_failures.is_some() || !scenario.blackouts.is_empty();
            if uses_links
                && opts.rebuild_policy == RebuildPolicy::Full
                && population > FULL_REBUILD_WARN_POPULATION
            {
                println!(
                    "- note: {} at {} subscribers under the full rebuild policy rebuilds \
                     every table per link event (O(brokers x population)); expect a long run \
                     (drop --rebuild-policy full for the incremental default)",
                    scenario.name, population
                );
            }
            for &queue in &opts.queues {
                for &layout in &opts.layouts {
                    for &shards in &opts.shards {
                        for &model in &link_models {
                            if shards > 1 && model != LinkModelKind::Constant {
                                println!(
                                    "- note: skipping {model} at s{shards} (the sharded executor \
                                     supports only the constant-delay model)"
                                );
                                continue;
                            }
                            for &forwarding in &opts.forwardings {
                                if forwarding == ForwardingMode::Aggregate
                                    && layout == TableLayout::Dense
                                {
                                    println!(
                                        "- note: skipping aggregate forwarding under the dense \
                                         layout (needs the shared-population registry)"
                                    );
                                    continue;
                                }
                                if forwarding == ForwardingMode::Aggregate && shards > 1 {
                                    println!(
                                        "- note: skipping aggregate forwarding at s{shards} (the \
                                         sharded executor rejects edge expansion)"
                                    );
                                    continue;
                                }
                                let cell = run_cell(
                                    &opts, population, scenario, queue, layout, shards, model,
                                    forwarding, strategy,
                                );
                                println!(
                        "- {:>7} subs · {:<11} · {:<8} · {:<6} · s{} · {:<10} · {:<9}: {:>9.0} events/sec ({} events in {:.2} s wall, peak queue {}, scope hit rate {:.0} %, {} entries retargeted, {} full table rebuilds, {} aggregates, {:.1} MB tables, fp rate {:.1} %)",
                        cell.population,
                        cell.scenario,
                        cell.queue.name(),
                        cell.table_layout.name(),
                        cell.shards,
                        cell.link_model.name(),
                        cell.forwarding.name(),
                        cell.events_per_sec,
                        cell.events,
                        cell.wall_secs,
                        cell.peak_pending_events,
                        100.0 * cell.scope_intern_hits as f64 / cell.scope_interns.max(1) as f64,
                        cell.entries_retargeted,
                        cell.tables_rebuilt_full,
                        cell.aggregate_entries,
                        cell.table_bytes_estimate as f64 / 1e6,
                        100.0 * cell.false_positive_rate(),
                    );
                                cells.push(cell);
                            }
                        }
                    }
                }
            }
        }
    }

    // Headline: calendar-vs-heap speedup per (population, scenario, layout).
    println!("\n## events/sec by population (speedup = calendar / heap)\n");
    let mut rows = Vec::new();
    for &population in &opts.populations {
        let (_, actual) = mesh_for(population);
        for scenario in &scenarios {
            for &layout in &opts.layouts {
                let find = |queue: EventQueueKind| {
                    cells.iter().find(|c| {
                        c.population == actual
                            && c.scenario == scenario.name
                            && c.queue == queue
                            && c.table_layout == layout
                            && c.shards == opts.shards[0]
                            && c.link_model == link_models[0]
                            && c.forwarding == opts.forwardings[0]
                    })
                };
                if let (Some(heap), Some(calendar)) = (
                    find(EventQueueKind::BinaryHeap),
                    find(EventQueueKind::Calendar),
                ) {
                    rows.push(vec![
                        format!("{actual}"),
                        scenario.name.clone(),
                        layout.name().to_string(),
                        format!("{:.0}", heap.events_per_sec),
                        format!("{:.0}", calendar.events_per_sec),
                        format!("{:.2}x", calendar.events_per_sec / heap.events_per_sec),
                    ]);
                }
            }
        }
    }
    if !rows.is_empty() {
        println!(
            "{}",
            render_markdown_table(
                &[
                    "population",
                    "scenario",
                    "layout",
                    "heap ev/s",
                    "calendar ev/s",
                    "speedup"
                ],
                &rows
            )
        );
    }

    // The parallel headline: events/sec per shard count relative to the
    // sequential loop, per (population, scenario). On a single-core host
    // this mostly measures the executor's coordination overhead; real
    // speedups need as many cores as shards.
    if opts.shards.len() > 1 {
        println!("\n## events/sec by shard count (speedup vs 1 shard)\n");
        let scaling_queue = opts.queues[0];
        let scaling_layout = opts.layouts[0];
        let mut rows = Vec::new();
        for &population in &opts.populations {
            let (_, actual) = mesh_for(population);
            for scenario in &scenarios {
                let find = |shards: usize| {
                    cells.iter().find(|c| {
                        c.population == actual
                            && c.scenario == scenario.name
                            && c.queue == scaling_queue
                            && c.table_layout == scaling_layout
                            && c.shards == shards
                            && c.link_model == LinkModelKind::Constant
                            && c.forwarding == ForwardingMode::Exact
                    })
                };
                let Some(base) = find(1) else { continue };
                for &shards in &opts.shards {
                    if shards == 1 {
                        continue;
                    }
                    if let Some(cell) = find(shards) {
                        rows.push(vec![
                            format!("{actual}"),
                            scenario.name.clone(),
                            format!("{shards}"),
                            format!("{:.0}", base.events_per_sec),
                            format!("{:.0}", cell.events_per_sec),
                            format!("{:.2}x", cell.events_per_sec / base.events_per_sec),
                        ]);
                    }
                }
            }
        }
        if !rows.is_empty() {
            println!(
                "{}",
                render_markdown_table(
                    &[
                        "population",
                        "scenario",
                        "shards",
                        "1-shard ev/s",
                        "sharded ev/s",
                        "speedup"
                    ],
                    &rows
                )
            );
        }
    }

    // The forwarding headline: exact-vs-aggregate events/sec, the
    // false-positive traffic the covers admit, and the per-cell on-time
    // delivery counts — the full trade the aggregate mode exists for
    // (publish-side matching cost vs extra interior copies vs QoS fidelity
    // under congestion; the on-time columns are what the QoS envelopes
    // recovered from the FIFO-degradation regime).
    if opts.forwardings.contains(&ForwardingMode::Exact)
        && opts.forwardings.contains(&ForwardingMode::Aggregate)
    {
        println!(
            "\n## events/sec by forwarding mode (speedup = aggregate / exact, sparse layout)\n"
        );
        let forwarding_queue = opts.queues[0];
        let mut rows = Vec::new();
        for &population in &opts.populations {
            let (_, actual) = mesh_for(population);
            for scenario in &scenarios {
                let find = |forwarding: ForwardingMode| {
                    cells.iter().find(|c| {
                        c.population == actual
                            && c.scenario == scenario.name
                            && c.queue == forwarding_queue
                            && c.table_layout == TableLayout::Sparse
                            && c.shards == 1
                            && c.link_model == link_models[0]
                            && c.forwarding == forwarding
                    })
                };
                if let (Some(exact), Some(aggregate)) =
                    (find(ForwardingMode::Exact), find(ForwardingMode::Aggregate))
                {
                    rows.push(vec![
                        format!("{actual}"),
                        scenario.name.clone(),
                        format!("{:.0}", exact.events_per_sec),
                        format!("{:.0}", aggregate.events_per_sec),
                        format!(
                            "{:.2}x",
                            aggregate.events_per_sec / exact.events_per_sec.max(1e-9)
                        ),
                        format!("{:.1} %", 100.0 * aggregate.false_positive_rate()),
                        format!("{}", exact.on_time),
                        format!("{}", aggregate.on_time),
                    ]);
                }
            }
        }
        if !rows.is_empty() {
            println!(
                "{}",
                render_markdown_table(
                    &[
                        "population",
                        "scenario",
                        "exact ev/s",
                        "aggregate ev/s",
                        "speedup",
                        "false-positive rate",
                        "exact on-time",
                        "aggregate on-time"
                    ],
                    &rows
                )
            );
        }
    }

    // The memory headline: dense-vs-sparse table bytes per (population,
    // scenario) — the axis the sparse layout exists for.
    if opts.layouts.contains(&TableLayout::Dense) && opts.layouts.contains(&TableLayout::Sparse) {
        println!("\n## table memory by layout (dense / sparse)\n");
        // Memory does not depend on the event scheduler; report one queue's
        // cells — whichever the run actually used.
        let memory_queue = opts.queues[0];
        let mut rows = Vec::new();
        for &population in &opts.populations {
            let (_, actual) = mesh_for(population);
            for scenario in &scenarios {
                let find = |layout: TableLayout| {
                    cells.iter().find(|c| {
                        c.population == actual
                            && c.scenario == scenario.name
                            && c.queue == memory_queue
                            && c.table_layout == layout
                            && c.shards == opts.shards[0]
                            && c.link_model == link_models[0]
                            && c.forwarding == opts.forwardings[0]
                    })
                };
                if let (Some(dense), Some(sparse)) =
                    (find(TableLayout::Dense), find(TableLayout::Sparse))
                {
                    rows.push(vec![
                        format!("{actual}"),
                        scenario.name.clone(),
                        format!("{:.1} MB", dense.table_bytes_estimate as f64 / 1e6),
                        format!("{:.1} MB", sparse.table_bytes_estimate as f64 / 1e6),
                        format!(
                            "{:.0}x",
                            dense.table_bytes_estimate as f64
                                / sparse.table_bytes_estimate.max(1) as f64
                        ),
                        format!("{}", sparse.aggregate_entries),
                    ]);
                }
            }
        }
        if !rows.is_empty() {
            println!(
                "{}",
                render_markdown_table(
                    &[
                        "population",
                        "scenario",
                        "dense tables",
                        "sparse tables",
                        "shrink",
                        "aggregates"
                    ],
                    &rows
                )
            );
        }
    }

    match write_json(&opts, &cells) {
        Ok(()) => println!("wrote {}", opts.out),
        Err(e) => {
            eprintln!("failed to write {}: {e}", opts.out);
            std::process::exit(1);
        }
    }

    if opts.check.is_some() {
        match check_regressions(&opts, &cells) {
            Ok(failures) if failures.is_empty() => println!("baseline check passed"),
            Ok(failures) => {
                for f in &failures {
                    eprintln!("REGRESSION: {f}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
}
