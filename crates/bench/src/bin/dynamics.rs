//! Beyond the paper: the five strategies under dynamic scenarios.
//!
//! The paper evaluates a stationary system; this binary compares the same
//! strategies under subscription churn, flash-crowd bursts, link failures
//! and a full blackout — the regimes where delay-aware scheduling should
//! differentiate most. Every cell is one simulation with the scenario's
//! randomness derived from the cell seed, so the whole table is reproducible.
//!
//! With `--link-model constant,fair-share` the sweep is crossed with the
//! network layer's [`LinkModelKind`] axis: the paper's exclusive
//! constant-delay links versus flow-level fair bandwidth sharing. A
//! congestion summary then reports, per model, the highest per-link
//! utilisation and the busiest links of the flash-crowd cell — the
//! fig5-style view of which strategies survive a saturated mesh.
//!
//! With `--forwarding exact,aggregate` every strategy × scenario cell is
//! additionally run under aggregate-scoped forwarding over the sparse
//! layout, and an **on-time delivery** comparison table reports both
//! modes' counts per cell — the QoS-fidelity view of the aggregation
//! trade-off, now that aggregate entries carry QoS envelopes (interior
//! copies are ranked and shed by their edge group's deadline/earning
//! bounds instead of degrading to FIFO under saturation).
//!
//! Usage: `cargo run --release -p bdps-bench --bin dynamics [--full]
//! [--seed N] [--rate R] [--strategies eb,pc,fifo,rl,ebpc]
//! [--scenarios static,churn,flash-crowd,link-flap,blackout,chaos]
//! [--link-model constant,fair-share] [--forwarding exact,aggregate]`.

use bdps_bench::{f1, run_cells, ArgParser, ExperimentOptions, COMMON_FLAGS_HELP};
use bdps_core::config::StrategyKind;
use bdps_sim::prelude::*;
use bdps_types::time::Duration;
use std::collections::HashMap;

const DEFAULT_SCENARIOS: [&str; 5] = ["static", "churn", "flash-crowd", "link-flap", "chaos"];

struct DynamicsOptions {
    common: ExperimentOptions,
    /// SSD-scenario publishing rate (msgs/min). The congestion sweeps
    /// raise this to push links into saturation.
    rate: f64,
    /// Forwarding modes selected with `--forwarding`. When `aggregate` is
    /// present, every strategy × scenario cell also runs under
    /// aggregate-scoped forwarding (sparse layout) and the on-time
    /// comparison section is printed.
    forwardings: Vec<ForwardingMode>,
}

impl DynamicsOptions {
    fn from_args() -> Self {
        let mut parser = ArgParser::from_env();
        let mut opts = DynamicsOptions {
            common: ExperimentOptions::default(),
            rate: 10.0,
            forwardings: vec![ForwardingMode::Exact],
        };
        let result = (|| -> Result<(), String> {
            while let Some(flag) = parser.next_flag() {
                if opts.common.apply(&flag, &mut parser)? {
                    continue;
                }
                match flag.as_str() {
                    "--rate" => {
                        opts.rate = parser.parse_value(&flag)?;
                        if !opts.rate.is_finite() || opts.rate <= 0.0 {
                            return Err("--rate must be a positive rate".to_string());
                        }
                    }
                    "--forwarding" => {
                        opts.forwardings = parser
                            .list_value(&flag)?
                            .iter()
                            .map(|name| {
                                ForwardingMode::from_name(name).ok_or_else(|| {
                                    format!(
                                        "unknown forwarding mode {name:?}; known: exact, aggregate"
                                    )
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        if opts.forwardings.is_empty() {
                            return Err("--forwarding needs at least one mode".to_string());
                        }
                    }
                    _ => {
                        return Err(format!(
                            "unknown flag {flag:?}; known: {COMMON_FLAGS_HELP} | --rate <msgs/min> \
                             | --forwarding <exact,aggregate>"
                        ))
                    }
                }
            }
            Ok(())
        })();
        if let Err(message) = result {
            eprintln!("{message}");
            std::process::exit(2);
        }
        opts
    }
}

fn main() {
    let opts = DynamicsOptions::from_args();
    println!(
        "{}",
        opts.common
            .banner("Dynamics — strategy comparison under churn, bursts and link failures")
    );

    let strategies = opts.common.strategies_or(&[
        StrategyKind::MaxEb,
        StrategyKind::MaxPc,
        StrategyKind::MaxEbpc,
        StrategyKind::Fifo,
        StrategyKind::RemainingLifetime,
    ]);
    let scenarios = opts.common.scenarios_or(&DEFAULT_SCENARIOS);
    let link_models = opts.common.link_models_or(&[LinkModelKind::Constant]);

    let aggregate = opts.forwardings.contains(&ForwardingMode::Aggregate);

    let mut cells = Vec::new();
    for &model in &link_models {
        for scenario in &scenarios {
            for strategy in &strategies {
                let config = Simulation::builder()
                    .ssd(opts.rate)
                    .duration(Duration::from_secs(opts.common.duration_secs))
                    .strategy(strategy.clone())
                    .scenario(scenario.clone())
                    .link_model(model)
                    .seed(opts.common.seed)
                    .build_config();
                cells.push(SweepCell {
                    label: format!("{}@{}#{}", strategy.label(), scenario.name, model.name()),
                    config,
                });
                if aggregate {
                    // The envelope-aware twin: same cell under
                    // aggregate-scoped forwarding (which requires the
                    // sparse layout). Table layouts are delivery-
                    // equivalent, so its on-time count is directly
                    // comparable to the exact cell above.
                    let config = Simulation::builder()
                        .ssd(opts.rate)
                        .duration(Duration::from_secs(opts.common.duration_secs))
                        .strategy(strategy.clone())
                        .scenario(scenario.clone())
                        .link_model(model)
                        .table_layout(TableLayout::Sparse)
                        .forwarding(ForwardingMode::Aggregate)
                        .seed(opts.common.seed)
                        .build_config();
                    cells.push(SweepCell {
                        label: format!(
                            "{}@{}#{}!aggregate",
                            strategy.label(),
                            scenario.name,
                            model.name()
                        ),
                        config,
                    });
                }
            }
        }
    }
    let results = run_cells(&cells, &opts.common);
    let by_label: HashMap<&str, &SimulationReport> = results
        .iter()
        .map(|(label, report)| (label.as_str(), report))
        .collect();

    let strategy_labels: Vec<&str> = strategies.iter().map(|s| s.label()).collect();
    let scenario_names: Vec<String> = scenarios.iter().map(|s| s.name.clone()).collect();

    for &model in &link_models {
        let suffix = if link_models.len() > 1 {
            format!(" — {model} links")
        } else {
            String::new()
        };

        println!("## Delivery rate (%) by scenario{suffix}\n");
        println!(
            "{}",
            bdps_bench::series_table("scenario", &scenario_names, &strategy_labels, |i, s| {
                let key = format!("{s}@{}#{}", scenarios[i].name, model.name());
                f1(by_label[key.as_str()].delivery_rate_percent())
            })
        );

        println!("## Total earning (k) by scenario{suffix}\n");
        println!(
            "{}",
            bdps_bench::series_table("scenario", &scenario_names, &strategy_labels, |i, s| {
                let key = format!("{s}@{}#{}", scenarios[i].name, model.name());
                f1(by_label[key.as_str()].earning_k())
            })
        );

        // The QoS-fidelity view of aggregation: per-cell on-time counts
        // under exact vs aggregate forwarding. Before aggregate entries
        // carried QoS envelopes, the aggregate column collapsed toward
        // FIFO under saturation; the ratio is the regime to watch.
        if aggregate {
            println!("## On-time deliveries by forwarding mode{suffix}\n");
            let mut rows = Vec::new();
            for scenario in &scenarios {
                for s in &strategy_labels {
                    let exact_key = format!("{s}@{}#{}", scenario.name, model.name());
                    let agg_key = format!("{s}@{}#{}!aggregate", scenario.name, model.name());
                    let (Some(exact), Some(agg)) = (
                        by_label.get(exact_key.as_str()),
                        by_label.get(agg_key.as_str()),
                    ) else {
                        continue;
                    };
                    rows.push(vec![
                        scenario.name.clone(),
                        s.to_string(),
                        format!("{}", exact.on_time),
                        format!("{}", agg.on_time),
                        format!("{:.2}", agg.on_time as f64 / (exact.on_time.max(1)) as f64),
                    ]);
                }
            }
            println!(
                "{}",
                render_markdown_table(
                    &[
                        "scenario",
                        "strategy",
                        "exact on-time",
                        "aggregate on-time",
                        "aggregate/exact"
                    ],
                    &rows
                )
            );
        }
    }

    // The congestion view: how hard the network layer itself was pushed.
    // Per model, the run-wide saturation headline by scenario × strategy;
    // under flash-crowd, the busiest links of every strategy's cell.
    for &model in &link_models {
        let suffix = if link_models.len() > 1 {
            format!(" — {model} links")
        } else {
            String::new()
        };
        println!("## Max link utilisation (%) by scenario{suffix}\n");
        println!(
            "{}",
            bdps_bench::series_table("scenario", &scenario_names, &strategy_labels, |i, s| {
                let key = format!("{s}@{}#{}", scenarios[i].name, model.name());
                f1(by_label[key.as_str()].max_link_utilisation() * 100.0)
            })
        );
    }
    if let Some(flash) = scenarios.iter().find(|s| s.name == "flash-crowd") {
        let lead = strategy_labels[0];
        for &model in &link_models {
            let key = format!("{lead}@{}#{}", flash.name, model.name());
            if let Some(r) = by_label.get(key.as_str()) {
                println!(
                    "### Busiest links — {lead}, flash-crowd, {model} (max util {:.1} %)\n",
                    r.max_link_utilisation() * 100.0
                );
                println!("{}", r.link_table(3));
            }
        }
    }

    println!("## Resilience bookkeeping (EB)\n");
    let first_model = link_models[0];
    for scenario in &scenarios {
        let key = format!("EB@{}#{}", scenario.name, first_model.name());
        if let Some(r) = by_label.get(key.as_str()) {
            println!(
                "- {}: requeued {}, unsubscribed-drops {}, duplicates {} (must be 0), phases {}",
                scenario.name,
                r.requeued,
                r.dropped_unsubscribed,
                r.duplicate_deliveries,
                r.phases.len()
            );
        }
    }

    // Phase breakdown of the most dynamic scenario, if it ran.
    if let Some(r) = by_label.get(format!("EB@chaos#{}", first_model.name()).as_str()) {
        println!("\n## EB per-phase breakdown under chaos\n");
        println!("{}", r.phase_table());
    }
}
