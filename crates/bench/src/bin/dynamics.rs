//! Beyond the paper: the five strategies under dynamic scenarios.
//!
//! The paper evaluates a stationary system; this binary compares the same
//! strategies under subscription churn, flash-crowd bursts, link failures
//! and a full blackout — the regimes where delay-aware scheduling should
//! differentiate most. Every cell is one simulation with the scenario's
//! randomness derived from the cell seed, so the whole table is reproducible.
//!
//! Usage: `cargo run --release -p bdps-bench --bin dynamics [--full]
//! [--seed N] [--strategies eb,pc,fifo,rl,ebpc]
//! [--scenarios static,churn,flash-crowd,link-flap,blackout,chaos]`.

use bdps_bench::{f1, run_cells, ExperimentOptions};
use bdps_core::config::StrategyKind;
use bdps_sim::prelude::*;
use bdps_types::time::Duration;
use std::collections::HashMap;

const DEFAULT_SCENARIOS: [&str; 5] = ["static", "churn", "flash-crowd", "link-flap", "chaos"];

fn main() {
    let opts = ExperimentOptions::from_args();
    println!(
        "{}",
        opts.banner("Dynamics — strategy comparison under churn, bursts and link failures")
    );

    let strategies = opts.strategies_or(&[
        StrategyKind::MaxEb,
        StrategyKind::MaxPc,
        StrategyKind::MaxEbpc,
        StrategyKind::Fifo,
        StrategyKind::RemainingLifetime,
    ]);
    let scenarios = opts.scenarios_or(&DEFAULT_SCENARIOS);

    let mut cells = Vec::new();
    for scenario in &scenarios {
        for strategy in &strategies {
            let config = Simulation::builder()
                .ssd(10.0)
                .duration(Duration::from_secs(opts.duration_secs))
                .strategy(strategy.clone())
                .scenario(scenario.clone())
                .seed(opts.seed)
                .build_config();
            cells.push(SweepCell {
                label: format!("{}@{}", strategy.label(), scenario.name),
                config,
            });
        }
    }
    let results = run_cells(&cells, &opts);
    let by_label: HashMap<&str, &SimulationReport> = results
        .iter()
        .map(|(label, report)| (label.as_str(), report))
        .collect();

    let strategy_labels: Vec<&str> = strategies.iter().map(|s| s.label()).collect();

    println!("## Delivery rate (%) by scenario\n");
    println!(
        "{}",
        bdps_bench::series_table(
            "scenario",
            &scenarios.iter().map(|s| s.name.clone()).collect::<Vec<_>>(),
            &strategy_labels,
            |i, s| {
                let key = format!("{s}@{}", scenarios[i].name);
                f1(by_label[key.as_str()].delivery_rate_percent())
            }
        )
    );

    println!("## Total earning (k) by scenario\n");
    println!(
        "{}",
        bdps_bench::series_table(
            "scenario",
            &scenarios.iter().map(|s| s.name.clone()).collect::<Vec<_>>(),
            &strategy_labels,
            |i, s| {
                let key = format!("{s}@{}", scenarios[i].name);
                f1(by_label[key.as_str()].earning_k())
            }
        )
    );

    println!("## Resilience bookkeeping (EB)\n");
    for scenario in &scenarios {
        let key = format!("EB@{}", scenario.name);
        if let Some(r) = by_label.get(key.as_str()) {
            println!(
                "- {}: requeued {}, unsubscribed-drops {}, duplicates {} (must be 0), phases {}",
                scenario.name,
                r.requeued,
                r.dropped_unsubscribed,
                r.duplicate_deliveries,
                r.phases.len()
            );
        }
    }

    // Phase breakdown of the most dynamic scenario, if it ran.
    if let Some(r) = by_label.get(format!("EB@{}", "chaos").as_str()) {
        println!("\n## EB per-phase breakdown under chaos\n");
        println!("{}", r.phase_table());
    }
}
