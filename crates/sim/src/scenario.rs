//! Dynamic scenarios: timed perturbations injected into a running simulation.
//!
//! The paper's evaluation keeps everything stationary — a fixed subscription
//! population, Poisson publishers at a constant rate, always-healthy links.
//! Real deployments are dominated by exactly the opposite: subscribers come
//! and go, publishers burst, links fail and recover. A [`DynamicScenario`]
//! describes those dynamics declaratively; before the run starts it is
//! [materialised](DynamicScenario::materialize) into a concrete, sorted
//! stream of [`ScenarioEvent`]s using an RNG stream derived from the run's
//! root seed, so a scenario run replays **bit-for-bit** for the same seed.
//!
//! The pieces:
//!
//! * [`ScenarioAction`] / [`ScenarioEvent`] — the primitive mutations the
//!   engine knows how to apply (subscription join/leave, publisher rate
//!   change, link down/up, phase marks for reporting);
//! * [`DynamicScenario`] — a serialisable scenario description combining
//!   explicit events with stochastic processes
//!   ([`ChurnConfig`],
//!   [`BurstConfig`],
//!   [`LinkFailureConfig`],
//!   [`BlackoutWindow`]);
//! * [`ScenarioRegistry`] — name-based lookup mirroring
//!   [`StrategyRegistry`](bdps_core::strategy::StrategyRegistry), so CLI
//!   binaries and config files can say `--scenario chaos`.

use crate::workload::{
    BlackoutWindow, BurstConfig, ChurnConfig, LinkFailureConfig, WorkloadConfig,
};
use bdps_filter::subscription::Subscription;
use bdps_overlay::topology::Topology;
use bdps_stats::rng::SimRng;
use bdps_types::id::{BrokerId, LinkId, PublisherId, SubscriberId, SubscriptionId};
use bdps_types::time::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One primitive mutation the simulation engine can apply mid-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioAction {
    /// A new subscription joins at the given edge broker. The subscription is
    /// fully materialised (id, filter, QoS) so replays are exact.
    SubscriptionJoin {
        /// The joining subscription.
        subscription: Subscription,
        /// The broker the new subscriber attaches to.
        broker: BrokerId,
    },
    /// An existing subscription leaves the system. Queued copies lose the
    /// corresponding target; copies left with no target are discarded.
    SubscriptionLeave {
        /// The departing subscription.
        subscription: SubscriptionId,
    },
    /// Scales a publisher's publishing rate (`None` = every publisher).
    /// `multiplier` 1.0 restores the base rate, 0.0 silences the publisher,
    /// values above 1.0 model bursts.
    PublisherRate {
        /// The affected publisher, or `None` for all.
        publisher: Option<PublisherId>,
        /// The factor applied to the workload's base publishing rate.
        multiplier: f64,
    },
    /// Takes one directed link down. Copies in flight on the link when it
    /// fails are requeued at the sender; queued copies wait (and age) until
    /// the link recovers or they expire. Failures nest: a link downed twice
    /// needs two [`LinkUp`](ScenarioAction::LinkUp)s to recover.
    LinkDown {
        /// The failing link.
        link: LinkId,
    },
    /// Restores one directed link and immediately pumps its queue.
    LinkUp {
        /// The recovering link.
        link: LinkId,
    },
    /// Starts a new reporting phase; per-phase metrics accumulate under this
    /// label until the next mark (see `SimulationReport::phases`).
    PhaseMark {
        /// Free-form phase label ("burst", "blackout", ...).
        label: String,
    },
}

impl ScenarioAction {
    /// A short stable label identifying the action — used in event labels and
    /// state digests by the model-checking explorer (`join:f3@b1`,
    /// `leave:f3`, `rate:p0:2`, `rate:all:0.5`, `link-down:l2`, `link-up:l2`,
    /// `phase:<label>`).
    pub fn label(&self) -> String {
        match self {
            ScenarioAction::SubscriptionJoin {
                subscription,
                broker,
            } => format!("join:f{}@b{}", subscription.id.index(), broker.index()),
            ScenarioAction::SubscriptionLeave { subscription } => {
                format!("leave:f{}", subscription.index())
            }
            ScenarioAction::PublisherRate {
                publisher,
                multiplier,
            } => match publisher {
                Some(p) => format!("rate:p{}:{}", p.index(), multiplier),
                None => format!("rate:all:{}", multiplier),
            },
            ScenarioAction::LinkDown { link } => format!("link-down:l{}", link.index()),
            ScenarioAction::LinkUp { link } => format!("link-up:l{}", link.index()),
            ScenarioAction::PhaseMark { label } => format!("phase:{}", label),
        }
    }
}

/// A [`ScenarioAction`] scheduled at an offset from the start of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// When the action fires, relative to simulation start.
    pub at: Duration,
    /// What happens.
    pub action: ScenarioAction,
}

/// A declarative description of a run's dynamics.
///
/// The default scenario is **static** — no events, matching the paper's
/// evaluation exactly. Explicit events and stochastic processes compose
/// freely; everything is expanded by [`materialize`](Self::materialize)
/// before the run starts, so the same `(scenario, topology, workload, seed)`
/// quadruple always yields the same event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicScenario {
    /// Display name carried into reports ("static", "chaos", ...).
    pub name: String,
    /// Explicit, hand-placed events.
    pub events: Vec<ScenarioEvent>,
    /// Subscription churn process, if any.
    pub churn: Option<ChurnConfig>,
    /// Publisher burst (MMPP) process, if any.
    pub bursts: Option<BurstConfig>,
    /// Random link failure process, if any.
    pub link_failures: Option<LinkFailureConfig>,
    /// Explicit all-links-down windows.
    pub blackouts: Vec<BlackoutWindow>,
}

impl Default for DynamicScenario {
    fn default() -> Self {
        DynamicScenario::named("static")
    }
}

impl fmt::Display for DynamicScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl DynamicScenario {
    /// An empty scenario with the given display name.
    pub fn named(name: impl Into<String>) -> Self {
        DynamicScenario {
            name: name.into(),
            events: Vec::new(),
            churn: None,
            bursts: None,
            link_failures: None,
            blackouts: Vec::new(),
        }
    }

    /// The static scenario (no dynamics) — the paper's evaluation setting.
    pub fn static_scenario() -> Self {
        Self::default()
    }

    /// Adds an explicit event at the given offset.
    pub fn at(mut self, at: Duration, action: ScenarioAction) -> Self {
        self.events.push(ScenarioEvent { at, action });
        self
    }

    /// Enables a subscription churn process.
    pub fn with_churn(mut self, churn: ChurnConfig) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Enables an MMPP-style publisher burst process.
    ///
    /// The burst process **owns the global publisher-rate channel**: it
    /// emits absolute `PublisherRate` events (the burst multiplier at each
    /// window start, 1.0 at each end). An explicit
    /// [`PublisherRate`](ScenarioAction::PublisherRate) event placed inside
    /// a sampled burst window is therefore overwritten when the window
    /// closes — combine explicit rate control with bursts only for
    /// per-publisher overrides you re-assert after each burst, or model the
    /// lull as its own scenario without the burst process.
    pub fn with_bursts(mut self, bursts: BurstConfig) -> Self {
        self.bursts = Some(bursts);
        self
    }

    /// Enables a random link failure process.
    pub fn with_link_failures(mut self, failures: LinkFailureConfig) -> Self {
        self.link_failures = Some(failures);
        self
    }

    /// Adds an all-links-down window.
    pub fn with_blackout(mut self, window: BlackoutWindow) -> Self {
        self.blackouts.push(window);
        self
    }

    /// Returns true when the scenario introduces no dynamics at all.
    pub fn is_static(&self) -> bool {
        self.events.is_empty()
            && self.churn.is_none()
            && self.bursts.is_none()
            && self.link_failures.is_none()
            && self.blackouts.is_empty()
    }

    /// Expands the scenario into a concrete event stream over the workload's
    /// publication period, sorted by time (stable for simultaneous events).
    ///
    /// All randomness comes from `rng`; the caller derives it from the run's
    /// root seed, which is what makes scenario runs replayable. Subscription
    /// ids for churn joins are allocated densely above the initial population
    /// (`topology.subscribers.len()`), matching the engine's numbering.
    pub fn materialize(
        &self,
        topology: &Topology,
        workload: &WorkloadConfig,
        rng: &mut SimRng,
    ) -> Vec<ScenarioEvent> {
        let horizon = workload.duration;
        let mut out: Vec<ScenarioEvent> = self.events.clone();

        // Blackout windows: a phase mark, then every link down; the reverse
        // on recovery. Emission order at equal times is preserved by the
        // stable sort below, so the engine sees the mark first and can
        // coalesce the link flood into one routing rebuild.
        let all_links: Vec<LinkId> = topology.graph.links().map(|l| l.id).collect();
        for window in &self.blackouts {
            let (start, end) = window.resolve(horizon);
            out.push(ScenarioEvent {
                at: start,
                action: ScenarioAction::PhaseMark {
                    label: "blackout".into(),
                },
            });
            for &link in &all_links {
                out.push(ScenarioEvent {
                    at: start,
                    action: ScenarioAction::LinkDown { link },
                });
            }
            for &link in &all_links {
                out.push(ScenarioEvent {
                    at: end,
                    action: ScenarioAction::LinkUp { link },
                });
            }
            out.push(ScenarioEvent {
                at: end,
                action: ScenarioAction::PhaseMark {
                    label: "restored".into(),
                },
            });
        }

        // Publisher bursts: rate up at each window start, back to base at the
        // end, with phase marks so the report shows the burst separately.
        if let Some(bursts) = &self.bursts {
            for (start, end) in bursts.sample_windows(horizon, rng) {
                out.push(ScenarioEvent {
                    at: start,
                    action: ScenarioAction::PhaseMark {
                        label: "burst".into(),
                    },
                });
                out.push(ScenarioEvent {
                    at: start,
                    action: ScenarioAction::PublisherRate {
                        publisher: None,
                        multiplier: bursts.multiplier,
                    },
                });
                out.push(ScenarioEvent {
                    at: end,
                    action: ScenarioAction::PublisherRate {
                        publisher: None,
                        multiplier: 1.0,
                    },
                });
                out.push(ScenarioEvent {
                    at: end,
                    action: ScenarioAction::PhaseMark {
                        label: "calm".into(),
                    },
                });
            }
        }

        // Subscription churn: joins and leaves are independent Poisson
        // streams; a leave picks uniformly among the subscriptions active at
        // that instant (initial population plus earlier joins, minus earlier
        // leaves), so the process never targets an absent subscription.
        if let Some(churn) = &self.churn {
            let joins = ChurnConfig::poisson_instants(churn.joins_per_min, horizon, rng);
            let leaves = ChurnConfig::poisson_instants(churn.leaves_per_min, horizon, rng);
            let edges = topology.graph.edge_brokers();
            let initial = topology.subscribers.len() as u32;
            let mut active: Vec<SubscriptionId> = (0..initial).map(SubscriptionId::new).collect();
            let mut next_id = initial;
            let (mut ji, mut li) = (0usize, 0usize);
            while ji < joins.len() || li < leaves.len() {
                let join_next = ji < joins.len() && (li >= leaves.len() || joins[ji] <= leaves[li]);
                if join_next {
                    if !edges.is_empty() {
                        let broker = edges[rng.uniform_usize(0, edges.len())];
                        let id = SubscriptionId::new(next_id);
                        let subscriber = SubscriberId::new(next_id);
                        next_id += 1;
                        let subscription = workload.generate_subscription(id, subscriber, rng);
                        active.push(id);
                        out.push(ScenarioEvent {
                            at: joins[ji],
                            action: ScenarioAction::SubscriptionJoin {
                                subscription,
                                broker,
                            },
                        });
                    }
                    ji += 1;
                } else {
                    if !active.is_empty() {
                        let idx = rng.uniform_usize(0, active.len());
                        let id = active.remove(idx);
                        out.push(ScenarioEvent {
                            at: leaves[li],
                            action: ScenarioAction::SubscriptionLeave { subscription: id },
                        });
                    }
                    li += 1;
                }
            }
        }

        // Random link failures: each failure takes a random broker pair down
        // in both directions for the sampled repair time. Overlapping windows
        // on the same link nest via the engine's down-depth counter.
        if let Some(failures) = &self.link_failures {
            let links: Vec<(LinkId, BrokerId, BrokerId)> = topology
                .graph
                .links()
                .map(|l| (l.id, l.from, l.to))
                .collect();
            if !links.is_empty() {
                for (start, end) in failures.sample_windows(horizon, rng) {
                    let (link, from, to) = links[rng.uniform_usize(0, links.len())];
                    let mut pair = vec![link];
                    if let Some(reverse) = topology.graph.link_between(to, from) {
                        pair.push(reverse.id);
                    }
                    for &l in &pair {
                        out.push(ScenarioEvent {
                            at: start,
                            action: ScenarioAction::LinkDown { link: l },
                        });
                    }
                    for &l in &pair {
                        out.push(ScenarioEvent {
                            at: end,
                            action: ScenarioAction::LinkUp { link: l },
                        });
                    }
                }
            }
        }

        out.sort_by_key(|e| e.at);
        out
    }
}

type ScenarioFactory = Box<dyn Fn() -> DynamicScenario + Send + Sync>;

struct RegistryEntry {
    name: String,
    aliases: Vec<String>,
    factory: ScenarioFactory,
}

/// Name-based scenario lookup for command-line binaries and sweeps,
/// mirroring [`StrategyRegistry`](bdps_core::strategy::StrategyRegistry):
/// case-insensitive canonical names plus aliases, open for user
/// registrations, later registrations shadowing earlier ones.
pub struct ScenarioRegistry {
    entries: Vec<RegistryEntry>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ScenarioRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry with every built-in scenario:
    ///
    /// | name | dynamics |
    /// |------|----------|
    /// | `static` | none (the paper's setting) |
    /// | `churn` | subscription joins and leaves, one of each per minute |
    /// | `flash-crowd` | MMPP publisher bursts at 4× the base rate |
    /// | `link-flap` | random link failures, ~30 s downtime each |
    /// | `link-storm` | a failure every ~2 s, overlapping ~5 s outages |
    /// | `blackout` | every link down for the middle 15% of the run |
    /// | `chaos` | churn + flash-crowd + link-flap combined |
    pub fn builtin() -> Self {
        let mut r = ScenarioRegistry::new();
        r.register("static", DynamicScenario::static_scenario);
        r.register_with_aliases("churn", &["subscription-churn"], || {
            DynamicScenario::named("churn").with_churn(ChurnConfig::moderate())
        });
        r.register_with_aliases("flash-crowd", &["bursts", "burst"], || {
            DynamicScenario::named("flash-crowd").with_bursts(BurstConfig::flash_crowd())
        });
        r.register_with_aliases("link-flap", &["link-failures"], || {
            DynamicScenario::named("link-flap").with_link_failures(LinkFailureConfig::flaky())
        });
        r.register_with_aliases("link-storm", &["flap-storm", "storm"], || {
            DynamicScenario::named("link-storm").with_link_failures(LinkFailureConfig::storm())
        });
        r.register("blackout", || {
            DynamicScenario::named("blackout").with_blackout(BlackoutWindow {
                start_frac: 0.4,
                duration_frac: 0.15,
            })
        });
        r.register_with_aliases("chaos", &["all", "everything"], || {
            DynamicScenario::named("chaos")
                .with_churn(ChurnConfig::moderate())
                .with_bursts(BurstConfig::flash_crowd())
                .with_link_failures(LinkFailureConfig::flaky())
        });
        r
    }

    /// Registers a scenario factory under a canonical name.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> DynamicScenario + Send + Sync + 'static,
    ) {
        self.register_with_aliases(name, &[], factory);
    }

    /// Registers a scenario factory under a canonical name plus aliases.
    pub fn register_with_aliases(
        &mut self,
        name: impl Into<String>,
        aliases: &[&str],
        factory: impl Fn() -> DynamicScenario + Send + Sync + 'static,
    ) {
        self.entries.push(RegistryEntry {
            name: name.into().to_ascii_lowercase(),
            aliases: aliases.iter().map(|a| a.to_ascii_lowercase()).collect(),
            factory: Box::new(factory),
        });
    }

    /// Resolves a name (canonical, alias or scenario display name,
    /// case-insensitive) to a fresh scenario.
    pub fn resolve(&self, name: &str) -> Option<DynamicScenario> {
        let wanted = name.to_ascii_lowercase();
        for entry in self.entries.iter().rev() {
            if entry.name == wanted || entry.aliases.contains(&wanted) {
                return Some((entry.factory)());
            }
        }
        for entry in self.entries.iter().rev() {
            if (entry.factory)().name.to_ascii_lowercase() == wanted {
                return Some((entry.factory)());
            }
        }
        None
    }

    /// The canonical names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        ScenarioRegistry::builtin()
    }
}

impl fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdps_net::bandwidth::FixedRate;
    use bdps_net::link::LinkQuality;
    use bdps_overlay::topology::LayeredMeshConfig;

    fn topo(seed: u64) -> Topology {
        Topology::layered_mesh(
            &LayeredMeshConfig::small(),
            &mut SimRng::seed_from(seed),
            |_rng| LinkQuality::new(FixedRate::new(10.0)),
        )
        .unwrap()
    }

    fn workload() -> WorkloadConfig {
        let mut w = WorkloadConfig::paper_ssd(6.0);
        w.duration = Duration::from_secs(1_200);
        w
    }

    #[test]
    fn static_scenario_materialises_to_nothing() {
        let s = DynamicScenario::static_scenario();
        assert!(s.is_static());
        let events = s.materialize(&topo(1), &workload(), &mut SimRng::seed_from(2));
        assert!(events.is_empty());
    }

    #[test]
    fn materialisation_is_deterministic_and_sorted() {
        let s = DynamicScenario::named("chaos")
            .with_churn(ChurnConfig::moderate())
            .with_bursts(BurstConfig::flash_crowd())
            .with_link_failures(LinkFailureConfig::flaky());
        assert!(!s.is_static());
        let a = s.materialize(&topo(1), &workload(), &mut SimRng::seed_from(3));
        let b = s.materialize(&topo(1), &workload(), &mut SimRng::seed_from(3));
        assert_eq!(a, b, "same seed must materialise identically");
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "must be sorted");
        let c = s.materialize(&topo(1), &workload(), &mut SimRng::seed_from(4));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn churn_leaves_only_target_active_subscriptions() {
        let s = DynamicScenario::named("churn").with_churn(ChurnConfig {
            joins_per_min: 3.0,
            leaves_per_min: 3.0,
        });
        let topology = topo(5);
        let events = s.materialize(&topology, &workload(), &mut SimRng::seed_from(6));
        let initial = topology.subscribers.len() as u32;
        let mut active: std::collections::HashSet<u32> = (0..initial).collect();
        for e in &events {
            match &e.action {
                ScenarioAction::SubscriptionJoin {
                    subscription,
                    broker,
                } => {
                    assert!(subscription.id.raw() >= initial, "fresh ids only");
                    assert!(topology.graph.broker(*broker).is_edge());
                    assert!(active.insert(subscription.id.raw()), "no id reuse");
                }
                ScenarioAction::SubscriptionLeave { subscription } => {
                    assert!(
                        active.remove(&subscription.raw()),
                        "leave of inactive subscription {subscription:?}"
                    );
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    #[test]
    fn blackout_takes_every_link_down_and_up() {
        let topology = topo(7);
        let s = DynamicScenario::named("blackout").with_blackout(BlackoutWindow {
            start_frac: 0.5,
            duration_frac: 0.25,
        });
        let events = s.materialize(&topology, &workload(), &mut SimRng::seed_from(8));
        let n_links = topology.graph.link_count();
        let downs = events
            .iter()
            .filter(|e| matches!(e.action, ScenarioAction::LinkDown { .. }))
            .count();
        let ups = events
            .iter()
            .filter(|e| matches!(e.action, ScenarioAction::LinkUp { .. }))
            .count();
        let marks = events
            .iter()
            .filter(|e| matches!(e.action, ScenarioAction::PhaseMark { .. }))
            .count();
        assert_eq!(downs, n_links);
        assert_eq!(ups, n_links);
        assert_eq!(marks, 2);
        // The phase mark at the window start sorts before the link flood.
        let first_at_start = events
            .iter()
            .find(|e| e.at == Duration::from_secs(600))
            .unwrap();
        assert!(matches!(
            first_at_start.action,
            ScenarioAction::PhaseMark { .. }
        ));
    }

    #[test]
    fn link_failures_take_both_directions_down() {
        let topology = topo(9);
        let s = DynamicScenario::named("flap").with_link_failures(LinkFailureConfig::flaky());
        let events = s.materialize(&topology, &workload(), &mut SimRng::seed_from(10));
        let downs: Vec<LinkId> = events
            .iter()
            .filter_map(|e| match e.action {
                ScenarioAction::LinkDown { link } => Some(link),
                _ => None,
            })
            .collect();
        let ups: Vec<LinkId> = events
            .iter()
            .filter_map(|e| match e.action {
                ScenarioAction::LinkUp { link } => Some(link),
                _ => None,
            })
            .collect();
        assert!(!downs.is_empty());
        // Every failure is paired: equally many downs and ups per link.
        let mut down_counts = std::collections::HashMap::new();
        for l in &downs {
            *down_counts.entry(*l).or_insert(0i64) += 1;
        }
        for l in &ups {
            *down_counts.entry(*l).or_insert(0) -= 1;
        }
        assert!(down_counts.values().all(|&c| c == 0));
    }

    #[test]
    fn registry_resolves_builtins_and_custom_registrations() {
        let registry = ScenarioRegistry::builtin();
        let names = registry.names();
        for expected in [
            "static",
            "churn",
            "flash-crowd",
            "link-flap",
            "blackout",
            "chaos",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
            let s = registry.resolve(expected).unwrap();
            assert_eq!(s.name, expected);
        }
        // Aliases and case-insensitivity.
        assert_eq!(registry.resolve("BURSTS").unwrap().name, "flash-crowd");
        assert_eq!(registry.resolve("ALL").unwrap().name, "chaos");
        assert!(registry.resolve("bogus").is_none());
        assert!(registry.resolve("static").unwrap().is_static());
        assert!(!registry.resolve("chaos").unwrap().is_static());

        let mut registry = registry;
        registry.register("my-chaos", || {
            DynamicScenario::named("my-chaos").with_churn(ChurnConfig::moderate())
        });
        assert!(registry.resolve("my-chaos").is_some());
        // Shadowing: a later "churn" registration wins.
        registry.register("churn", DynamicScenario::static_scenario);
        assert!(registry.resolve("churn").unwrap().is_static());
    }

    #[test]
    fn explicit_events_survive_materialisation() {
        let s = DynamicScenario::named("handmade")
            .at(
                Duration::from_secs(10),
                ScenarioAction::PublisherRate {
                    publisher: Some(PublisherId::new(0)),
                    multiplier: 0.0,
                },
            )
            .at(
                Duration::from_secs(5),
                ScenarioAction::PhaseMark {
                    label: "early".into(),
                },
            );
        let events = s.materialize(&topo(1), &workload(), &mut SimRng::seed_from(1));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, Duration::from_secs(5), "sorted by time");
    }
}
