//! Sharded multi-core executor with conservative time windows.
//!
//! The sequential engine ([`crate::engine`]) pops one global event queue in
//! `(time, key)` order. This module partitions the brokers into `N`
//! contiguous shards — each owning a per-shard event queue, the broker
//! states homed to it, and the RNG streams of the publishers and links homed
//! to it — and advances the shards on worker threads under **conservative
//! time-window synchronisation** in the PDES sense: the processing delay
//! `PD` is a lookahead bound, so all events in a window `[t₀, t₀ + PD)` can
//! be processed shard-locally and any cross-shard event they generate lands
//! at or after the window's end, where the coordinator merges the shards'
//! outboxes deterministically before opening the next window.
//!
//! # Why the N-shard run is bit-identical to the sequential run
//!
//! * **Disjoint state.** Every traffic handler touches only the state of the
//!   entity that owns the event — the publisher's RNG/counter for `Publish`,
//!   the broker for `Process`, the link and its *sender* broker for
//!   `SendComplete`/`try_send` — plus read-only shared context (topology,
//!   routing tables, the global filter index). Publishers are homed with
//!   their broker and links with their sender, so a shard's window never
//!   writes another shard's state.
//! * **Lookahead.** The only cross-shard edge is the `Process` event a
//!   completed transfer schedules at the *receiving* broker, always at
//!   `t + PD`. A window whose pop limit is `t₀ + PD − 1µs` therefore only
//!   produces cross-shard events strictly after the limit, which the next
//!   window's merge delivers before they are due: no shard ever misses an
//!   event, regardless of interleaving.
//! * **Entity-owned RNG streams.** Publication gaps, message content and
//!   transfer times are drawn from per-entity streams derived from the seed
//!   alone, so the draw sequences are independent of how events of *other*
//!   entities interleave — each shard replays exactly the draws the
//!   sequential run makes.
//! * **Ordered effect replay.** Global accumulations whose result is
//!   order-sensitive (the objective tracker's floating-point earning/delay
//!   sums, the per-phase delay summaries) are not updated by workers.
//!   Handlers emit an *effect log* entry stamped with the event's canonical
//!   `(time, key)` and a per-event emission index; at every window barrier
//!   the coordinator sorts the union of the logs by `(time, key, idx)` —
//!   the exact order the sequential loop applies them in — and replays them
//!   into the shared accumulators.
//! * **Scenario barriers.** Scenario events (rank-0 keys, always applied
//!   before same-instant traffic) mutate genuinely global state: routing,
//!   subscription tables, the shared population registry. The coordinator
//!   stops the windows before each scenario instant, gathers the shards
//!   back into the [`Simulation`], applies the instant's scenario batch
//!   through the engine's own [`Simulation::try_apply`] (so rebuild
//!   coalescing, churn and phase accounting run the exact sequential code),
//!   then scatters the state out again.
//!
//! Fields the engine's outcome exposes for *introspection* rather than for
//! the paper's metrics — the peak queue length and the scope-interner
//! hit-rate — are queue-shape-dependent and may differ from the sequential
//! run; everything [`crate::report::SimulationReport`] is built from is
//! reproduced exactly. The `fault-injection` test feature is not wired
//! through the sharded path; the model-checking explorer drives the
//! sequential loop.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;

use bdps_core::broker::BrokerState;
use bdps_core::objective::ObjectiveTracker;
use bdps_core::queue::QueuedMessage;
use bdps_filter::scope::{ScopeInterner, ScopeSet};
use bdps_stats::rng::SimRng;
use bdps_stats::summary::Summary;
use bdps_types::id::{BrokerId, LinkId, MessageId, PublisherId, SubscriberId, SubscriptionId};
use bdps_types::message::Message;
use bdps_types::money::Price;
use bdps_types::time::{Duration, SimTime};
use std::sync::Arc;

use bdps_net::linkmodel::{LinkModel, LinkModelKind};

use crate::engine::{
    key, EventKind, LinkLoad, PhaseOutcome, SimError, Simulation, SimulationOutcome,
};
use crate::sched::{EventQueue, Scheduled};

/// Windows pop up to `W1 − ε` inclusive; one microsecond is the clock's
/// resolution, so `W1 − ε` is "strictly before `W1`".
const EPSILON: Duration = Duration::from_micros(1);

/// Runs the simulation on `shards` worker threads, panicking on the failures
/// [`try_run_sharded`] surfaces as [`SimError`] (mirrors
/// [`Simulation::run`]).
pub fn run_sharded(sim: Simulation, shards: usize) -> SimulationOutcome {
    match try_run_sharded(sim, shards) {
        Ok(outcome) => outcome,
        Err(e) => panic!("{e}"),
    }
}

/// Runs the simulation partitioned into `shards` broker shards advanced by
/// worker threads, producing a [`SimulationOutcome`] whose report is
/// bit-identical to the sequential [`Simulation::try_run`].
///
/// Falls back to the sequential loop when sharding cannot help or the
/// lookahead bound is void: one shard requested, fewer brokers than would
/// fill two shards, or a zero processing delay (no lookahead).
///
/// # Errors
///
/// Returns [`SimError::ShardedLinkModelUnsupported`] when more than one
/// shard would actually run and the configured link model is not the
/// constant-delay oracle: a sharing model's completion re-scheduling can
/// *move* an already-scheduled completion, so a cross-shard `Process`
/// arrival is no longer pinned at `t + PD` and the conservative window
/// argument above does not hold. Aggregate-scoped forwarding is likewise
/// rejected ([`SimError::ShardedForwardingUnsupported`]): edge expansion
/// reads the shared population registry at delivery time, racing churn
/// applied by sibling shards.
pub fn try_run_sharded(mut sim: Simulation, shards: usize) -> Result<SimulationOutcome, SimError> {
    sim.build_brokers();
    let pd = sim.scheduler.processing_delay;
    let n = shards.min(sim.brokers.len());
    if n <= 1 || pd == Duration::ZERO {
        return sim.try_run();
    }
    if sim.link_model_kind != LinkModelKind::Constant {
        return Err(SimError::ShardedLinkModelUnsupported {
            model: sim.link_model_kind.name(),
        });
    }
    if sim.forwarding == crate::engine::ForwardingMode::Aggregate {
        // Edge expansion reads the shared population registry at delivery
        // time; a shard expanding while another applies churn inside the
        // same conservative window would race — reject instead of
        // silently diverging from the sequential run.
        return Err(SimError::ShardedForwardingUnsupported);
    }

    let homes = Homes::build(&sim, n);
    let hard_stop = sim.hard_stop();
    let (mut cores, mut scenario_q) = init_cores(&mut sim, &homes, n);

    let mut cursor = 0usize;
    loop {
        let t_scen = scenario_q
            .get(cursor)
            .map(|e| e.time)
            .filter(|&t| t <= hard_stop);
        let t_traffic = cores
            .iter()
            .filter_map(ShardCore::peek_time)
            .filter(|&t| t <= hard_stop)
            .min();
        match (t_scen, t_traffic) {
            (None, None) => break,
            // Scenario keys rank lowest, so at an equal instant the scenario
            // batch applies before any traffic — exactly the sequential
            // pop order.
            (Some(ts), tt) if tt.is_none_or(|t| ts <= t) => {
                apply_scenario_instant(&mut sim, &mut cores, &scenario_q, &mut cursor, ts, &homes)?;
            }
            _ => run_era(&mut sim, &mut cores, &homes, t_scen, hard_stop, pd)?,
        }
    }

    // Finalise: gather the shards back, return unprocessed events (past the
    // hard stop) to the global queue so the end-of-run conservation
    // accounting sees them, and advance the clock to the last applied event.
    gather(&mut sim, &mut cores, &homes);
    for core in &mut cores {
        while let Some(e) = core.events.pop() {
            sim.events.push(e);
        }
        sim.events_processed += core.events_processed;
        sim.peak_pending_events = sim.peak_pending_events.max(core.peak_pending);
        sim.now = sim.now.max(core.last_time);
    }
    for e in scenario_q.drain(cursor..) {
        sim.events.push(e);
    }
    Ok(sim.into_outcome())
}

/// Where every entity lives: shard of each broker (contiguous blocks), of
/// each publisher (its broker's shard) and of each link (its *sender*'s
/// shard, because `SendComplete` and `try_send` touch the sender's queue).
struct Homes {
    shard_of_broker: Vec<usize>,
    publisher: Vec<usize>,
    link: Vec<usize>,
    broker_lo: Vec<usize>,
    broker_count: Vec<usize>,
}

impl Homes {
    fn build(sim: &Simulation, n: usize) -> Homes {
        let b = sim.brokers.len();
        let shard_of_broker: Vec<usize> = (0..b).map(|i| i * n / b).collect();
        let mut broker_lo = vec![0usize; n];
        let mut broker_count = vec![0usize; n];
        for (i, &s) in shard_of_broker.iter().enumerate() {
            if broker_count[s] == 0 {
                broker_lo[s] = i;
            }
            broker_count[s] += 1;
        }
        let mut publisher = vec![0usize; sim.publisher_rng.len()];
        for (p, broker) in &sim.topology.publishers {
            publisher[p.index()] = shard_of_broker[broker.index()];
        }
        let mut link = vec![0usize; sim.link_rng.len()];
        for l in sim.topology.graph.links() {
            link[l.id.index()] = shard_of_broker[l.from.index()];
        }
        Homes {
            shard_of_broker,
            publisher,
            link,
            broker_lo,
            broker_count,
        }
    }
}

/// The state one shard owns outright: its brokers, its event queue, and the
/// RNG streams / counters of the publishers and links homed to it.
///
/// `publisher_rng`, `link_rng`, `next_message`, `link_busy`,
/// `link_last_change` and `link_load` are full-length vectors for direct
/// indexing; only the slots of entities homed to this shard are live (the
/// rest hold inert placeholders), and only live slots are exchanged with the
/// [`Simulation`] at gather/scatter.
struct ShardCore {
    shard: usize,
    broker_lo: usize,
    brokers: Vec<BrokerState>,
    events: Box<dyn EventQueue<EventKind> + Send>,
    publisher_rng: Vec<SimRng>,
    link_rng: Vec<SimRng>,
    next_message: Vec<u64>,
    link_busy: Vec<bool>,
    link_last_change: Vec<SimTime>,
    link_load: Vec<LinkLoad>,
    scope_interner: ScopeInterner,
    scope_scratch: Vec<SubscriptionId>,
    effects: Vec<Logged>,
    outbox: Vec<Scheduled<EventKind>>,
    events_processed: u64,
    peak_pending: usize,
    last_time: SimTime,
    /// `(time, key)` of the event currently being applied and the index of
    /// the next effect it emits — the canonical replay coordinates.
    cur_time: SimTime,
    cur_key: u64,
    effect_idx: u32,
}

/// Read-only context shared by every worker for one era: the simulation
/// state that only scenario barriers mutate.
#[derive(Clone, Copy)]
struct ShardGlobals<'a> {
    topology: &'a bdps_overlay::topology::Topology,
    global_index: &'a bdps_filter::index::MatchIndex,
    workload: &'a crate::workload::WorkloadConfig,
    /// Always the constant-delay oracle (the guard in [`try_run_sharded`]
    /// rejects sharing models), but sampling still goes through the trait so
    /// the sharded path has no second transfer-time code path.
    link_model: &'a dyn LinkModel,
    processing_delay: Duration,
    end: SimTime,
    link_of: &'a [Vec<Option<LinkId>>],
    link_down_depth: &'a [u32],
    link_fail_gen: &'a [u64],
    rate_multiplier: &'a [f64],
    publish_gen: &'a [u64],
    shard_of_broker: &'a [usize],
}

/// One order-sensitive global accumulation, deferred out of the worker and
/// replayed by the coordinator in canonical order.
enum Effect {
    /// A message was published with `interested` matching subscriptions.
    Published { message: MessageId, interested: u32 },
    /// A copy reached a subscriber.
    Delivery {
        message: MessageId,
        subscriber: SubscriberId,
        price: Price,
        delay: Duration,
        on_time: bool,
    },
    /// A scheduling decision dropped `count` queued copies.
    Dropped { count: u64 },
    /// A link transmission started.
    Transmission,
    /// A link transmission completed (not voided by a failure).
    CompletedTransfer,
}

/// An [`Effect`] stamped with its canonical replay coordinates: the emitting
/// event's `(time, key)` and the emission index within that event.
struct Logged {
    time: SimTime,
    key: u64,
    idx: u32,
    effect: Effect,
}

/// Builds the per-shard cores and splits the simulation's state into them.
/// Scenario events — coordinator-owned — are returned separately, in
/// `(time, key)` order.
fn init_cores(
    sim: &mut Simulation,
    homes: &Homes,
    n: usize,
) -> (Vec<ShardCore>, Vec<Scheduled<EventKind>>) {
    let slots = sim.publisher_rng.len();
    let links = sim.link_rng.len();
    let mut cores: Vec<ShardCore> = (0..n)
        .map(|shard| ShardCore {
            shard,
            broker_lo: homes.broker_lo[shard],
            brokers: Vec::with_capacity(homes.broker_count[shard]),
            events: sim.queue_kind.create(),
            publisher_rng: (0..slots).map(|_| SimRng::seed_from(0)).collect(),
            link_rng: (0..links).map(|_| SimRng::seed_from(0)).collect(),
            next_message: sim.next_message.clone(),
            link_busy: sim.link_busy.clone(),
            link_last_change: sim.link_last_change.clone(),
            link_load: sim.link_load.clone(),
            scope_interner: ScopeInterner::new(),
            scope_scratch: Vec::new(),
            effects: Vec::new(),
            outbox: Vec::new(),
            events_processed: 0,
            peak_pending: 0,
            last_time: SimTime::ZERO,
            cur_time: SimTime::ZERO,
            cur_key: 0,
            effect_idx: 0,
        })
        .collect();
    scatter(sim, &mut cores, homes);
    let mut scenario_q = Vec::new();
    while let Some(e) = sim.events.pop() {
        if matches!(e.item, EventKind::Scenario { .. }) {
            scenario_q.push(e);
        } else {
            route_event(&mut cores, homes, e);
        }
    }
    (cores, scenario_q)
}

/// Pushes a traffic event into the queue of the shard that owns it.
fn route_event(cores: &mut [ShardCore], homes: &Homes, ev: Scheduled<EventKind>) {
    let shard = match &ev.item {
        EventKind::Publish { publisher, .. } => homes.publisher[publisher.index()],
        EventKind::Process { broker, .. } => homes.shard_of_broker[broker.index()],
        EventKind::SendComplete { link, .. } => homes.link[link.index()],
        EventKind::FlowComplete { link, .. } => homes.link[link.index()],
        EventKind::Scenario { .. } => unreachable!("scenario events are coordinator-owned"),
    };
    let core = &mut cores[shard];
    core.events.push(ev);
    core.peak_pending = core.peak_pending.max(core.events.len());
}

/// Moves the shard-owned state back into the simulation (for a scenario
/// barrier or finalisation). Inverse of [`scatter`].
fn gather(sim: &mut Simulation, cores: &mut [ShardCore], homes: &Homes) {
    debug_assert!(sim.brokers.is_empty(), "gather on an un-scattered sim");
    for core in cores.iter_mut() {
        sim.brokers.append(&mut core.brokers);
        debug_assert!(core.effects.is_empty() && core.outbox.is_empty());
    }
    for (i, &s) in homes.publisher.iter().enumerate() {
        std::mem::swap(&mut sim.publisher_rng[i], &mut cores[s].publisher_rng[i]);
        sim.next_message[i] = cores[s].next_message[i];
    }
    for (i, &s) in homes.link.iter().enumerate() {
        std::mem::swap(&mut sim.link_rng[i], &mut cores[s].link_rng[i]);
        sim.link_busy[i] = cores[s].link_busy[i];
        sim.link_last_change[i] = cores[s].link_last_change[i];
        sim.link_load[i] = cores[s].link_load[i].clone();
    }
}

/// Distributes the simulation's broker states and entity streams out to the
/// shard cores. Inverse of [`gather`].
fn scatter(sim: &mut Simulation, cores: &mut [ShardCore], homes: &Homes) {
    let mut brokers = sim.brokers.drain(..);
    for core in cores.iter_mut() {
        debug_assert!(core.brokers.is_empty());
        core.brokers
            .extend(brokers.by_ref().take(homes.broker_count[core.shard]));
    }
    debug_assert!(brokers.next().is_none());
    drop(brokers);
    for (i, &s) in homes.publisher.iter().enumerate() {
        std::mem::swap(&mut cores[s].publisher_rng[i], &mut sim.publisher_rng[i]);
    }
    for (i, &s) in homes.link.iter().enumerate() {
        std::mem::swap(&mut cores[s].link_rng[i], &mut sim.link_rng[i]);
    }
    for core in cores.iter_mut() {
        core.next_message.copy_from_slice(&sim.next_message);
        core.link_busy.copy_from_slice(&sim.link_busy);
        core.link_last_change.copy_from_slice(&sim.link_last_change);
        core.link_load.clone_from_slice(&sim.link_load);
    }
}

/// Applies the full scenario batch at instant `t` through the engine's own
/// handlers: gather the shards into the simulation, inject the instant's
/// scenario events into the global queue (so the rebuild-coalescing peek
/// sees exactly the same same-instant batch the sequential run would),
/// apply them in key order, then route any follow-up traffic they minted
/// (rate-change publications, post-recovery transfers) and scatter back.
fn apply_scenario_instant(
    sim: &mut Simulation,
    cores: &mut [ShardCore],
    scenario_q: &[Scheduled<EventKind>],
    cursor: &mut usize,
    t: SimTime,
    homes: &Homes,
) -> Result<(), SimError> {
    gather(sim, cores, homes);
    while *cursor < scenario_q.len() && scenario_q[*cursor].time == t {
        sim.events.push(scenario_q[*cursor].clone());
        *cursor += 1;
    }
    loop {
        let next_is_scenario = matches!(
            sim.events.peek(),
            Some((pt, EventKind::Scenario { .. })) if pt == t
        );
        if !next_is_scenario {
            break;
        }
        let e = sim.events.pop().expect("peeked event");
        sim.try_apply(e)?;
    }
    // Whatever the batch scheduled is ordinary traffic owned by some shard;
    // hand it over for the following windows (its times are ≥ t, so the
    // next window cannot have passed it).
    while let Some(e) = sim.events.pop() {
        route_event(cores, homes, e);
    }
    scatter(sim, cores, homes);
    Ok(())
}

/// Runs windows until every pending traffic event is past `hard_stop` or at
/// or beyond the next scenario instant `t_scen`.
///
/// Workers persist for the whole era: each owns a job channel over which the
/// coordinator sends `(core, limit)` and a shared completion channel going
/// back. A window sends only the cores with work at or before the limit;
/// returned cores have their outboxes routed and their effect logs merged —
/// sorted by `(time, key, idx)` — into the order-sensitive accumulators.
fn run_era(
    sim: &mut Simulation,
    cores: &mut Vec<ShardCore>,
    homes: &Homes,
    t_scen: Option<SimTime>,
    hard_stop: SimTime,
    pd: Duration,
) -> Result<(), SimError> {
    let n = cores.len();
    let globals = ShardGlobals {
        topology: &sim.topology,
        global_index: &sim.global_index,
        workload: &sim.workload,
        link_model: &*sim.link_model,
        processing_delay: pd,
        end: sim.end,
        link_of: &sim.link_of,
        link_down_depth: &sim.link_down_depth,
        link_fail_gen: &sim.link_fail_gen,
        rate_multiplier: &sim.rate_multiplier,
        publish_gen: &sim.publish_gen,
        shard_of_broker: &homes.shard_of_broker,
    };
    let tracker = &mut sim.tracker;
    let phases = &mut sim.phases;
    let valid_delays_ms = &mut sim.valid_delays_ms;
    let published = &mut sim.published;
    let transmissions = &mut sim.transmissions;
    let completed_transfers = &mut sim.completed_transfers;

    let mut slots: Vec<Option<ShardCore>> = cores.drain(..).map(Some).collect();

    let result = thread::scope(|s| -> Result<(), SimError> {
        let (done_tx, done_rx) = mpsc::channel::<(usize, Result<ShardCore, String>)>();
        let mut job_tx: Vec<mpsc::SyncSender<(ShardCore, SimTime)>> = Vec::with_capacity(n);
        for shard in 0..n {
            let (tx, rx) = mpsc::sync_channel::<(ShardCore, SimTime)>(1);
            job_tx.push(tx);
            let done = done_tx.clone();
            s.spawn(move || {
                while let Ok((mut core, limit)) = rx.recv() {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        run_core_window(&mut core, &globals, limit);
                        core
                    }));
                    match outcome {
                        Ok(core) => {
                            if done.send((shard, Ok(core))).is_err() {
                                return;
                            }
                        }
                        Err(payload) => {
                            let _ = done.send((shard, Err(panic_message(payload))));
                            return;
                        }
                    }
                }
            });
        }
        drop(done_tx);

        let mut merged: Vec<Logged> = Vec::new();
        loop {
            let t0 = slots
                .iter()
                .filter_map(|c| c.as_ref().and_then(ShardCore::peek_time))
                .min();
            let Some(t0) = t0 else { break };
            if t0 > hard_stop || t_scen.is_some_and(|ts| t0 >= ts) {
                break;
            }
            // Conservative window: every event popped at or before `limit`
            // schedules cross-shard work at ≥ t₀ + PD > limit.
            let mut limit = (t0 + pd) - EPSILON;
            if let Some(ts) = t_scen {
                limit = limit.min(ts - EPSILON);
            }
            limit = limit.min(hard_stop);

            let mut outstanding = 0usize;
            for (shard, tx) in job_tx.iter().enumerate() {
                let due = slots[shard]
                    .as_ref()
                    .and_then(ShardCore::peek_time)
                    .is_some_and(|t| t <= limit);
                if due {
                    let core = slots[shard].take().expect("core is home");
                    if tx.send((core, limit)).is_err() {
                        return Err(SimError::WorkerPanicked {
                            shard,
                            message: "worker exited before the window was dispatched".into(),
                        });
                    }
                    outstanding += 1;
                }
            }
            merged.clear();
            for _ in 0..outstanding {
                let (shard, outcome) = done_rx.recv().map_err(|_| SimError::WorkerPanicked {
                    shard: usize::MAX,
                    message: "all workers exited mid-window".into(),
                })?;
                match outcome {
                    Ok(mut core) => {
                        merged.append(&mut core.effects);
                        slots[shard] = Some(core);
                    }
                    Err(message) => return Err(SimError::WorkerPanicked { shard, message }),
                }
            }
            merged.sort_by_key(|l| (l.time, l.key, l.idx));
            apply_effects(
                &merged,
                tracker,
                phases,
                valid_delays_ms,
                published,
                transmissions,
                completed_transfers,
            );
            for shard in 0..n {
                let outbox = match slots[shard].as_mut() {
                    Some(core) => std::mem::take(&mut core.outbox),
                    None => Vec::new(),
                };
                for ev in outbox {
                    debug_assert!(ev.time > limit, "cross-shard event inside the window");
                    let dest = match &ev.item {
                        EventKind::Process { broker, .. } => homes.shard_of_broker[broker.index()],
                        _ => unreachable!("only Process events cross shards"),
                    };
                    let core = slots[dest].as_mut().expect("destination core is home");
                    core.events.push(ev);
                    core.peak_pending = core.peak_pending.max(core.events.len());
                }
            }
        }
        Ok(())
    });

    cores.extend(slots.into_iter().flatten());
    result
}

/// Replays a window's merged effect log — already in canonical
/// `(time, key, idx)` order — into the order-sensitive accumulators,
/// mirroring the sequential handlers' update order exactly.
#[allow(clippy::too_many_arguments)]
fn apply_effects(
    effects: &[Logged],
    tracker: &mut ObjectiveTracker,
    phases: &mut [PhaseOutcome],
    valid_delays_ms: &mut Summary,
    published: &mut u64,
    transmissions: &mut u64,
    completed_transfers: &mut u64,
) {
    for logged in effects {
        let phase = phases.last_mut().expect("at least one phase");
        match &logged.effect {
            Effect::Published {
                message,
                interested,
            } => {
                *published += 1;
                phase.published += 1;
                tracker.register_message(*message, *interested);
            }
            Effect::Delivery {
                message,
                subscriber,
                price,
                delay,
                on_time,
            } => {
                tracker.record_delivery(*message, *subscriber, *price, *delay, *on_time);
                if *on_time {
                    phase.on_time += 1;
                    phase.delays_ms.observe(delay.as_millis_f64());
                    valid_delays_ms.observe(delay.as_millis_f64());
                } else {
                    phase.late += 1;
                }
            }
            Effect::Dropped { count } => phase.dropped += count,
            Effect::Transmission => {
                *transmissions += 1;
                phase.transmissions += 1;
            }
            Effect::CompletedTransfer => *completed_transfers += 1,
        }
    }
}

/// Pops and applies every event of one shard at or before `limit`,
/// including the shard-local follow-ups those events schedule inside the
/// window.
fn run_core_window(core: &mut ShardCore, g: &ShardGlobals<'_>, limit: SimTime) {
    while let Some(entry) = core.events.pop_if_at_or_before(limit) {
        core.last_time = entry.time;
        core.events_processed += 1;
        core.cur_time = entry.time;
        core.cur_key = entry.seq;
        core.effect_idx = 0;
        match entry.item {
            EventKind::Publish { publisher, gen } => core.on_publish(g, publisher, gen, entry.time),
            EventKind::Process {
                broker,
                message,
                scope,
            } => core.on_process(g, broker, message, scope, entry.time),
            EventKind::SendComplete { link, queued, gen } => {
                core.on_send_complete(g, link, queued, gen, entry.time)
            }
            EventKind::FlowComplete { .. } => {
                unreachable!("sharded execution is guarded to the constant-delay link model")
            }
            EventKind::Scenario { .. } => {
                unreachable!("scenario events never reach a shard queue")
            }
        }
    }
}

/// Extracts a human-readable message from a worker's panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

// The handlers below mirror the sequential engine's exactly (see
// `Simulation::on_publish` and friends); the differences are mechanical:
// broker/RNG state comes from the shard core, global accumulator updates
// become emitted [`Effect`]s, and the one cross-shard schedule — a completed
// transfer's `Process` at the receiving broker — goes to the outbox when
// the receiver is homed elsewhere.
impl ShardCore {
    fn peek_time(&self) -> Option<SimTime> {
        self.events.peek().map(|(t, _)| t)
    }

    fn emit(&mut self, effect: Effect) {
        self.effects.push(Logged {
            time: self.cur_time,
            key: self.cur_key,
            idx: self.effect_idx,
            effect,
        });
        self.effect_idx += 1;
    }

    fn broker_mut(&mut self, broker: BrokerId) -> &mut BrokerState {
        &mut self.brokers[broker.index() - self.broker_lo]
    }

    /// Mirror of the engine's `touch_link` specialised to the exclusive
    /// model the sharded path is guarded to: the flow table is always empty,
    /// so the busy flag *is* the active-flow count.
    fn touch_link(&mut self, li: usize, now: SimTime) {
        let elapsed = now.duration_since(self.link_last_change[li]).as_micros();
        self.link_last_change[li] = now;
        if elapsed == 0 || !self.link_busy[li] {
            return;
        }
        let load = &mut self.link_load[li];
        load.busy_us += elapsed;
        load.flow_time_us += elapsed;
    }

    /// Mirror of the engine's `note_queue_peak`; the sender broker is homed
    /// with the link, so the queue is always shard-local.
    fn note_queue_peak(&mut self, link: LinkId, from: BrokerId, to: BrokerId) {
        let depth = self.brokers[from.index() - self.broker_lo]
            .queue(to)
            .map(|q| q.len() as u64)
            .unwrap_or(0);
        let load = &mut self.link_load[link.index()];
        load.peak_queue = load.peak_queue.max(depth);
    }

    fn push_local(&mut self, time: SimTime, key: u64, kind: EventKind) {
        self.events.push(Scheduled {
            time,
            seq: key,
            item: kind,
        });
        self.peak_pending = self.peak_pending.max(self.events.len());
    }

    fn schedule_next_publication(
        &mut self,
        g: &ShardGlobals<'_>,
        publisher: PublisherId,
        after: SimTime,
    ) {
        let multiplier = g.rate_multiplier[publisher.index()];
        let Some(gap) = g
            .workload
            .next_publication_gap_scaled(multiplier, &mut self.publisher_rng[publisher.index()])
        else {
            return; // zero effective publishing rate: the chain goes dormant
        };
        let t = after + gap;
        if t < g.end {
            let gen = g.publish_gen[publisher.index()];
            self.push_local(
                t,
                key::publish(publisher, gen),
                EventKind::Publish { publisher, gen },
            );
        }
    }

    fn on_publish(
        &mut self,
        g: &ShardGlobals<'_>,
        publisher: PublisherId,
        gen: u64,
        time: SimTime,
    ) {
        if g.publish_gen[publisher.index()] != gen {
            return; // stale event from before a rate change
        }
        let Some(broker) = g.topology.publisher_broker(publisher) else {
            return;
        };
        let counter = self.next_message[publisher.index()];
        self.next_message[publisher.index()] += 1;
        let id = key::message_id(publisher, counter);
        let message = Arc::new(g.workload.generate_message(
            id,
            publisher,
            time,
            &mut self.publisher_rng[publisher.index()],
        ));
        let mut ids = std::mem::take(&mut self.scope_scratch);
        g.global_index.matching_into(&message.head, &mut ids);
        self.emit(Effect::Published {
            message: id,
            interested: ids.len() as u32,
        });
        let scope = self.scope_interner.intern(&ids);
        self.scope_scratch = ids;

        // The publisher's broker is homed with the publisher: local push.
        let done = time + g.processing_delay;
        self.push_local(
            done,
            key::process(None, id),
            EventKind::Process {
                broker,
                message,
                scope,
            },
        );
        self.schedule_next_publication(g, publisher, time);
    }

    fn on_process(
        &mut self,
        g: &ShardGlobals<'_>,
        broker: BrokerId,
        message: Arc<Message>,
        scope: ScopeSet,
        time: SimTime,
    ) {
        let outcome =
            self.broker_mut(broker)
                .handle_arrival_scoped(Arc::clone(&message), time, Some(&scope));
        for d in &outcome.local {
            self.emit(Effect::Delivery {
                message: message.id,
                subscriber: d.subscriber,
                price: d.price,
                delay: d.delay,
                on_time: d.on_time,
            });
        }
        for neighbor in outcome.enqueued_to {
            if let Some(link) = g.link_of[broker.index()][neighbor.index()] {
                self.note_queue_peak(link, broker, neighbor);
            }
            self.try_send(g, broker, neighbor, time);
        }
    }

    fn on_send_complete(
        &mut self,
        g: &ShardGlobals<'_>,
        link: LinkId,
        queued: QueuedMessage,
        gen: u64,
        time: SimTime,
    ) {
        let (from, to) = {
            let l = g.topology.graph.link(link);
            (l.from, l.to)
        };
        let li = link.index();
        self.touch_link(li, time);
        self.link_busy[li] = false;
        if g.link_down_depth[li] != 0 || gen != g.link_fail_gen[li] {
            // Voided transfer: the copy returns to the sender's queue.
            let accepted = self.broker_mut(from).requeue(to, queued);
            debug_assert!(accepted, "sender must have a queue for its own link");
            self.note_queue_peak(link, from, to);
            if g.link_down_depth[li] == 0 {
                self.try_send(g, from, to, time);
            }
            return;
        }
        self.emit(Effect::CompletedTransfer);
        self.link_load[li].completed_transfers += 1;
        let mut ids = std::mem::take(&mut self.scope_scratch);
        ids.clear();
        ids.extend(queued.targets.iter().map(|t| t.subscription));
        let scope = self.scope_interner.intern(&ids);
        self.scope_scratch = ids;
        let done = time + g.processing_delay;
        let ev = Scheduled {
            time: done,
            seq: key::process(Some(link), queued.message.id),
            item: EventKind::Process {
                broker: to,
                message: queued.message,
                scope,
            },
        };
        // The one cross-shard edge: the receiving broker may be homed
        // elsewhere. `done = t + PD ≥ W1` lands beyond the window limit, so
        // the barrier merge delivers it before it is due.
        if g.shard_of_broker[to.index()] == self.shard {
            self.events.push(ev);
            self.peak_pending = self.peak_pending.max(self.events.len());
        } else {
            self.outbox.push(ev);
        }
        // Keep the link busy with the next scheduled message, if any.
        self.try_send(g, from, to, time);
    }

    fn try_send(&mut self, g: &ShardGlobals<'_>, from: BrokerId, to: BrokerId, now: SimTime) {
        let Some(link) = g.link_of[from.index()][to.index()] else {
            return;
        };
        let li = link.index();
        if self.link_busy[li] || g.link_down_depth[li] != 0 {
            return;
        }
        let decision = self.broker_mut(from).next_to_send(to, now);
        if !decision.dropped.is_empty() {
            self.emit(Effect::Dropped {
                count: decision.dropped.len() as u64,
            });
        }
        let Some(queued) = decision.message else {
            return;
        };
        let transfer = {
            let l = g.topology.graph.link(link);
            g.link_model
                .sample_transfer(&l.quality, queued.message.size_kb, &mut self.link_rng[li])
        };
        self.touch_link(li, now);
        self.link_busy[li] = true;
        let load = &mut self.link_load[li];
        load.transmissions += 1;
        load.peak_flows = load.peak_flows.max(1);
        self.emit(Effect::Transmission);
        let gen = g.link_fail_gen[li];
        self.push_local(
            now + transfer,
            key::send(link, queued.message.id),
            EventKind::SendComplete { link, queued, gen },
        );
    }
}
