//! # bdps-sim
//!
//! The discrete-event simulator that reproduces the paper's evaluation
//! (§6): it builds an overlay topology, populates publishers and subscribers
//! according to the workload description of §6.1, drives every broker's
//! [`bdps_core::BrokerState`] through publish / arrival / transmission
//! events, and reports the paper's three metrics — delivery rate, total
//! earning and message number.
//!
//! * [`workload`] — workload configuration and generators (publishing rate,
//!   message heads, subscription filters, PSD/SSD delay requirements);
//! * [`engine`] — the event-driven simulation core (event queue, link
//!   occupancy, broker driving, objective tracking);
//! * [`sched`] — pluggable event schedulers behind the [`EventQueue`]
//!   trait: the `O(log n)` binary-heap reference and the `O(1)`-amortised
//!   calendar queue used by default, popping in bit-identical order;
//! * [`scenario`] — dynamic scenarios (subscription churn, publisher
//!   bursts, link failures, blackouts) materialised into a deterministic
//!   event stream, plus the name-based [`ScenarioRegistry`];
//! * [`builder`] — the fluent [`SimulationBuilder`] experiment API
//!   (`Simulation::builder().topology(..).workload(..).strategy(..).scenario(..).seed(..)`),
//!   the one place runs are assembled;
//! * [`runner`] — thin wrappers over the builder: one-call execution of a
//!   materialised config plus parallel parameter sweeps across strategies,
//!   rates and seeds;
//! * [`report`] — result records and Markdown/CSV rendering helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod engine;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sched;
pub mod shard;
pub mod workload;

pub use bdps_net::linkmodel::{LinkModel, LinkModelKind, LinkModelRegistry};
pub use bdps_overlay::sparse::TableLayout;
pub use builder::SimulationBuilder;
#[cfg(feature = "fault-injection")]
pub use engine::InjectedFault;
pub use engine::{
    ConservationBalance, ConservationViolation, DuplicateDeliveryViolation, ForwardingMode,
    LinkLoad, PhaseOutcome, RebuildPolicy, SimError, Simulation, SimulationOutcome,
};
pub use report::{render_csv, render_markdown_table, LinkReport, PhaseReport, SimulationReport};
pub use runner::{run, sweep, SimulationConfig, SweepCell, TopologySpec};
pub use scenario::{DynamicScenario, ScenarioAction, ScenarioEvent, ScenarioRegistry};
pub use sched::{BinaryHeapQueue, CalendarQueue, EventQueue, EventQueueKind, Scheduled};
pub use shard::{run_sharded, try_run_sharded};
pub use workload::{
    ArrivalKind, BlackoutWindow, BurstConfig, ChurnConfig, LinkFailureConfig, Scenario,
    WorkloadConfig,
};

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::builder::SimulationBuilder;
    pub use crate::engine::{
        ForwardingMode, LinkLoad, PhaseOutcome, RebuildPolicy, SimError, Simulation,
        SimulationOutcome,
    };
    pub use crate::report::{
        render_csv, render_markdown_table, LinkReport, PhaseReport, SimulationReport,
    };
    pub use crate::runner::{run, sweep, SimulationConfig, SweepCell, TopologySpec};
    pub use crate::scenario::{DynamicScenario, ScenarioAction, ScenarioEvent, ScenarioRegistry};
    pub use crate::sched::{EventQueue, EventQueueKind};
    pub use crate::workload::{
        ArrivalKind, BlackoutWindow, BurstConfig, ChurnConfig, LinkFailureConfig, Scenario,
        WorkloadConfig,
    };
    pub use bdps_net::linkmodel::{LinkModel, LinkModelKind, LinkModelRegistry};
    pub use bdps_overlay::sparse::TableLayout;
}
