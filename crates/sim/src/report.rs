//! Result records and rendering helpers.

use bdps_core::strategy::StrategyHandle;
use serde::{Deserialize, Serialize};

use crate::engine::{LinkLoad, PhaseOutcome, SimulationOutcome};
use crate::workload::{Scenario, WorkloadConfig};
use bdps_types::time::SimTime;

/// Per-phase metrics of one run, with NaN-free statistics: a phase during
/// which nothing was delivered (an all-links-down blackout, say) reports
/// zero delays rather than NaN percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// The phase label ("run", "burst", "blackout", ...).
    pub label: String,
    /// Phase start, in seconds of simulated time.
    pub start_s: f64,
    /// Phase end, in seconds of simulated time.
    pub end_s: f64,
    /// Messages published during the phase.
    pub published: u64,
    /// On-time deliveries during the phase.
    pub on_time: u64,
    /// Late deliveries during the phase.
    pub late: u64,
    /// Copies dropped during the phase.
    pub dropped: u64,
    /// Link transmissions started during the phase.
    pub transmissions: u64,
    /// Mean end-to-end delay of the phase's on-time deliveries in ms (0 when
    /// the phase delivered nothing).
    pub mean_valid_delay_ms: f64,
    /// 95th-percentile delay of the phase's on-time deliveries in ms (0 when
    /// the phase delivered nothing).
    pub p95_valid_delay_ms: f64,
}

impl PhaseReport {
    /// Converts an engine-side phase accumulator into its report row.
    pub fn from_outcome(phase: &PhaseOutcome) -> Self {
        let mut delays = phase.delays_ms.clone();
        PhaseReport {
            label: phase.label.clone(),
            start_s: phase.start.as_secs_f64(),
            end_s: phase.end.as_secs_f64(),
            published: phase.published,
            on_time: phase.on_time,
            late: phase.late,
            dropped: phase.dropped,
            transmissions: phase.transmissions,
            mean_valid_delay_ms: delays.mean(),
            p95_valid_delay_ms: delays.try_quantile(0.95).unwrap_or(0.0),
        }
    }
}

/// Per-link utilisation and queueing metrics of one run, derived from the
/// engine's [`LinkLoad`] counters. All fields are deterministic: the
/// underlying counters are integer microseconds, so the sharded executor
/// reproduces them bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkReport {
    /// The link's index (see `Topology::graph`).
    pub link: usize,
    /// Transfers started on the link.
    pub transmissions: u64,
    /// Transfers that completed (not voided by a failure).
    pub completed_transfers: u64,
    /// Fraction of the run the link spent with at least one flow in flight
    /// (`busy_us / finished_at`). Under fair sharing a value near 1.0 means
    /// the link is saturated — the congestion signal delay-only links can
    /// never show.
    pub utilisation: f64,
    /// Mean number of concurrent flows while busy (`flow_time_us /
    /// busy_us`; exactly 1.0 under the exclusive constant-delay model).
    pub mean_concurrency: f64,
    /// Most flows ever in flight at once (≤ the fair-share admission cap;
    /// 0 or 1 under the exclusive model).
    pub peak_flows: u64,
    /// Deepest the sender's output queue for this link ever got, sampled at
    /// enqueue and requeue points.
    pub peak_queue: u64,
}

impl LinkReport {
    /// Converts an engine-side per-link accumulator into its report row.
    pub fn from_load(link: usize, load: &LinkLoad, finished_at: SimTime) -> Self {
        let total_us = finished_at.as_micros();
        let utilisation = if total_us > 0 {
            load.busy_us as f64 / total_us as f64
        } else {
            0.0
        };
        let mean_concurrency = if load.busy_us > 0 {
            load.flow_time_us as f64 / load.busy_us as f64
        } else {
            0.0
        };
        LinkReport {
            link,
            transmissions: load.transmissions,
            completed_transfers: load.completed_transfers,
            utilisation,
            mean_concurrency,
            peak_flows: load.peak_flows,
            peak_queue: load.peak_queue,
        }
    }
}

/// The flat record an experiment binary prints for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Strategy label ("EB", "PC", "EBPC", "FIFO", "RL").
    pub strategy: String,
    /// Scenario label ("PSD", "SSD", ...).
    pub scenario: String,
    /// Dynamic-scenario name ("static", "churn", "chaos", ...).
    pub dynamics: String,
    /// Publishing rate (messages per publisher per minute).
    pub publishing_rate: f64,
    /// The EBPC weight `r` (only meaningful for the EBPC strategy).
    pub ebpc_weight: f64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Number of messages published.
    pub published: u64,
    /// Σ ts_i — interested (message, subscriber) pairs.
    pub interested: u64,
    /// Σ ds_i — on-time deliveries.
    pub on_time: u64,
    /// Deliveries that arrived after their bound.
    pub late: u64,
    /// The delivery rate of eq. (1).
    pub delivery_rate: f64,
    /// The total earning of eq. (2), in price units.
    pub total_earning: f64,
    /// The paper's "message number": total messages received by all brokers.
    pub message_number: u64,
    /// Copies dropped because they expired.
    pub dropped_expired: u64,
    /// Copies dropped by the ε test (eq. 11).
    pub dropped_unlikely: u64,
    /// Copies dropped because every target unsubscribed mid-run.
    pub dropped_unsubscribed: u64,
    /// Copies requeued after their link failed mid-transfer.
    pub requeued: u64,
    /// Deliveries that reached the same (message, subscriber) pair twice —
    /// always 0 under single-path scoped forwarding; reported so regressions
    /// are loud.
    pub duplicate_deliveries: u64,
    /// Copies that crossed at least one link only to expand to zero members
    /// at their edge broker — the false-positive traffic of aggregate-scoped
    /// forwarding (always 0 under exact forwarding). Defaults on
    /// deserialisation so reports serialised before the forwarding axis
    /// existed still load.
    #[serde(default)]
    pub false_positive_forwards: u64,
    /// Edge expansions that resolved zero members (includes the publisher's
    /// own broker; ≥ `false_positive_forwards`). Defaults on deserialisation
    /// like the field above.
    #[serde(default)]
    pub false_positive_drops_at_edge: u64,
    /// Link transmissions performed.
    pub transmissions: u64,
    /// Mean end-to-end delay of on-time deliveries, in ms.
    pub mean_valid_delay_ms: f64,
    /// Per-phase breakdown (a single "run" phase for static scenarios).
    pub phases: Vec<PhaseReport>,
    /// Per-link utilisation/queueing breakdown, indexed by link id. Defaults
    /// on deserialisation so reports serialised before the link-model axis
    /// existed still load.
    #[serde(default)]
    pub links: Vec<LinkReport>,
}

impl SimulationReport {
    /// Builds a report from a finished simulation.
    pub fn from_outcome(
        outcome: &SimulationOutcome,
        strategy: &StrategyHandle,
        ebpc_weight: f64,
        scenario: Scenario,
        dynamics: &str,
        workload: &WorkloadConfig,
        seed: u64,
    ) -> Self {
        SimulationReport {
            strategy: strategy.label().to_owned(),
            scenario: scenario.label().to_owned(),
            dynamics: dynamics.to_owned(),
            publishing_rate: workload.publishing_rate_per_min,
            ebpc_weight,
            seed,
            published: outcome.published,
            interested: outcome.tracker.total_interested(),
            on_time: outcome.tracker.total_on_time(),
            late: outcome.tracker.total_late(),
            delivery_rate: outcome.tracker.delivery_rate(),
            total_earning: outcome.tracker.total_earning().as_f64(),
            message_number: outcome.message_number(),
            dropped_expired: outcome.dropped_expired(),
            dropped_unlikely: outcome.dropped_unlikely(),
            dropped_unsubscribed: outcome.dropped_unsubscribed(),
            requeued: outcome.requeued(),
            duplicate_deliveries: outcome.tracker.duplicate_deliveries(),
            false_positive_forwards: outcome.false_positive_forwards(),
            false_positive_drops_at_edge: outcome.false_positive_drops_at_edge(),
            transmissions: outcome.transmissions,
            mean_valid_delay_ms: outcome.valid_delays_ms.mean(),
            phases: outcome
                .phases
                .iter()
                .map(PhaseReport::from_outcome)
                .collect(),
            links: outcome
                .link_loads
                .iter()
                .enumerate()
                .map(|(i, load)| LinkReport::from_load(i, load, outcome.finished_at))
                .collect(),
        }
    }

    /// Renders the per-phase breakdown as a Markdown table (one row per
    /// phase; empty phases render zeros, never NaN).
    pub fn phase_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .phases
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    format!("{:.0}-{:.0}", p.start_s, p.end_s),
                    p.published.to_string(),
                    p.on_time.to_string(),
                    p.late.to_string(),
                    p.dropped.to_string(),
                    p.transmissions.to_string(),
                    format!("{:.1}", p.mean_valid_delay_ms),
                    format!("{:.1}", p.p95_valid_delay_ms),
                ]
            })
            .collect();
        render_markdown_table(
            &[
                "phase",
                "t (s)",
                "published",
                "on-time",
                "late",
                "dropped",
                "sent",
                "mean ms",
                "p95 ms",
            ],
            &rows,
        )
    }

    /// The highest per-link utilisation of the run (0 when the run had no
    /// links or never transmitted) — the saturation headline of congestion
    /// sweeps.
    pub fn max_link_utilisation(&self) -> f64 {
        self.links.iter().map(|l| l.utilisation).fold(0.0, f64::max)
    }

    /// Renders the busiest links as a Markdown table (up to `top` rows,
    /// sorted by descending utilisation; ties break on the link index so the
    /// rendering is deterministic).
    pub fn link_table(&self, top: usize) -> String {
        let mut links: Vec<&LinkReport> =
            self.links.iter().filter(|l| l.transmissions > 0).collect();
        links.sort_by(|a, b| {
            b.utilisation
                .partial_cmp(&a.utilisation)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.link.cmp(&b.link))
        });
        links.truncate(top);
        let rows: Vec<Vec<String>> = links
            .iter()
            .map(|l| {
                vec![
                    l.link.to_string(),
                    l.transmissions.to_string(),
                    l.completed_transfers.to_string(),
                    format!("{:.1}", l.utilisation * 100.0),
                    format!("{:.2}", l.mean_concurrency),
                    l.peak_flows.to_string(),
                    l.peak_queue.to_string(),
                ]
            })
            .collect();
        render_markdown_table(
            &[
                "link",
                "sent",
                "completed",
                "util %",
                "mean flows",
                "peak flows",
                "peak queue",
            ],
            &rows,
        )
    }

    /// Delivery rate in percent (how the paper's Fig. 4b/6a axis is labelled).
    pub fn delivery_rate_percent(&self) -> f64 {
        self.delivery_rate * 100.0
    }

    /// Earning in thousands (how the paper's Fig. 4a/5a axis is labelled).
    pub fn earning_k(&self) -> f64 {
        self.total_earning / 1_000.0
    }

    /// Message number in thousands (Fig. 5b/6b axis).
    pub fn message_number_k(&self) -> f64 {
        self.message_number as f64 / 1_000.0
    }
}

/// Renders rows as a GitHub-flavoured Markdown table.
pub fn render_markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Renders rows as CSV (no quoting — intended for plain numeric tables).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let rows = vec![
            vec!["3".to_string(), "70.1".to_string(), "69.9".to_string()],
            vec!["6".to_string(), "65.0".to_string(), "55.2".to_string()],
        ];
        let t = render_markdown_table(&["rate", "EB", "FIFO"], &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| rate | EB | FIFO |");
        assert_eq!(lines[1], "|---|---|---|");
        assert!(lines[2].starts_with("| 3 |"));
    }

    #[test]
    fn csv_shape() {
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        let c = render_csv(&["a", "b"], &rows);
        assert_eq!(c, "a,b\n1,2\n");
    }

    fn sample_report() -> SimulationReport {
        SimulationReport {
            strategy: "EB".into(),
            scenario: "SSD".into(),
            dynamics: "static".into(),
            publishing_rate: 10.0,
            ebpc_weight: 0.5,
            seed: 1,
            published: 100,
            interested: 400,
            on_time: 200,
            late: 20,
            delivery_rate: 0.5,
            total_earning: 150_000.0,
            message_number: 120_000,
            dropped_expired: 5,
            dropped_unlikely: 7,
            dropped_unsubscribed: 0,
            requeued: 0,
            duplicate_deliveries: 0,
            false_positive_forwards: 0,
            false_positive_drops_at_edge: 0,
            transmissions: 90_000,
            mean_valid_delay_ms: 4_200.0,
            phases: Vec::new(),
            links: Vec::new(),
        }
    }

    #[test]
    fn report_unit_conversions() {
        let r = sample_report();
        assert_eq!(r.delivery_rate_percent(), 50.0);
        assert_eq!(r.earning_k(), 150.0);
        assert_eq!(r.message_number_k(), 120.0);
    }

    #[test]
    fn empty_phase_reports_zeros_not_nan() {
        use crate::engine::PhaseOutcome;
        use bdps_types::time::SimTime;
        // An all-links-down window: the phase saw traffic attempts but no
        // delivery at all. Every statistic must come out finite.
        let mut phase = PhaseOutcome {
            label: "blackout".into(),
            start: SimTime::from_secs(100),
            end: SimTime::from_secs(200),
            published: 40,
            on_time: 0,
            late: 0,
            dropped: 12,
            transmissions: 0,
            delays_ms: bdps_stats::summary::Summary::new(),
        };
        let report = PhaseReport::from_outcome(&phase);
        assert_eq!(report.mean_valid_delay_ms, 0.0);
        assert_eq!(report.p95_valid_delay_ms, 0.0);
        assert!(report.mean_valid_delay_ms.is_finite());
        assert!(report.p95_valid_delay_ms.is_finite());
        assert_eq!(report.start_s, 100.0);
        assert_eq!(report.end_s, 200.0);
        // A phase with deliveries reports real statistics.
        phase.delays_ms.extend([100.0, 200.0, 300.0]);
        phase.on_time = 3;
        let report = PhaseReport::from_outcome(&phase);
        assert_eq!(report.mean_valid_delay_ms, 200.0);
        assert!(report.p95_valid_delay_ms >= 200.0);
    }

    #[test]
    fn degenerate_zero_duration_run_reports_finite_numbers() {
        // A run whose publication period is zero seconds publishes nothing,
        // delivers nothing and finishes at t = 0 — every derived statistic
        // (delivery rate, delays, utilisation, phase tables) must come out
        // finite and render without NaN.
        use crate::engine::Simulation;
        use bdps_overlay::topology::LayeredMeshConfig;
        use bdps_types::time::Duration;
        let report = Simulation::builder()
            .layered_mesh(LayeredMeshConfig::small())
            .ssd(10.0)
            .duration(Duration::ZERO)
            .drain_grace(Duration::ZERO)
            .seed(3)
            .report();
        assert_eq!(report.published, 0);
        assert_eq!(report.interested, 0);
        assert!(report.delivery_rate.is_finite());
        assert_eq!(report.delivery_rate, 0.0);
        assert!(report.mean_valid_delay_ms.is_finite());
        assert!(report.max_link_utilisation().is_finite());
        assert_eq!(report.max_link_utilisation(), 0.0);
        for phase in &report.phases {
            assert!(phase.mean_valid_delay_ms.is_finite());
            assert!(phase.p95_valid_delay_ms.is_finite());
        }
        for link in &report.links {
            assert!(link.utilisation.is_finite());
            assert!(link.mean_concurrency.is_finite());
        }
        assert!(!report.phase_table().contains("NaN"));
        assert!(!report.link_table(5).contains("NaN"));
    }

    #[test]
    fn phase_table_renders_without_nan() {
        let mut r = sample_report();
        r.phases = vec![PhaseReport {
            label: "blackout".into(),
            start_s: 0.0,
            end_s: 10.0,
            published: 0,
            on_time: 0,
            late: 0,
            dropped: 0,
            transmissions: 0,
            mean_valid_delay_ms: 0.0,
            p95_valid_delay_ms: 0.0,
        }];
        let table = r.phase_table();
        assert!(table.contains("blackout"));
        assert!(!table.contains("NaN"));
    }
}
