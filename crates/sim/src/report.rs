//! Result records and rendering helpers.

use bdps_core::strategy::StrategyHandle;
use serde::{Deserialize, Serialize};

use crate::engine::SimulationOutcome;
use crate::workload::{Scenario, WorkloadConfig};

/// The flat record an experiment binary prints for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Strategy label ("EB", "PC", "EBPC", "FIFO", "RL").
    pub strategy: String,
    /// Scenario label ("PSD", "SSD", ...).
    pub scenario: String,
    /// Publishing rate (messages per publisher per minute).
    pub publishing_rate: f64,
    /// The EBPC weight `r` (only meaningful for the EBPC strategy).
    pub ebpc_weight: f64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Number of messages published.
    pub published: u64,
    /// Σ ts_i — interested (message, subscriber) pairs.
    pub interested: u64,
    /// Σ ds_i — on-time deliveries.
    pub on_time: u64,
    /// Deliveries that arrived after their bound.
    pub late: u64,
    /// The delivery rate of eq. (1).
    pub delivery_rate: f64,
    /// The total earning of eq. (2), in price units.
    pub total_earning: f64,
    /// The paper's "message number": total messages received by all brokers.
    pub message_number: u64,
    /// Copies dropped because they expired.
    pub dropped_expired: u64,
    /// Copies dropped by the ε test (eq. 11).
    pub dropped_unlikely: u64,
    /// Link transmissions performed.
    pub transmissions: u64,
    /// Mean end-to-end delay of on-time deliveries, in ms.
    pub mean_valid_delay_ms: f64,
}

impl SimulationReport {
    /// Builds a report from a finished simulation.
    pub fn from_outcome(
        outcome: &SimulationOutcome,
        strategy: &StrategyHandle,
        ebpc_weight: f64,
        scenario: Scenario,
        workload: &WorkloadConfig,
        seed: u64,
    ) -> Self {
        SimulationReport {
            strategy: strategy.label().to_owned(),
            scenario: scenario.label().to_owned(),
            publishing_rate: workload.publishing_rate_per_min,
            ebpc_weight,
            seed,
            published: outcome.published,
            interested: outcome.tracker.total_interested(),
            on_time: outcome.tracker.total_on_time(),
            late: outcome.tracker.total_late(),
            delivery_rate: outcome.tracker.delivery_rate(),
            total_earning: outcome.tracker.total_earning().as_f64(),
            message_number: outcome.message_number(),
            dropped_expired: outcome.dropped_expired(),
            dropped_unlikely: outcome.dropped_unlikely(),
            transmissions: outcome.transmissions,
            mean_valid_delay_ms: outcome.valid_delays_ms.mean(),
        }
    }

    /// Delivery rate in percent (how the paper's Fig. 4b/6a axis is labelled).
    pub fn delivery_rate_percent(&self) -> f64 {
        self.delivery_rate * 100.0
    }

    /// Earning in thousands (how the paper's Fig. 4a/5a axis is labelled).
    pub fn earning_k(&self) -> f64 {
        self.total_earning / 1_000.0
    }

    /// Message number in thousands (Fig. 5b/6b axis).
    pub fn message_number_k(&self) -> f64 {
        self.message_number as f64 / 1_000.0
    }
}

/// Renders rows as a GitHub-flavoured Markdown table.
pub fn render_markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Renders rows as CSV (no quoting — intended for plain numeric tables).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let rows = vec![
            vec!["3".to_string(), "70.1".to_string(), "69.9".to_string()],
            vec!["6".to_string(), "65.0".to_string(), "55.2".to_string()],
        ];
        let t = render_markdown_table(&["rate", "EB", "FIFO"], &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| rate | EB | FIFO |");
        assert_eq!(lines[1], "|---|---|---|");
        assert!(lines[2].starts_with("| 3 |"));
    }

    #[test]
    fn csv_shape() {
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        let c = render_csv(&["a", "b"], &rows);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn report_unit_conversions() {
        let r = SimulationReport {
            strategy: "EB".into(),
            scenario: "SSD".into(),
            publishing_rate: 10.0,
            ebpc_weight: 0.5,
            seed: 1,
            published: 100,
            interested: 400,
            on_time: 200,
            late: 20,
            delivery_rate: 0.5,
            total_earning: 150_000.0,
            message_number: 120_000,
            dropped_expired: 5,
            dropped_unlikely: 7,
            transmissions: 90_000,
            mean_valid_delay_ms: 4_200.0,
        };
        assert_eq!(r.delivery_rate_percent(), 50.0);
        assert_eq!(r.earning_k(), 150.0);
        assert_eq!(r.message_number_k(), 120.0);
    }
}
