//! The fluent experiment builder.
//!
//! [`SimulationBuilder`] is the one way to assemble a run — topology,
//! workload, strategy, seed — with sensible paper defaults for everything
//! left unsaid:
//!
//! ```no_run
//! use bdps_sim::engine::Simulation;
//! use bdps_core::config::StrategyKind;
//! use bdps_types::time::Duration;
//!
//! let report = Simulation::builder()
//!     .ssd(10.0)
//!     .duration(Duration::from_secs(600))
//!     .strategy(StrategyKind::MaxEb)
//!     .seed(42)
//!     .report();
//! println!("delivery rate: {:.1} %", report.delivery_rate_percent());
//! ```
//!
//! [`run`](crate::runner::run) and [`sweep`](crate::runner::sweep) are thin
//! wrappers over this builder; a materialised [`SimulationConfig`] and the
//! builder that produced it yield bit-identical results because both go
//! through [`SimulationBuilder::build`] with the same RNG stream discipline.

use bdps_core::config::{InvalidDetection, SchedulerConfig};
use bdps_core::strategy::{StrategyHandle, StrategyRegistry};
use bdps_net::linkmodel::{LinkModelKind, LinkModelRegistry};
use bdps_net::measure::EstimationError;
use bdps_overlay::topology::LayeredMeshConfig;
use bdps_stats::rng::SimRng;
use bdps_types::error::{BdpsError, Result};
use bdps_types::time::Duration;

use crate::engine::{ForwardingMode, RebuildPolicy, Simulation};
use crate::report::SimulationReport;
use crate::runner::{SimulationConfig, TopologySpec};
use crate::scenario::{DynamicScenario, ScenarioRegistry};
use crate::sched::EventQueueKind;
use crate::workload::WorkloadConfig;
use bdps_overlay::sparse::TableLayout;

/// Fluent construction of one simulation run.
///
/// Every setter returns `self`, so experiments read as a single chained
/// expression; see the [module docs](self) for an example. Defaults: the
/// paper topology, the PSD workload at rate 10, the EB strategy with the
/// paper's scheduler settings, seed 0.
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    topology: TopologySpec,
    workload: WorkloadConfig,
    scheduler: SchedulerConfig,
    /// Whether the user pinned the detection policy (or supplied a whole
    /// scheduler config); when they did not, the §5.4 paper rule applies:
    /// strategies without a link model only delete already-expired messages.
    detection_pinned: bool,
    /// A duration set with [`duration`](Self::duration); kept separate from
    /// the workload so it survives a later `.workload()`/`.psd()`/`.ssd()`
    /// call (setter order must not matter).
    duration_override: Option<Duration>,
    seed: u64,
    estimation_error: EstimationError,
    drain_grace: Option<Duration>,
    scenario: DynamicScenario,
    event_queue: EventQueueKind,
    rebuild_policy: RebuildPolicy,
    table_layout: TableLayout,
    link_model: LinkModelKind,
    forwarding: ForwardingMode,
    shards: usize,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationBuilder {
            topology: TopologySpec::Paper,
            workload: WorkloadConfig::paper_psd(10.0),
            scheduler: SchedulerConfig::default(),
            detection_pinned: false,
            duration_override: None,
            seed: 0,
            estimation_error: EstimationError::NONE,
            drain_grace: None,
            scenario: DynamicScenario::static_scenario(),
            event_queue: EventQueueKind::default(),
            rebuild_policy: RebuildPolicy::default(),
            table_layout: TableLayout::default(),
            link_model: LinkModelKind::default(),
            forwarding: ForwardingMode::default(),
            shards: 1,
        }
    }
}

impl SimulationBuilder {
    /// Starts from the paper defaults (equivalent to `Simulation::builder()`).
    pub fn new() -> Self {
        SimulationBuilder::default()
    }

    /// Reconstructs a builder from a materialised configuration. Running the
    /// result reproduces `runner::run(&config)` exactly.
    pub fn from_config(config: &SimulationConfig) -> Self {
        SimulationBuilder {
            topology: config.topology.clone(),
            workload: config.workload.clone(),
            scheduler: config.scheduler.clone(),
            detection_pinned: true,
            duration_override: None,
            seed: config.seed,
            estimation_error: config.estimation_error,
            drain_grace: None,
            scenario: config.scenario.clone(),
            event_queue: config.event_queue,
            rebuild_policy: config.rebuild_policy,
            table_layout: config.table_layout,
            link_model: config.link_model,
            forwarding: config.forwarding,
            shards: config.shards,
        }
    }

    /// Sets the overlay topology specification.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.topology = spec;
        self
    }

    /// Uses the paper's 32-broker layered mesh (the default).
    pub fn paper_topology(self) -> Self {
        self.topology(TopologySpec::Paper)
    }

    /// Uses a layered mesh with the given configuration.
    pub fn layered_mesh(self, config: LayeredMeshConfig) -> Self {
        self.topology(TopologySpec::LayeredMesh(config))
    }

    /// Sets the full workload configuration.
    pub fn workload(mut self, workload: WorkloadConfig) -> Self {
        self.workload = workload;
        self
    }

    /// Uses the paper's publisher-specified-delay workload at the given
    /// publishing rate (messages per publisher per minute).
    pub fn psd(self, publishing_rate_per_min: f64) -> Self {
        self.workload(WorkloadConfig::paper_psd(publishing_rate_per_min))
    }

    /// Uses the paper's subscriber-specified-delay workload at the given
    /// publishing rate.
    pub fn ssd(self, publishing_rate_per_min: f64) -> Self {
        self.workload(WorkloadConfig::paper_ssd(publishing_rate_per_min))
    }

    /// Shortens (or lengthens) the publication period. Applies regardless of
    /// whether the workload is set before or after this call.
    pub fn duration(mut self, duration: Duration) -> Self {
        self.duration_override = Some(duration);
        self
    }

    /// Sets the scheduling strategy — a
    /// [`StrategyKind`](bdps_core::config::StrategyKind), a
    /// [`StrategyHandle`], or any type implementing
    /// [`SchedulingStrategy`](bdps_core::strategy::SchedulingStrategy).
    pub fn strategy(mut self, strategy: impl Into<StrategyHandle>) -> Self {
        self.scheduler.strategy = strategy.into();
        self
    }

    /// Resolves a strategy by name through the built-in
    /// [`StrategyRegistry`] (`"fifo"`, `"rl"`, `"eb"`, `"pc"`, `"ebpc"`,
    /// `"composite"`, their aliases or display labels).
    pub fn strategy_named(self, name: &str) -> Result<Self> {
        self.strategy_from(&StrategyRegistry::builtin(), name)
    }

    /// Resolves a strategy by name through a caller-supplied registry, so
    /// user-registered strategies are reachable from configuration files and
    /// command lines.
    pub fn strategy_from(mut self, registry: &StrategyRegistry, name: &str) -> Result<Self> {
        let handle = registry.resolve(name).ok_or_else(|| {
            BdpsError::InvalidConfig(format!(
                "unknown strategy {name:?} (known: {})",
                registry.names().join(", ")
            ))
        })?;
        self.scheduler.strategy = handle;
        Ok(self)
    }

    /// Sets the EBPC weight `r` (eq. 10).
    pub fn ebpc_weight(mut self, r: f64) -> Self {
        self.scheduler.ebpc_weight = r;
        self
    }

    /// Pins the invalid-message detection policy, overriding the §5.4
    /// default that link-model-free strategies only delete expired messages.
    pub fn invalid_detection(mut self, policy: InvalidDetection) -> Self {
        self.scheduler.invalid_detection = policy;
        self.detection_pinned = true;
        self
    }

    /// Replaces the whole scheduler configuration (strategy, `r`, ε, `PD`,
    /// average message size). Implies the detection policy is pinned.
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self.detection_pinned = true;
        self
    }

    /// Sets the dynamic scenario of the run — subscription churn, publisher
    /// bursts, link failures, blackouts, or any hand-placed
    /// [`ScenarioAction`](crate::scenario::ScenarioAction) stream. Defaults
    /// to the static scenario (no dynamics, the paper's setting). The
    /// scenario's randomness derives from the run's seed, so scenario runs
    /// replay bit-for-bit.
    pub fn scenario(mut self, scenario: DynamicScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Resolves a scenario by name through the built-in
    /// [`ScenarioRegistry`] (`"static"`, `"churn"`, `"flash-crowd"`,
    /// `"link-flap"`, `"blackout"`, `"chaos"`, or their aliases).
    pub fn scenario_named(self, name: &str) -> Result<Self> {
        self.scenario_from(&ScenarioRegistry::builtin(), name)
    }

    /// Resolves a scenario by name through a caller-supplied registry, so
    /// user-registered scenarios are reachable from configuration files and
    /// command lines.
    pub fn scenario_from(mut self, registry: &ScenarioRegistry, name: &str) -> Result<Self> {
        let scenario = registry.resolve(name).ok_or_else(|| {
            BdpsError::InvalidConfig(format!(
                "unknown scenario {name:?} (known: {})",
                registry.names().join(", ")
            ))
        })?;
        self.scenario = scenario;
        Ok(self)
    }

    /// Selects the event-scheduler implementation (calendar queue by
    /// default). Both [`EventQueueKind`]s pop in identical `(time, seq)`
    /// order, so this changes wall-clock throughput, never results — the
    /// golden tests pin that equivalence.
    pub fn event_queue(mut self, kind: EventQueueKind) -> Self {
        self.event_queue = kind;
        self
    }

    /// Selects the routing/table rebuild policy applied after link events
    /// (incremental by default). Both [`RebuildPolicy`]s produce
    /// bit-identical reports — the full rebuild is kept as the differential
    /// oracle (`tests/rebuild_equivalence.rs`) — so this changes wall-clock
    /// throughput under link-failure scenarios, never results.
    pub fn rebuild_policy(mut self, policy: RebuildPolicy) -> Self {
        self.rebuild_policy = policy;
        self
    }

    /// Selects how brokers materialise their subscription tables (dense
    /// replicated entries by default). Both [`TableLayout`]s produce
    /// bit-identical reports — the dense layout is kept as the differential
    /// oracle (`tests/layout_equivalence.rs`) — so this trades table memory
    /// and maintenance cost, never results.
    pub fn table_layout(mut self, layout: TableLayout) -> Self {
        self.table_layout = layout;
        self
    }

    /// Selects the link transfer-time model (constant delay by default —
    /// the paper's one-transfer-at-a-time sampled rate). Unlike the rebuild
    /// policy and table layout this axis *changes results*:
    /// [`LinkModelKind::FairShare`] shares each link's bandwidth equally
    /// among concurrent flows, so congested links genuinely slow down.
    /// Fair-share runs require `shards(1)` — the sharded executor returns a
    /// structured error for non-constant models.
    pub fn link_model(mut self, model: LinkModelKind) -> Self {
        self.link_model = model;
        self
    }

    /// Resolves a link model by name through the built-in
    /// [`LinkModelRegistry`] (`"constant"`, `"fair-share"`, or their
    /// aliases).
    pub fn link_model_named(self, name: &str) -> Result<Self> {
        self.link_model_from(&LinkModelRegistry::builtin(), name)
    }

    /// Resolves a link model by name through a caller-supplied registry, so
    /// user-registered aliases are reachable from configuration files and
    /// command lines.
    pub fn link_model_from(mut self, registry: &LinkModelRegistry, name: &str) -> Result<Self> {
        let model = registry.resolve(name).ok_or_else(|| {
            BdpsError::InvalidConfig(format!(
                "unknown link model {name:?} (known: {})",
                registry.names().join(", ")
            ))
        })?;
        self.link_model = model;
        Ok(self)
    }

    /// Selects how publish-time matching scopes copies (exact by default —
    /// the `O(population)` global-index freeze at every publish).
    /// [`ForwardingMode::Aggregate`] matches only against per-edge covering
    /// summaries and expands at the edge; it preserves the delivery set,
    /// earning and audits (`tests/forwarding_equivalence.rs` pins this) but
    /// not traffic, and requires [`TableLayout::Sparse`] and `shards(1)`.
    pub fn forwarding(mut self, mode: ForwardingMode) -> Self {
        self.forwarding = mode;
        self
    }

    /// Sets the root RNG seed; topology, workload, scheduling and scenario
    /// randomness all derive from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Applies a systematic bandwidth-estimation error: routing and the
    /// schedulers' beliefs use perturbed link parameters while transfers
    /// follow the true model (the `ablation_estimation` experiment).
    pub fn estimation_error(mut self, error: EstimationError) -> Self {
        self.estimation_error = error;
        self
    }

    /// Sets how long after the publication period in-flight messages keep
    /// being processed (default two minutes).
    pub fn drain_grace(mut self, grace: Duration) -> Self {
        self.drain_grace = Some(grace);
        self
    }

    /// Sets how many broker shards advance the event loop (default 1, the
    /// sequential reference loop). With `n > 1` the run uses the
    /// conservative time-window executor ([`crate::shard`]) on `n` worker
    /// threads; every shard count produces a bit-identical report.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Materialises the run as a serialisable [`SimulationConfig`] (the form
    /// sweeps and experiment binaries pass around).
    pub fn build_config(&self) -> SimulationConfig {
        let mut scheduler = self.scheduler.clone();
        if !self.detection_pinned && !scheduler.strategy.uses_link_model() {
            // §5.4: FIFO and RL have no probabilistic model to consult, so
            // they only delete already-expired messages.
            scheduler.invalid_detection = InvalidDetection::ExpiredOnly;
        }
        let mut workload = self.workload.clone();
        if let Some(duration) = self.duration_override {
            workload.duration = duration;
        }
        SimulationConfig {
            topology: self.topology.clone(),
            workload,
            scheduler,
            seed: self.seed,
            estimation_error: self.estimation_error,
            scenario: self.scenario.clone(),
            event_queue: self.event_queue,
            rebuild_policy: self.rebuild_policy,
            table_layout: self.table_layout,
            link_model: self.link_model,
            forwarding: self.forwarding,
            shards: self.shards,
        }
    }

    /// Builds the simulation, ready to [`run`](Simulation::run).
    ///
    /// The root seed is split into independent streams — stream 0 for
    /// topology construction, stream 1 for simulation dynamics — so changing
    /// the workload never perturbs the topology.
    pub fn build(&self) -> Simulation {
        let config = self.build_config();
        let root = SimRng::seed_from(config.seed);
        let mut topo_rng = root.split(0);
        let sim_rng = root.split(1);
        let topology = config.topology.build(&mut topo_rng);
        let mut sim = Simulation::with_scenario(
            topology,
            config.workload,
            config.scheduler,
            sim_rng,
            config.estimation_error,
            config.scenario,
        );
        if config.event_queue != EventQueueKind::default() {
            sim = sim.with_event_queue(config.event_queue);
        }
        sim = sim.with_rebuild_policy(config.rebuild_policy);
        sim = sim.with_table_layout(config.table_layout);
        sim = sim.with_link_model(config.link_model);
        sim = sim.with_forwarding(config.forwarding);
        if let Some(grace) = self.drain_grace {
            sim = sim.with_drain_grace(grace);
        }
        // Materialise broker state here so its cost lands in the build
        // phase (what the scale bench reports as build time), not in the
        // first instants of `run`.
        sim.prepare()
    }

    /// Builds, runs to completion and wraps the outcome in a
    /// [`SimulationReport`].
    pub fn report(&self) -> SimulationReport {
        let config = self.build_config();
        let sim = self.build();
        let outcome = if self.shards > 1 {
            crate::shard::run_sharded(sim, self.shards)
        } else {
            sim.run()
        };
        SimulationReport::from_outcome(
            &outcome,
            &config.scheduler.strategy,
            config.scheduler.ebpc_weight,
            config.workload.scenario,
            &config.scenario.name,
            &config.workload,
            config.seed,
        )
    }
}

impl Simulation {
    /// Starts fluent construction of a run; see [`SimulationBuilder`].
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use bdps_core::config::StrategyKind;

    fn small(strategy: StrategyKind) -> SimulationBuilder {
        Simulation::builder()
            .layered_mesh(LayeredMeshConfig::small())
            .ssd(6.0)
            .duration(Duration::from_secs(180))
            .strategy(strategy)
            .seed(9)
    }

    #[test]
    fn builder_matches_runner_run_exactly() {
        for strategy in StrategyKind::ALL {
            let builder = small(strategy);
            let via_builder = builder.report();
            let via_runner = runner::run(&builder.build_config());
            assert_eq!(via_builder, via_runner, "{}", strategy.label());
        }
    }

    #[test]
    fn paper_detection_rule_applies_unless_pinned() {
        let fifo = small(StrategyKind::Fifo).build_config();
        assert_eq!(
            fifo.scheduler.invalid_detection,
            InvalidDetection::ExpiredOnly
        );
        let eb = small(StrategyKind::MaxEb).build_config();
        assert_eq!(eb.scheduler.invalid_detection, InvalidDetection::PAPER);
        let pinned = small(StrategyKind::Fifo)
            .invalid_detection(InvalidDetection::Off)
            .build_config();
        assert_eq!(pinned.scheduler.invalid_detection, InvalidDetection::Off);
    }

    #[test]
    fn duration_survives_later_workload_setters() {
        let short = Duration::from_secs(60);
        let before = Simulation::builder()
            .duration(short)
            .ssd(10.0)
            .build_config();
        let after = Simulation::builder()
            .ssd(10.0)
            .duration(short)
            .build_config();
        assert_eq!(before.workload.duration, short);
        assert_eq!(before.workload, after.workload);
        // An explicit workload set last without a duration call keeps its own.
        let own = Simulation::builder()
            .workload(WorkloadConfig::paper_ssd(10.0))
            .build_config();
        assert_eq!(own.workload.duration, Duration::from_secs(2 * 3600));
    }

    #[test]
    fn from_config_round_trips() {
        let config = small(StrategyKind::MaxEbpc).ebpc_weight(0.8).build_config();
        let rebuilt = SimulationBuilder::from_config(&config).build_config();
        assert_eq!(config, rebuilt);
    }

    #[test]
    fn strategy_named_resolves_and_rejects() {
        let b = Simulation::builder().strategy_named("rl").unwrap();
        assert_eq!(
            b.build_config().scheduler.strategy,
            StrategyKind::RemainingLifetime
        );
        assert!(Simulation::builder().strategy_named("bogus").is_err());
        let composite = Simulation::builder().strategy_named("composite").unwrap();
        assert_eq!(
            composite.build_config().scheduler.strategy.label(),
            "COMPOSITE"
        );
    }

    #[test]
    fn ebpc_weight_and_drain_grace_thread_through() {
        let b = small(StrategyKind::MaxEbpc)
            .ebpc_weight(0.7)
            .drain_grace(Duration::from_secs(30));
        assert_eq!(b.build_config().scheduler.ebpc_weight, 0.7);
        let report = b.report();
        assert_eq!(report.ebpc_weight, 0.7);
        assert_eq!(report.strategy, "EBPC");
    }
}
