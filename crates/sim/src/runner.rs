//! One-call experiment execution and parallel parameter sweeps.
//!
//! [`run`] and [`sweep`] are thin wrappers over the fluent
//! [`SimulationBuilder`]: a
//! [`SimulationConfig`] is just a materialised builder, so both entry points
//! produce bit-identical results for the same configuration. The paper's
//! figures are produced by sweeping a grid of (strategy, publishing rate) or
//! (strategy, EBPC weight) cells; each cell is an independent simulation, so
//! the sweep runs cells on scoped worker threads with one RNG stream per
//! cell.

use bdps_core::config::{SchedulerConfig, StrategyKind};
use bdps_core::strategy::{StrategyHandle, StrategyRegistry};
use bdps_net::link::LinkQuality;
use bdps_net::linkmodel::LinkModelKind;
use bdps_net::measure::EstimationError;
use bdps_overlay::sparse::TableLayout;
use bdps_overlay::topology::{LayeredMeshConfig, Topology};
use bdps_stats::rng::SimRng;
use bdps_types::error::Result;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

use crate::builder::SimulationBuilder;
use crate::engine::{ForwardingMode, RebuildPolicy};
use crate::report::SimulationReport;
use crate::scenario::DynamicScenario;
use crate::sched::EventQueueKind;
use crate::workload::WorkloadConfig;

/// Which overlay topology a run uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The paper's 32-broker, 4-publisher, 160-subscriber layered mesh with
    /// per-link mean rates drawn uniformly from [50, 100] ms/KB and σ = 20 ms/KB.
    Paper,
    /// A layered mesh with the given configuration and the paper's link model.
    LayeredMesh(LayeredMeshConfig),
}

impl TopologySpec {
    /// Materialises the topology with randomness drawn from `rng`.
    pub fn build(&self, rng: &mut SimRng) -> Topology {
        match self {
            TopologySpec::Paper => Topology::paper_topology(rng),
            TopologySpec::LayeredMesh(cfg) => {
                Topology::layered_mesh(cfg, rng, LinkQuality::paper_random)
                    .expect("invalid layered mesh configuration")
            }
        }
    }
}

/// The full configuration of one simulation run — a materialised
/// [`SimulationBuilder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Topology specification.
    pub topology: TopologySpec,
    /// Workload (scenario, rate, duration, ...).
    pub workload: WorkloadConfig,
    /// Scheduler (strategy, r, ε, PD).
    pub scheduler: SchedulerConfig,
    /// Root RNG seed. Topology, workload and scheduling randomness all derive
    /// from it, so a config is fully reproducible.
    pub seed: u64,
    /// Systematic bandwidth-estimation error applied to the schedulers'
    /// believed link parameters ([`EstimationError::NONE`] for the paper's
    /// exact-measurement assumption).
    pub estimation_error: EstimationError,
    /// Dynamic scenario applied to the run (static by default; see
    /// [`crate::scenario`]).
    pub scenario: DynamicScenario,
    /// Which event-scheduler implementation drives the run (calendar queue
    /// by default; both pop in identical order, see [`crate::sched`]).
    pub event_queue: EventQueueKind,
    /// How routing and subscription tables are rebuilt after link events
    /// (incremental by default; both policies yield bit-identical results,
    /// see [`RebuildPolicy`]).
    pub rebuild_policy: RebuildPolicy,
    /// How brokers materialise their subscription tables (dense replicated
    /// by default; both layouts yield bit-identical results, see
    /// [`TableLayout`]).
    pub table_layout: TableLayout,
    /// The link transfer-time model (constant delay by default — the
    /// paper's one-transfer-at-a-time sampled rate). Unlike the two axes
    /// above this one *changes results*: fair-share runs model congestion.
    /// Defaults on deserialisation so pre-existing configs keep their
    /// constant-delay meaning.
    #[serde(default)]
    pub link_model: LinkModelKind,
    /// How publish-time matching scopes copies (exact by default — the
    /// `O(population)` global-index freeze). Aggregate forwarding preserves
    /// the delivery set but not traffic, and requires the sparse table
    /// layout (see [`ForwardingMode`]). Defaults on deserialisation so
    /// pre-existing configs keep their exact-matching meaning.
    #[serde(default)]
    pub forwarding: ForwardingMode,
    /// How many broker shards advance the event loop (1 = the sequential
    /// reference loop; N > 1 runs the conservative time-window executor on
    /// N worker threads, see [`crate::shard`]). Every shard count yields
    /// bit-identical reports.
    pub shards: usize,
}

impl SimulationConfig {
    /// The paper's setup for the given strategy, scenario workload and seed.
    ///
    /// Following §5.4 the ε-based early deletion applies to the proposed
    /// strategies; the FIFO and RL baselines only delete already-expired
    /// messages (they have no probabilistic model to consult).
    pub fn paper(strategy: impl Into<StrategyHandle>, workload: WorkloadConfig, seed: u64) -> Self {
        SimulationBuilder::new()
            .workload(workload)
            .strategy(strategy)
            .seed(seed)
            .build_config()
    }

    /// Overrides the EBPC weight `r`.
    pub fn with_ebpc_weight(mut self, r: f64) -> Self {
        self.scheduler.ebpc_weight = r;
        self
    }
}

/// Runs one simulation and returns its report.
pub fn run(config: &SimulationConfig) -> SimulationReport {
    SimulationBuilder::from_config(config).report()
}

/// One cell of a sweep: a configuration plus an arbitrary label.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Free-form label carried through to the result (e.g. "rate=15").
    pub label: String,
    /// The configuration to run.
    pub config: SimulationConfig,
}

/// Runs every cell, using up to `threads` worker threads, and returns
/// `(label, report)` pairs in the order the cells were given.
///
/// A panicking cell does not take the sweep down with it mid-flight: every
/// remaining cell still runs to completion, and only then does `sweep`
/// re-panic with a message naming each failed cell (label and seed). There
/// is no silent partial result vector — either all cells succeeded or the
/// call panics with the full casualty list.
pub fn sweep(cells: &[SweepCell], threads: usize) -> Vec<(String, SimulationReport)> {
    let threads = threads.max(1);
    let mut results: Vec<Option<(String, SimulationReport)>> = vec![None; cells.len()];
    let mut failures: Vec<(usize, String)> = Vec::new();
    if threads == 1 || cells.len() <= 1 {
        for (i, cell) in cells.iter().enumerate() {
            match run_cell(cell) {
                Ok(pair) => results[i] = Some(pair),
                Err(msg) => failures.push((i, msg)),
            }
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        type Slot = Mutex<Option<std::result::Result<(String, SimulationReport), String>>>;
        let slots: Vec<Slot> = (0..cells.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(cells.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let outcome = run_cell(&cells[i]);
                    // Recover from poisoning rather than double-panic: the
                    // only writer is this assignment, after which the value
                    // is complete, so a poisoned lock still holds good data.
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
                });
            }
        });
        for (i, slot) in slots.into_iter().enumerate() {
            match slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
            {
                Some(Ok(pair)) => results[i] = Some(pair),
                Some(Err(msg)) => failures.push((i, msg)),
                None => failures.push((i, "cell was never executed".to_owned())),
            }
        }
    }
    if !failures.is_empty() {
        let detail: Vec<String> = failures
            .iter()
            .map(|(i, msg)| {
                format!(
                    "cell {:?} (seed {}): {msg}",
                    cells[*i].label, cells[*i].config.seed
                )
            })
            .collect();
        panic!(
            "sweep: {} of {} cells panicked — {}",
            failures.len(),
            cells.len(),
            detail.join("; ")
        );
    }
    results
        .into_iter()
        .map(|r| r.expect("non-failing sweep filled every slot"))
        .collect()
}

/// Runs one sweep cell, converting a panic into the cell's error string so
/// the sweep can keep draining its queue.
fn run_cell(cell: &SweepCell) -> std::result::Result<(String, SimulationReport), String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&cell.config)))
        .map(|report| (cell.label.clone(), report))
        .map_err(crate::shard::panic_message)
}

/// Builds the sweep cells for a strategy × publishing-rate grid over the
/// paper's topology and workload (`ssd = true` for the SSD scenario).
pub fn strategy_rate_grid(
    strategies: &[StrategyKind],
    rates: &[f64],
    ssd: bool,
    duration_secs: u64,
    seed: u64,
) -> Vec<SweepCell> {
    let handles: Vec<StrategyHandle> = strategies.iter().map(|s| s.resolve()).collect();
    strategy_rate_grid_with(&handles, rates, ssd, duration_secs, seed)
}

/// Like [`strategy_rate_grid`], but over arbitrary strategy handles (so
/// user-defined strategies can ride the same sweep helpers).
pub fn strategy_rate_grid_with(
    strategies: &[StrategyHandle],
    rates: &[f64],
    ssd: bool,
    duration_secs: u64,
    seed: u64,
) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for strategy in strategies {
        for &rate in rates {
            let builder = SimulationBuilder::new()
                .workload(if ssd {
                    WorkloadConfig::paper_ssd(rate)
                } else {
                    WorkloadConfig::paper_psd(rate)
                })
                .duration(bdps_types::time::Duration::from_secs(duration_secs))
                .strategy(strategy.clone())
                .seed(seed);
            cells.push(SweepCell {
                label: format!("{}@rate{}", strategy.label(), rate),
                config: builder.build_config(),
            });
        }
    }
    cells
}

/// Resolves strategy names through a registry and builds the corresponding
/// strategy × rate grid — the entry point used by the CLI binaries'
/// `--strategies` flag.
pub fn strategy_rate_grid_named(
    registry: &StrategyRegistry,
    names: &[&str],
    rates: &[f64],
    ssd: bool,
    duration_secs: u64,
    seed: u64,
) -> Result<Vec<SweepCell>> {
    let handles: Vec<StrategyHandle> = names
        .iter()
        .map(|name| {
            registry.resolve(name).ok_or_else(|| {
                bdps_types::error::BdpsError::InvalidConfig(format!(
                    "unknown strategy {name:?} (known: {})",
                    registry.names().join(", ")
                ))
            })
        })
        .collect::<Result<_>>()?;
    Ok(strategy_rate_grid_with(
        &handles,
        rates,
        ssd,
        duration_secs,
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Scenario;
    use bdps_core::config::InvalidDetection;
    use bdps_types::time::Duration;

    fn quick_config(strategy: StrategyKind, rate: f64, ssd: bool, seed: u64) -> SimulationConfig {
        let workload = if ssd {
            WorkloadConfig::paper_ssd(rate)
        } else {
            WorkloadConfig::paper_psd(rate)
        }
        .with_duration(Duration::from_secs(180));
        let mut cfg = SimulationConfig::paper(strategy, workload, seed);
        cfg.topology = TopologySpec::LayeredMesh(LayeredMeshConfig::small());
        cfg
    }

    #[test]
    fn run_produces_consistent_report() {
        let cfg = quick_config(StrategyKind::MaxEb, 6.0, false, 1);
        let report = run(&cfg);
        assert_eq!(report.strategy, "EB");
        assert_eq!(report.scenario, Scenario::PublisherSpecified.label());
        assert!(report.published > 0);
        assert!(report.delivery_rate >= 0.0 && report.delivery_rate <= 1.0);
        assert!(report.message_number >= report.published);
        assert_eq!(report.seed, 1);
        // Deterministic.
        let again = run(&cfg);
        assert_eq!(report, again);
    }

    #[test]
    fn baseline_strategies_use_expired_only_detection() {
        let eb = SimulationConfig::paper(StrategyKind::MaxEb, WorkloadConfig::paper_psd(1.0), 1);
        assert_eq!(eb.scheduler.invalid_detection, InvalidDetection::PAPER);
        let fifo = SimulationConfig::paper(StrategyKind::Fifo, WorkloadConfig::paper_psd(1.0), 1);
        assert_eq!(
            fifo.scheduler.invalid_detection,
            InvalidDetection::ExpiredOnly
        );
        let rl = SimulationConfig::paper(
            StrategyKind::RemainingLifetime,
            WorkloadConfig::paper_psd(1.0),
            1,
        );
        assert_eq!(
            rl.scheduler.invalid_detection,
            InvalidDetection::ExpiredOnly
        );
    }

    #[test]
    fn sweep_runs_all_cells_in_order_and_matches_serial_runs() {
        let cells: Vec<SweepCell> = [StrategyKind::MaxEb, StrategyKind::Fifo]
            .iter()
            .map(|&s| SweepCell {
                label: s.label().to_string(),
                config: quick_config(s, 6.0, true, 3),
            })
            .collect();
        let parallel = sweep(&cells, 4);
        let serial = sweep(&cells, 1);
        assert_eq!(parallel.len(), 2);
        assert_eq!(parallel[0].0, "EB");
        assert_eq!(parallel[1].0, "FIFO");
        for (p, s) in parallel.iter().zip(serial.iter()) {
            assert_eq!(p.0, s.0);
            assert_eq!(p.1, s.1, "parallel and serial sweeps must agree");
        }
    }

    /// A cell whose topology spec cannot be materialised (panics inside
    /// `run`): the sweep must name the cell and its seed in the propagated
    /// panic, and every sibling cell must still have executed first.
    fn poisoned_cell(seed: u64) -> SweepCell {
        let mut cfg = quick_config(StrategyKind::MaxEb, 6.0, false, seed);
        cfg.topology = TopologySpec::LayeredMesh(LayeredMeshConfig {
            layer_sizes: vec![],
            fan_in: vec![],
            publishers_per_first_layer_broker: 1,
            subscribers_per_edge_broker: 1,
        });
        SweepCell {
            label: format!("bad-seed{seed}"),
            config: cfg,
        }
    }

    fn sweep_panic_message(cells: &[SweepCell], threads: usize) -> String {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sweep(cells, threads)));
        match outcome {
            Ok(_) => panic!("sweep with a poisoned cell must panic"),
            Err(payload) => crate::shard::panic_message(payload),
        }
    }

    #[test]
    fn sweep_panic_names_the_failing_cells_and_drains_the_rest() {
        let cells = vec![
            SweepCell {
                label: "good-a".into(),
                config: quick_config(StrategyKind::MaxEb, 6.0, false, 11),
            },
            poisoned_cell(97),
            SweepCell {
                label: "good-b".into(),
                config: quick_config(StrategyKind::Fifo, 6.0, false, 12),
            },
            poisoned_cell(98),
        ];
        for threads in [1, 3] {
            let msg = sweep_panic_message(&cells, threads);
            assert!(
                msg.contains("2 of 4 cells panicked"),
                "threads={threads}: expected the full casualty count, got: {msg}"
            );
            for (label, seed) in [("bad-seed97", 97), ("bad-seed98", 98)] {
                assert!(
                    msg.contains(label) && msg.contains(&format!("seed {seed}")),
                    "threads={threads}: message must name cell {label} (seed {seed}), got: {msg}"
                );
            }
            assert!(
                !msg.contains("good-a") && !msg.contains("good-b"),
                "threads={threads}: healthy cells must not appear as failures: {msg}"
            );
        }
    }

    /// The threads=1 and threads=N paths (the two branches the panic fix
    /// rewired) must agree bit-for-bit, including for cells that themselves
    /// run the sharded executor.
    #[test]
    fn sweep_equality_across_thread_counts_with_sharded_cells() {
        let cells: Vec<SweepCell> = [1usize, 2, 4]
            .iter()
            .map(|&shards| {
                let mut cfg = quick_config(StrategyKind::MaxEbpc, 6.0, true, 7);
                cfg.shards = shards;
                SweepCell {
                    label: format!("shards{shards}"),
                    config: cfg,
                }
            })
            .collect();
        let serial = sweep(&cells, 1);
        let parallel = sweep(&cells, 3);
        assert_eq!(serial, parallel);
        // The cells only differ in shard count, so the executor-equivalence
        // invariant makes all three reports identical too.
        assert_eq!(serial[0].1, serial[1].1);
        assert_eq!(serial[0].1, serial[2].1);
    }

    #[test]
    fn grid_builder_covers_the_cross_product() {
        let cells = strategy_rate_grid(
            &[StrategyKind::MaxEb, StrategyKind::Fifo],
            &[3.0, 6.0, 9.0],
            true,
            600,
            42,
        );
        assert_eq!(cells.len(), 6);
        assert!(cells
            .iter()
            .all(|c| c.config.topology == TopologySpec::Paper));
        assert!(cells
            .iter()
            .any(|c| c.label == "EB@rate3" || c.label == "EB@rate3.0"));
        assert!(cells
            .iter()
            .all(|c| c.config.workload.duration == Duration::from_secs(600)));
    }

    #[test]
    fn named_grid_resolves_through_the_registry() {
        let registry = StrategyRegistry::builtin();
        let cells = strategy_rate_grid_named(&registry, &["eb", "composite"], &[3.0], true, 600, 1)
            .unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].config.scheduler.strategy.label(), "EB");
        assert_eq!(cells[1].config.scheduler.strategy.label(), "COMPOSITE");
        assert!(strategy_rate_grid_named(&registry, &["nope"], &[3.0], true, 600, 1).is_err());
    }

    #[test]
    fn ebpc_weight_override() {
        let cfg = quick_config(StrategyKind::MaxEbpc, 3.0, true, 5).with_ebpc_weight(0.8);
        assert_eq!(cfg.scheduler.ebpc_weight, 0.8);
        let report = run(&cfg);
        assert_eq!(report.ebpc_weight, 0.8);
        assert_eq!(report.strategy, "EBPC");
    }
}
