//! The discrete-event simulation core.
//!
//! The simulator drives a set of [`BrokerState`]s through three kinds of
//! events, processed in strict time order with deterministic tie-breaking:
//!
//! * **Publish** — a publisher emits a new message and hands it to its
//!   attached broker (local hand-off, no overlay link involved);
//! * **Process** — a broker finishes the processing module for a received
//!   message (arrival time + `PD`), delivers local matches and enqueues
//!   copies to downstream output queues;
//! * **SendComplete** — a link finishes transmitting a message copy; the
//!   copy is handed to the receiving broker and the link immediately pulls
//!   the next message chosen by the scheduling strategy.
//!
//! Every message copy carries the set of subscription identifiers it is
//! responsible for, so single-path routing never produces duplicate
//! deliveries (see [`BrokerState::handle_arrival_scoped`]).

use bdps_core::broker::{BrokerCounters, BrokerState};
use bdps_core::config::SchedulerConfig;
use bdps_core::objective::ObjectiveTracker;
use bdps_filter::index::MatchIndex;
use bdps_filter::subscription::Subscription;
use bdps_net::measure::EstimationError;
use bdps_overlay::routing::Routing;
use bdps_overlay::subtable::SubscriptionTable;
use bdps_overlay::topology::Topology;
use bdps_stats::rng::SimRng;
use bdps_stats::summary::Summary;
use bdps_types::id::{BrokerId, LinkId, MessageId, PublisherId, SubscriptionId};
use bdps_types::message::Message;
use bdps_types::time::{Duration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::workload::WorkloadConfig;

/// One scheduled event.
struct EventEntry {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

enum EventKind {
    /// A publisher emits its next message.
    Publish { publisher: PublisherId },
    /// A broker finishes processing a received message copy.
    Process {
        broker: BrokerId,
        message: Arc<Message>,
        scope: Option<Vec<SubscriptionId>>,
    },
    /// A link finishes transmitting a message copy.
    SendComplete {
        link: LinkId,
        message: Arc<Message>,
        scope: Vec<SubscriptionId>,
    },
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Aggregate results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// The paper's objective bookkeeping (delivery rate, earning).
    pub tracker: ObjectiveTracker,
    /// Per-broker counters, indexed by broker id.
    pub broker_counters: Vec<BrokerCounters>,
    /// Number of messages published.
    pub published: u64,
    /// Number of link transmissions performed.
    pub transmissions: u64,
    /// Summary of end-to-end delays of on-time deliveries (ms).
    pub valid_delays_ms: Summary,
    /// The simulated time at which the run ended.
    pub finished_at: SimTime,
}

impl SimulationOutcome {
    /// The paper's "message number" metric: total messages received by all brokers.
    pub fn message_number(&self) -> u64 {
        self.broker_counters.iter().map(|c| c.received).sum()
    }

    /// Total copies dropped because they expired.
    pub fn dropped_expired(&self) -> u64 {
        self.broker_counters.iter().map(|c| c.dropped_expired).sum()
    }

    /// Total copies dropped as unlikely to make their deadline (eq. 11).
    pub fn dropped_unlikely(&self) -> u64 {
        self.broker_counters
            .iter()
            .map(|c| c.dropped_unlikely)
            .sum()
    }

    /// Total copies handed to links.
    pub fn sent(&self) -> u64 {
        self.broker_counters.iter().map(|c| c.sent).sum()
    }
}

/// A fully constructed simulation, ready to [`run`](Simulation::run).
pub struct Simulation {
    topology: Topology,
    brokers: Vec<BrokerState>,
    subscriptions: Vec<(Subscription, BrokerId)>,
    global_index: MatchIndex,
    link_busy: Vec<bool>,
    link_of: Vec<Vec<Option<LinkId>>>,
    workload: WorkloadConfig,
    scheduler: SchedulerConfig,
    rng: SimRng,
    events: BinaryHeap<EventEntry>,
    seq: u64,
    next_message: u64,
    end: SimTime,
    drain_grace: Duration,
    tracker: ObjectiveTracker,
    published: u64,
    transmissions: u64,
    valid_delays_ms: Summary,
    now: SimTime,
}

impl Simulation {
    /// Builds a simulation over the given topology, workload and scheduler
    /// configuration. All randomness is derived from `rng`.
    pub fn new(
        topology: Topology,
        workload: WorkloadConfig,
        scheduler: SchedulerConfig,
        rng: SimRng,
    ) -> Self {
        Self::with_estimation_error(topology, workload, scheduler, rng, EstimationError::NONE)
    }

    /// Like [`new`](Self::new), but the routing tables, path statistics and
    /// `FT` estimates are computed from *biased* link parameters while the
    /// actual transfers still follow the true link model — reproducing a
    /// system whose bandwidth measurement is systematically wrong (the
    /// `ablation_estimation` experiment).
    pub fn with_estimation_error(
        topology: Topology,
        workload: WorkloadConfig,
        scheduler: SchedulerConfig,
        mut rng: SimRng,
        estimation_error: EstimationError,
    ) -> Self {
        workload.validate().expect("invalid workload");
        scheduler.validate().expect("invalid scheduler config");

        // The graph the *schedulers believe in*: identical structure, link
        // rate parameters perturbed by the estimation error. Link identifiers
        // are preserved because links are re-added in the original order.
        let believed_graph = if estimation_error.is_none() {
            topology.graph.clone()
        } else {
            let mut g = bdps_overlay::graph::OverlayGraph::new();
            for b in topology.graph.brokers() {
                g.add_broker(b.layer);
            }
            for l in topology.graph.links() {
                let believed = estimation_error.apply(l.quality.rate_distribution());
                let quality =
                    bdps_net::link::LinkQuality::new(bdps_net::bandwidth::NormalRate::new(
                        believed.mean().max(0.01),
                        believed.std_dev(),
                    ))
                    .with_propagation(l.quality.propagation);
                g.add_link(l.from, l.to, quality);
            }
            g
        };

        let routing = Routing::compute(&believed_graph);

        // Subscription population: one subscription per subscriber.
        let mut subscriptions = Vec::with_capacity(topology.subscribers.len());
        for (i, (subscriber, broker)) in topology.subscribers.iter().enumerate() {
            let sub = workload.generate_subscription(
                SubscriptionId::new(i as u32),
                *subscriber,
                &mut rng,
            );
            subscriptions.push((sub, *broker));
        }

        // Per-broker subscription tables and broker state machines, both built
        // from the believed graph (what measurement reports), while actual
        // transfer times are sampled from the true graph below.
        let tables = SubscriptionTable::build_all(&believed_graph, &routing, &subscriptions);
        let brokers: Vec<BrokerState> = tables
            .into_iter()
            .map(|table| {
                BrokerState::from_overlay(&believed_graph, table.broker(), table, scheduler.clone())
            })
            .collect();

        // Global filter index used to count ts_i at publication time.
        let global_index =
            MatchIndex::from_subscriptions(subscriptions.iter().map(|(s, _)| (s.id, &s.filter)));

        // Link bookkeeping.
        let n = topology.graph.broker_count();
        let mut link_of = vec![vec![None; n]; n];
        for l in topology.graph.links() {
            link_of[l.from.index()][l.to.index()] = Some(l.id);
        }
        let link_busy = vec![false; topology.graph.link_count()];

        let end = SimTime::ZERO + workload.duration;
        let mut sim = Simulation {
            topology,
            brokers,
            subscriptions,
            global_index,
            link_busy,
            link_of,
            workload,
            scheduler,
            rng,
            events: BinaryHeap::new(),
            seq: 0,
            next_message: 0,
            end,
            drain_grace: Duration::from_secs(120),
            tracker: ObjectiveTracker::new(),
            published: 0,
            transmissions: 0,
            valid_delays_ms: Summary::new(),
            now: SimTime::ZERO,
        };

        // Seed the publishers.
        let publishers: Vec<PublisherId> =
            sim.topology.publishers.iter().map(|(p, _)| *p).collect();
        for p in publishers {
            sim.schedule_next_publication(p, SimTime::ZERO);
        }
        sim
    }

    /// Sets how long after the publication period the simulator keeps
    /// processing in-flight messages (default two minutes).
    pub fn with_drain_grace(mut self, grace: Duration) -> Self {
        self.drain_grace = grace;
        self
    }

    /// The subscription population of this run.
    pub fn subscriptions(&self) -> &[(Subscription, BrokerId)] {
        &self.subscriptions
    }

    /// The scheduler configuration of this run.
    pub fn scheduler(&self) -> &SchedulerConfig {
        &self.scheduler
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.events.push(EventEntry {
            time,
            seq: self.seq,
            kind,
        });
    }

    fn schedule_next_publication(&mut self, publisher: PublisherId, after: SimTime) {
        let Some(gap) = self.workload.next_publication_gap(&mut self.rng) else {
            return; // zero publishing rate
        };
        let t = after + gap;
        if t < self.end {
            self.push_event(t, EventKind::Publish { publisher });
        }
    }

    fn link_between(&self, from: BrokerId, to: BrokerId) -> Option<LinkId> {
        self.link_of[from.index()][to.index()]
    }

    /// Runs the simulation to completion and returns the outcome.
    pub fn run(mut self) -> SimulationOutcome {
        let hard_stop = self.end + self.drain_grace;
        while let Some(entry) = self.events.pop() {
            if entry.time > hard_stop {
                break;
            }
            self.now = entry.time;
            match entry.kind {
                EventKind::Publish { publisher } => self.on_publish(publisher, entry.time),
                EventKind::Process {
                    broker,
                    message,
                    scope,
                } => self.on_process(broker, message, scope, entry.time),
                EventKind::SendComplete {
                    link,
                    message,
                    scope,
                } => self.on_send_complete(link, message, scope, entry.time),
            }
        }
        SimulationOutcome {
            tracker: self.tracker,
            broker_counters: self.brokers.iter().map(|b| b.counters).collect(),
            published: self.published,
            transmissions: self.transmissions,
            valid_delays_ms: self.valid_delays_ms,
            finished_at: self.now,
        }
    }

    fn on_publish(&mut self, publisher: PublisherId, time: SimTime) {
        let Some(broker) = self.topology.publisher_broker(publisher) else {
            return;
        };
        let id = MessageId::new(self.next_message);
        self.next_message += 1;
        let message = Arc::new(
            self.workload
                .generate_message(id, publisher, time, &mut self.rng),
        );
        self.published += 1;

        // ts_i: how many subscribers are interested in this message.
        let interested = self.global_index.matching(&message.head).len() as u32;
        self.tracker.register_message(id, interested);

        // Hand the message to the attached broker; processing takes PD.
        let done = time + self.scheduler.processing_delay;
        self.push_event(
            done,
            EventKind::Process {
                broker,
                message,
                scope: None,
            },
        );
        self.schedule_next_publication(publisher, time);
    }

    fn on_process(
        &mut self,
        broker: BrokerId,
        message: Arc<Message>,
        scope: Option<Vec<SubscriptionId>>,
        time: SimTime,
    ) {
        let outcome = self.brokers[broker.index()].handle_arrival_scoped(
            Arc::clone(&message),
            time,
            scope.as_deref(),
        );
        for d in &outcome.local {
            self.tracker
                .record_delivery(message.id, d.subscriber, d.price, d.delay, d.on_time);
            if d.on_time {
                self.valid_delays_ms.observe(d.delay.as_millis_f64());
            }
        }
        for neighbor in outcome.enqueued_to {
            self.try_send(broker, neighbor, time);
        }
    }

    fn on_send_complete(
        &mut self,
        link: LinkId,
        message: Arc<Message>,
        scope: Vec<SubscriptionId>,
        time: SimTime,
    ) {
        let (from, to) = {
            let l = self.topology.graph.link(link);
            (l.from, l.to)
        };
        self.link_busy[link.index()] = false;
        // The copy arrives at the downstream broker; processing takes PD.
        let done = time + self.scheduler.processing_delay;
        self.push_event(
            done,
            EventKind::Process {
                broker: to,
                message,
                scope: Some(scope),
            },
        );
        // Keep the link busy with the next scheduled message, if any.
        self.try_send(from, to, time);
    }

    fn try_send(&mut self, from: BrokerId, to: BrokerId, now: SimTime) {
        let Some(link) = self.link_between(from, to) else {
            return;
        };
        if self.link_busy[link.index()] {
            return;
        }
        let decision = self.brokers[from.index()].next_to_send(to, now);
        let Some(queued) = decision.message else {
            return;
        };
        let transfer = {
            let l = self.topology.graph.link(link);
            l.quality
                .sample_transfer(queued.message.size_kb, &mut self.rng)
        };
        self.link_busy[link.index()] = true;
        self.transmissions += 1;
        let scope: Vec<SubscriptionId> = queued.targets.iter().map(|t| t.subscription).collect();
        self.push_event(
            now + transfer,
            EventKind::SendComplete {
                link,
                message: queued.message,
                scope,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalKind, Scenario};
    use bdps_core::config::StrategyKind;
    use bdps_net::bandwidth::FixedRate;
    use bdps_net::link::LinkQuality;
    use bdps_overlay::topology::LayeredMeshConfig;
    use bdps_types::id::SubscriberId;

    fn fast_quality(_rng: &mut SimRng) -> LinkQuality {
        // 10 ms/KB -> a 50 KB message takes 500 ms per hop.
        LinkQuality::new(FixedRate::new(10.0))
    }

    fn small_topology(seed: u64) -> Topology {
        Topology::layered_mesh(
            &LayeredMeshConfig::small(),
            &mut SimRng::seed_from(seed),
            fast_quality,
        )
        .unwrap()
    }

    fn short_workload(scenario: Scenario, rate: f64) -> WorkloadConfig {
        let mut w = match scenario {
            Scenario::SubscriberSpecified => WorkloadConfig::paper_ssd(rate),
            _ => WorkloadConfig::paper_psd(rate),
        };
        w.scenario = scenario;
        w.duration = Duration::from_secs(300);
        w.arrivals = ArrivalKind::Deterministic;
        w
    }

    #[test]
    fn uncongested_run_delivers_almost_everything() {
        let topo = small_topology(1);
        let workload = short_workload(Scenario::PublisherSpecified, 4.0);
        let sim = Simulation::new(
            topo,
            workload,
            SchedulerConfig::paper(StrategyKind::MaxEb),
            SimRng::seed_from(2),
        );
        let out = sim.run();
        assert!(out.published > 0);
        assert!(out.tracker.total_interested() > 0);
        let rate = out.tracker.delivery_rate();
        assert!(
            rate > 0.95,
            "expected near-perfect delivery on an idle network, got {rate}"
        );
        assert!(out.message_number() > out.published);
        assert!(out.transmissions > 0);
        assert_eq!(out.dropped_expired() + out.dropped_unlikely(), 0);
        assert!(out.valid_delays_ms.count() > 0);
        assert!(out.valid_delays_ms.mean() > 0.0);
    }

    #[test]
    fn runs_are_deterministic_for_a_given_seed() {
        let run = |seed: u64| {
            let topo = small_topology(seed);
            let workload = short_workload(Scenario::SubscriberSpecified, 6.0);
            Simulation::new(
                topo,
                workload,
                SchedulerConfig::paper(StrategyKind::MaxEbpc),
                SimRng::seed_from(seed),
            )
            .run()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.published, b.published);
        assert_eq!(a.message_number(), b.message_number());
        assert_eq!(a.tracker.total_on_time(), b.tracker.total_on_time());
        assert_eq!(
            a.tracker.total_earning().millis(),
            b.tracker.total_earning().millis()
        );
        let c = run(8);
        assert_ne!(
            (a.published, a.tracker.total_on_time()),
            (c.published, c.tracker.total_on_time()),
            "different seeds should differ"
        );
    }

    #[test]
    fn zero_rate_produces_no_traffic() {
        let topo = small_topology(3);
        let workload = short_workload(Scenario::PublisherSpecified, 0.0);
        let out = Simulation::new(
            topo,
            workload,
            SchedulerConfig::paper(StrategyKind::Fifo),
            SimRng::seed_from(4),
        )
        .run();
        assert_eq!(out.published, 0);
        assert_eq!(out.message_number(), 0);
        assert_eq!(out.tracker.delivery_rate(), 0.0);
    }

    #[test]
    fn ssd_earning_is_positive_and_bounded_by_perfect_delivery() {
        let topo = small_topology(5);
        let workload = short_workload(Scenario::SubscriberSpecified, 6.0);
        let out = Simulation::new(
            topo,
            workload,
            SchedulerConfig::paper(StrategyKind::MaxEb),
            SimRng::seed_from(6),
        )
        .run();
        let earning = out.tracker.total_earning().as_f64();
        assert!(earning > 0.0);
        // Perfect delivery would earn at most 3 units per interested pair.
        let upper = 3.0 * out.tracker.total_interested() as f64;
        assert!(earning <= upper);
        // Every on-time delivery is also counted in the delivery-rate bookkeeping.
        assert!(out.tracker.total_on_time() > 0);
        assert!(out.tracker.delivery_rate() <= 1.0);
    }

    #[test]
    fn no_duplicate_deliveries_per_subscriber_and_message() {
        // With scoped forwarding each (message, subscriber) pair is delivered
        // at most once, so on-time + late deliveries never exceed interested
        // pairs (ts_i counts exactly the matching subscribers).
        let topo = small_topology(9);
        let workload = short_workload(Scenario::PublisherSpecified, 8.0);
        let out = Simulation::new(
            topo,
            workload,
            SchedulerConfig::paper(StrategyKind::Fifo),
            SimRng::seed_from(10),
        )
        .run();
        let delivered = out.tracker.total_on_time() + out.tracker.total_late();
        assert!(
            delivered <= out.tracker.total_interested(),
            "delivered {delivered} > interested {}",
            out.tracker.total_interested()
        );
    }

    #[test]
    fn congestion_lowers_delivery_rate_and_eb_beats_fifo() {
        // Slow links + high rate -> congestion. EB should deliver at least as
        // much as FIFO (usually strictly more).
        let slow_quality = |_rng: &mut SimRng| LinkQuality::new(FixedRate::new(80.0));
        let make = |strategy| {
            let topo = Topology::layered_mesh(
                &LayeredMeshConfig::small(),
                &mut SimRng::seed_from(11),
                slow_quality,
            )
            .unwrap();
            let mut w = WorkloadConfig::paper_psd(12.0);
            w.duration = Duration::from_secs(600);
            Simulation::new(
                topo,
                w,
                SchedulerConfig::paper(strategy),
                SimRng::seed_from(12),
            )
            .run()
        };
        let eb = make(StrategyKind::MaxEb);
        let fifo = make(StrategyKind::Fifo);
        assert!(
            eb.tracker.delivery_rate() < 1.0,
            "there should be congestion"
        );
        assert!(
            eb.tracker.delivery_rate() >= fifo.tracker.delivery_rate(),
            "EB {} should not be worse than FIFO {}",
            eb.tracker.delivery_rate(),
            fifo.tracker.delivery_rate()
        );
    }

    #[test]
    fn subscription_population_matches_subscribers() {
        let topo = small_topology(13);
        let n_subs = topo.subscribers.len();
        let workload = short_workload(Scenario::SubscriberSpecified, 1.0);
        let sim = Simulation::new(
            topo,
            workload,
            SchedulerConfig::paper(StrategyKind::MaxPc),
            SimRng::seed_from(14),
        );
        assert_eq!(sim.subscriptions().len(), n_subs);
        assert_eq!(sim.scheduler().strategy, StrategyKind::MaxPc);
        // Each subscription belongs to a distinct subscriber.
        let mut seen = std::collections::HashSet::new();
        for (s, _) in sim.subscriptions() {
            assert!(seen.insert(s.subscriber));
        }
        assert!(seen.contains(&SubscriberId::new(0)));
    }
}
