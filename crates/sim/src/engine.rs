//! The discrete-event simulation core.
//!
//! The simulator drives a set of [`BrokerState`]s through four kinds of
//! events, processed in strict time order with deterministic tie-breaking:
//!
//! * **Publish** — a publisher emits a new message and hands it to its
//!   attached broker (local hand-off, no overlay link involved);
//! * **Process** — a broker finishes the processing module for a received
//!   message (arrival time + `PD`), delivers local matches and enqueues
//!   copies to downstream output queues;
//! * **SendComplete** — a link finishes transmitting a message copy; the
//!   copy is handed to the receiving broker and the link immediately pulls
//!   the next message chosen by the scheduling strategy;
//! * **Scenario** — a [`ScenarioAction`] fires: a subscription joins or
//!   leaves, a publisher's rate changes, a link fails or recovers, or a new
//!   reporting phase begins (see [`crate::scenario`]).
//!
//! Every message copy carries the set of subscription identifiers it is
//! responsible for, so single-path routing never produces duplicate
//! deliveries (see [`BrokerState::handle_arrival_scoped`]). Under dynamic
//! scenarios the subscription tables, routing and link liveness all update
//! in place mid-run; the scenario event stream is materialised up front from
//! a seed-derived RNG stream, so runs stay bit-for-bit reproducible.

use bdps_core::broker::{BrokerCounters, BrokerState};
use bdps_core::config::SchedulerConfig;
use bdps_core::objective::ObjectiveTracker;
use bdps_core::queue::QueuedMessage;
use bdps_filter::index::MatchIndex;
use bdps_filter::scope::{ScopeInterner, ScopeSet};
use bdps_filter::subscription::Subscription;
use bdps_net::linkmodel::{LinkModel, LinkModelKind, LinkSharing};
use bdps_net::measure::EstimationError;
use bdps_overlay::graph::OverlayGraph;
use bdps_overlay::routing::{RouteDelta, Routing};
use bdps_overlay::sparse::{
    BrokerTable, PopulationHandle, SharedPopulation, SparseTable, TableLayout,
};
use bdps_overlay::subtable::{RetargetOutcome, SubscriptionTable};
use bdps_overlay::topology::Topology;
use bdps_stats::rng::SimRng;
use bdps_stats::summary::Summary;
use bdps_types::id::{BrokerId, LinkId, MessageId, PublisherId, SubscriberId, SubscriptionId};
use bdps_types::message::Message;
use bdps_types::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

use crate::scenario::{DynamicScenario, ScenarioAction};
use crate::sched::{EventQueue, EventQueueKind, Scheduled};
use crate::workload::WorkloadConfig;

/// Canonical, partition-independent event keys.
///
/// [`Scheduled::seq`] is not a global insertion counter but a key derived
/// from the event's *content*, so the total `(time, key)` order is the same
/// no matter which shard scheduled the event — the property that makes the
/// sharded executor ([`crate::shard`]) bit-identical to the sequential loop.
/// Layout: the event rank in the top two bits (scenario < publish < process
/// < send at equal times, so scenario actions always apply before traffic at
/// the same instant), discriminating content in the low bits.
///
/// Uniqueness among pending events at one instant:
/// * **scenario** — the materialization index is globally unique;
/// * **publish** — at most one publication is pending per
///   (publisher, rate generation);
/// * **process** — `via` names the delivering link (or 0 for the
///   publisher-side hand-off), a link completes one transfer at a time and a
///   local hand-off is a fresh message, so `(via, message)` never repeats at
///   an instant;
/// * **send** — a link carries at most one in-flight copy *per message*:
///   under the exclusive (constant-delay) link model at most one transfer is
///   in flight per link (`link_busy`), and under a sharing model
///   ([`bdps_net::linkmodel::FairShare`]) concurrent flows on one link are
///   distinct messages (single-path routing enqueues one copy of a message
///   per link), so `(link, message)` stays unique. A rescheduled flow
///   completion leaves stale events behind at *different* times (the engine
///   only re-pushes when the completion time moved), so equal `(time, key)`
///   pairs never coexist — and even a popped stale event is a no-op, making
///   pop order among hypothetical duplicates irrelevant.
pub(crate) mod key {
    use bdps_types::id::{LinkId, MessageId, PublisherId};

    /// Publisher index bits inside a [`MessageId`] (the counter gets the
    /// low 29 bits, the publisher the bits above).
    const MESSAGE_COUNTER_BITS: u32 = 29;
    /// Low-bit width of the message discriminator inside process/send keys:
    /// 12 publisher bits + 29 counter bits.
    const MESSAGE_BITS: u32 = 41;

    /// Most publisher slots the key layout supports (12 bits).
    pub(crate) const MAX_PUBLISHER_SLOTS: usize = 1 << 12;
    /// Most links the key layout supports (21 bits, minus the hand-off
    /// sentinel).
    pub(crate) const MAX_LINKS: usize = (1 << 21) - 1;

    /// The per-publisher message id: publisher index in the high bits,
    /// per-publisher counter in the low bits. Partition-independent — a
    /// publisher mints the same ids whichever shard it is homed to.
    pub(crate) fn message_id(publisher: PublisherId, counter: u64) -> MessageId {
        debug_assert!(publisher.index() < MAX_PUBLISHER_SLOTS);
        assert!(
            counter < 1 << MESSAGE_COUNTER_BITS,
            "per-publisher message counter overflowed the canonical key layout"
        );
        MessageId::new(((publisher.index() as u64) << MESSAGE_COUNTER_BITS) | counter)
    }

    /// Key of a scenario event: its materialization index (rank 0).
    pub(crate) fn scenario(index: u64) -> u64 {
        debug_assert!(index < 1 << 62);
        index
    }

    /// Key of a publication event (rank 1).
    pub(crate) fn publish(publisher: PublisherId, gen: u64) -> u64 {
        debug_assert!(gen < 1 << 40, "rate generation overflowed the key layout");
        (1 << 62) | ((publisher.index() as u64) << 40) | gen
    }

    /// Key of a processing-done event (rank 2). `via` is the link that
    /// delivered the copy, or `None` for the publisher-side hand-off.
    pub(crate) fn process(via: Option<LinkId>, message: MessageId) -> u64 {
        let via = via.map(|l| l.index() as u64 + 1).unwrap_or(0);
        debug_assert!(via <= MAX_LINKS as u64);
        debug_assert!(message.raw() < 1 << MESSAGE_BITS);
        (2 << 62) | (via << MESSAGE_BITS) | message.raw()
    }

    /// Key of a transfer-complete event (rank 3).
    pub(crate) fn send(link: LinkId, message: MessageId) -> u64 {
        debug_assert!(message.raw() < 1 << MESSAGE_BITS);
        (3 << 62) | ((link.index() as u64) << MESSAGE_BITS) | message.raw()
    }

    /// Whether a process-event key's copy arrived over a link (as opposed to
    /// the publisher-side hand-off, whose `via` field is 0). Recovered from
    /// the key rather than stored in the event so [`super::EventKind`] and
    /// its digests stay unchanged.
    pub(crate) fn process_via_link(seq: u64) -> bool {
        ((seq >> MESSAGE_BITS) & ((1 << 21) - 1)) != 0
    }
}

/// A structured, recoverable simulation failure.
///
/// The engine used to turn a poisoned population lock into a second panic
/// (`.expect("population lock")`), so one panicking `sweep` worker cascaded
/// into every sibling cell sharing the registry. Read paths now recover the
/// guard ([`bdps_overlay::sparse::read_population`]); write paths — where a
/// half-applied churn action could leave the registry inconsistent — surface
/// this error instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The shared population registry's write lock was poisoned by a panic
    /// in another thread; the pending mutation was not applied.
    PopulationPoisoned {
        /// Which mutation was abandoned.
        during: &'static str,
    },
    /// A shard worker thread panicked mid-window (sharded executor only).
    WorkerPanicked {
        /// The shard whose worker died.
        shard: usize,
        /// The payload of the worker's panic.
        message: String,
    },
    /// The sharded executor was asked to run a non-constant link model.
    ///
    /// Fair-share completion re-scheduling can move an already-scheduled
    /// cross-shard arrival inside the current conservative time window,
    /// which breaks the PD-lookahead soundness argument the sharded
    /// executor rests on — so the combination is rejected up front as a
    /// structured error instead of silently diverging from the sequential
    /// run.
    ShardedLinkModelUnsupported {
        /// The rejected link model's registry name.
        model: &'static str,
    },
    /// Aggregate-scoped forwarding ([`ForwardingMode::Aggregate`]) was
    /// requested together with the dense table layout. Aggregate publishing
    /// matches against the edge groups of the shared population registry and
    /// expands at the edge via that same registry — state only the sparse
    /// layout maintains — so the combination is rejected up front.
    AggregateForwardingNeedsSparseLayout,
    /// The sharded executor was asked to run aggregate-scoped forwarding
    /// across more than one shard. Edge expansion reads the shared
    /// population registry at delivery time, which would race with churn
    /// applied by other shards inside the same conservative window — run
    /// with shards = 1 (or exact forwarding).
    ShardedForwardingUnsupported,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PopulationPoisoned { during } => write!(
                f,
                "population registry lock poisoned during {during}; mutation abandoned"
            ),
            SimError::WorkerPanicked { shard, message } => {
                write!(f, "shard {shard} worker panicked: {message}")
            }
            SimError::ShardedLinkModelUnsupported { model } => write!(
                f,
                "sharded execution supports only the constant-delay link model \
                 (got `{model}`): flow completion re-scheduling can move a \
                 cross-shard arrival inside the PD-lookahead window — run with \
                 shards = 1"
            ),
            SimError::AggregateForwardingNeedsSparseLayout => write!(
                f,
                "aggregate-scoped forwarding requires the sparse table layout: \
                 publish-time matching and edge expansion both read the shared \
                 population registry, which the dense layout does not maintain"
            ),
            SimError::ShardedForwardingUnsupported => write!(
                f,
                "sharded execution does not support aggregate-scoped \
                 forwarding: edge expansion reads the shared population \
                 registry at delivery time, racing cross-shard churn — run \
                 with shards = 1 (or exact forwarding)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// One kind of pending simulation event.
///
/// The engine itself never exposes events mid-run; this type is public so
/// the model-checking explorer (`bdps-mc`) can hold a same-instant frontier
/// taken with [`Simulation::take_frontier`], re-insert the unconsumed events
/// with [`Simulation::push_back`] and apply a chosen one with
/// [`Simulation::apply`]. Treat it as opaque outside those calls.
#[derive(Clone)]
pub enum EventKind {
    /// A publisher emits its next message. `gen` is the publisher's rate
    /// generation: a rate change bumps it, invalidating pending publications
    /// so the new rate takes effect immediately instead of after one more
    /// old-rate gap.
    Publish {
        /// The emitting publisher.
        publisher: PublisherId,
        /// The publisher's rate generation when this event was scheduled.
        gen: u64,
    },
    /// A broker finishes processing a received message copy. The scope — the
    /// interned set of subscription ids the copy serves, frozen at
    /// publication time — is an `Arc`-backed [`ScopeSet`], so every hop of
    /// every copy of a message shares one allocation.
    Process {
        /// The broker whose processing module finishes.
        broker: BrokerId,
        /// The processed message.
        message: Arc<Message>,
        /// The subscription ids this copy serves.
        scope: ScopeSet,
    },
    /// A link finishes transmitting a message copy (targets included so the
    /// copy can be requeued intact if the link died mid-transfer). `gen` is
    /// the link's failure generation when the transfer started: if the link
    /// failed at any point while the copy was in flight — even if it also
    /// recovered before completion — the generation has moved on and the
    /// transfer is void.
    SendComplete {
        /// The transmitting link.
        link: LinkId,
        /// The copy in flight, targets included.
        queued: QueuedMessage,
        /// The link's failure generation when the transfer started.
        gen: u64,
    },
    /// A flow finishes under a sharing link model
    /// ([`bdps_net::linkmodel::FairShare`]). Unlike [`SendComplete`]
    /// (whose one-shot schedule can carry the copy itself), the copy stays
    /// in the engine's per-link flow table — completion re-scheduling would
    /// otherwise clone the copy's target list once per recompute. `resched`
    /// stamps which (re-)schedule this event belongs to: the engine bumps
    /// the flow's stamp whenever its completion time moves, so a popped
    /// event with an outdated stamp (or no live flow at all) is stale and
    /// ignored.
    ///
    /// [`SendComplete`]: EventKind::SendComplete
    FlowComplete {
        /// The transmitting link.
        link: LinkId,
        /// The message whose copy is in flight on the link.
        message: MessageId,
        /// The flow's re-schedule stamp when this event was pushed.
        resched: u64,
    },
    /// A scenario action fires.
    Scenario {
        /// The action.
        action: ScenarioAction,
    },
}

impl EventKind {
    /// A short human-readable label identifying the event — used by the
    /// model-checking explorer to render branch choices in counterexample
    /// traces (`publish:p0`, `process:b2:m5`, `send:l3:m5`,
    /// `scenario:link-down:l1`, ...).
    pub fn label(&self) -> String {
        match self {
            EventKind::Publish { publisher, .. } => format!("publish:p{}", publisher.index()),
            EventKind::Process {
                broker, message, ..
            } => {
                format!("process:b{}:m{}", broker.index(), message.id.raw())
            }
            EventKind::SendComplete { link, queued, .. } => {
                format!("send:l{}:m{}", link.index(), queued.message.id.raw())
            }
            EventKind::FlowComplete { link, message, .. } => {
                format!("flow:l{}:m{}", link.index(), message.raw())
            }
            EventKind::Scenario { action } => format!("scenario:{}", action.label()),
        }
    }

    /// Hashes the event's logical content (ignoring scheduling sequence
    /// numbers) into `h` — the per-event ingredient of
    /// [`Simulation::state_digest`].
    fn digest_into(&self, h: &mut impl Hasher) {
        match self {
            EventKind::Publish { publisher, gen } => {
                h.write_u8(1);
                h.write_u32(publisher.raw());
                h.write_u64(*gen);
            }
            EventKind::Process {
                broker,
                message,
                scope,
            } => {
                h.write_u8(2);
                h.write_u32(broker.raw());
                h.write_u64(message.id.raw());
                for id in scope.iter() {
                    h.write_u32(id.raw());
                }
            }
            EventKind::SendComplete { link, queued, gen } => {
                h.write_u8(3);
                h.write_u32(link.raw());
                h.write_u64(queued.message.id.raw());
                h.write_u64(*gen);
                h.write_u64(queued.enqueue_time.as_micros());
                for t in &queued.targets {
                    h.write_u32(t.subscription.raw());
                }
            }
            EventKind::Scenario { action } => {
                h.write_u8(4);
                h.write(action.label().as_bytes());
            }
            EventKind::FlowComplete {
                link,
                message,
                resched,
            } => {
                h.write_u8(5);
                h.write_u32(link.raw());
                h.write_u64(message.raw());
                h.write_u64(*resched);
            }
        }
    }
}

/// How the simulator brings routing and subscription tables back in line
/// after link liveness changes.
///
/// Both policies produce **bit-identical** simulation results — the
/// incremental path recomputes exactly the destinations a link batch can
/// affect and patches exactly the entries whose route entry changed, so the
/// full rebuild survives as the differential oracle
/// (`tests/rebuild_equivalence.rs` pins report equality per seed × scenario
/// × scheduler). The difference is pure wall-clock: a full rebuild is
/// `O(brokers × subscriptions)` per link batch, the incremental patch is
/// proportional to what actually changed plus one `O(subscriptions)`
/// grouping pass per coalesced batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RebuildPolicy {
    /// Recompute all-pairs routes and rebuild every broker's table from the
    /// full population — the reference implementation, kept as the oracle.
    Full,
    /// Recompute only the affected destination trees
    /// ([`Routing::update_for_link_change`]) and patch only the table
    /// entries whose next hop or path statistics moved — the default.
    #[default]
    Incremental,
}

impl RebuildPolicy {
    /// Every selectable policy, oracle first.
    pub const ALL: [RebuildPolicy; 2] = [RebuildPolicy::Full, RebuildPolicy::Incremental];

    /// Stable CLI/report name (`"full"` / `"incremental"`).
    pub fn name(self) -> &'static str {
        match self {
            RebuildPolicy::Full => "full",
            RebuildPolicy::Incremental => "incremental",
        }
    }

    /// Resolves a CLI name (case-insensitive): `"full"` (alias `"rebuild"`)
    /// or `"incremental"` (aliases `"inc"`, `"delta"`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "full" | "rebuild" => Some(RebuildPolicy::Full),
            "incremental" | "inc" | "delta" => Some(RebuildPolicy::Incremental),
            _ => None,
        }
    }
}

/// How publish-time matching scopes message copies.
///
/// Unlike [`RebuildPolicy`] and [`TableLayout`], the two modes are **not**
/// bit-identical: covering aggregates admit false positives, so aggregate
/// forwarding may push copies down subtrees that end up serving nobody. What
/// is preserved — and what `tests/forwarding_equivalence.rs` pins per seed ×
/// scenario × scheduler — is the *delivery set*: the exact set of
/// `(message, subscriber)` pairs delivered, the earning, and the
/// conservation/duplicate audits. Hop counts, traffic and per-message
/// interested counts may legitimately differ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ForwardingMode {
    /// Freeze the exact matching subscription set at publication time by
    /// walking the global filter index — `O(population)` per publish. The
    /// reference implementation, kept as the delivery-set oracle.
    #[default]
    Exact,
    /// Match the publication against each edge broker's covering-aggregate
    /// summary only — `O(brokers)` per publish — and carry the aggregate as
    /// the copy's scope. Concrete subscribers are resolved once, at the edge
    /// broker, against the membership frozen at the publish epoch. Requires
    /// [`TableLayout::Sparse`].
    Aggregate,
}

impl ForwardingMode {
    /// Every selectable mode, oracle first.
    pub const ALL: [ForwardingMode; 2] = [ForwardingMode::Exact, ForwardingMode::Aggregate];

    /// Stable CLI/report name (`"exact"` / `"aggregate"`).
    pub fn name(self) -> &'static str {
        match self {
            ForwardingMode::Exact => "exact",
            ForwardingMode::Aggregate => "aggregate",
        }
    }

    /// Resolves a CLI name (case-insensitive): `"exact"` or `"aggregate"`
    /// (alias `"agg"`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "exact" => Some(ForwardingMode::Exact),
            "aggregate" | "agg" => Some(ForwardingMode::Aggregate),
            _ => None,
        }
    }
}

impl fmt::Display for ForwardingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-phase metric accumulation (see [`ScenarioAction::PhaseMark`]).
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// The phase label ("run" for the implicit first phase).
    pub label: String,
    /// When the phase began.
    pub start: SimTime,
    /// When the phase ended (start of the next phase, or end of run).
    pub end: SimTime,
    /// Messages published during the phase.
    pub published: u64,
    /// On-time local deliveries during the phase.
    pub on_time: u64,
    /// Late local deliveries during the phase.
    pub late: u64,
    /// Copies dropped during the phase (expired, unlikely or unsubscribed).
    pub dropped: u64,
    /// Link transmissions started during the phase.
    pub transmissions: u64,
    /// End-to-end delays of on-time deliveries in the phase (ms).
    pub delays_ms: Summary,
}

impl PhaseOutcome {
    fn new(label: String, start: SimTime) -> Self {
        PhaseOutcome {
            label,
            start,
            end: start,
            published: 0,
            on_time: 0,
            late: 0,
            dropped: 0,
            transmissions: 0,
            delays_ms: Summary::new(),
        }
    }
}

/// Per-link utilisation and queueing counters, accumulated by the engine
/// at every transfer start/completion (and, under a sharing link model, at
/// every flow arrival/departure). Time integrals are kept in integer
/// microseconds so the sharded executor reproduces them exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkLoad {
    /// Transfers started on this link.
    pub transmissions: u64,
    /// Transfers whose copy reached the downstream broker.
    pub completed_transfers: u64,
    /// Microseconds the link spent with at least one transfer in flight.
    /// Utilisation = `busy_us` / run duration; a saturated link stays busy
    /// (almost) the whole run.
    pub busy_us: u64,
    /// Integral of the in-flight flow count over time, in flow-µs —
    /// `flow_time_us / busy_us` is the mean concurrency while busy (always
    /// 1 under the exclusive constant-delay model).
    pub flow_time_us: u64,
    /// Most flows ever concurrently in flight (1 under the exclusive
    /// model; up to the admission cap under fair sharing).
    pub peak_flows: u64,
    /// Deepest the sender's output queue behind this link ever got —
    /// the queueing counter: a saturated link grows a backlog here.
    pub peak_queue: u64,
    /// Dedicated-link service consumed by flows under a sharing model, µs
    /// (each completed or voided flow contributes its sampled service time
    /// minus what it still owed). Zero under the exclusive model, where
    /// `busy_us` plays this role directly. With equal sharing the link
    /// serves at unit aggregate rate whenever busy, so `work_done_us ≈
    /// busy_us` once drained — the flow-level conservation law
    /// `tests/linkmodel_equivalence.rs` checks.
    pub work_done_us: f64,
}

/// One in-flight flow on a link under a sharing link model. The engine
/// keeps these per link; the pending [`EventKind::FlowComplete`] whose
/// `resched` stamp matches is the flow's live completion event.
#[derive(Clone)]
pub(crate) struct LinkFlow {
    /// The copy in flight, targets included (requeued intact on failure).
    pub(crate) queued: QueuedMessage,
    /// Sampled dedicated-link service requirement, µs.
    pub(crate) nominal_us: f64,
    /// Dedicated-link service still owed, µs (drains at `elapsed / flows`).
    pub(crate) remaining_us: f64,
    /// Re-schedule stamp of the live completion event.
    pub(crate) resched: u64,
    /// When the live completion event is scheduled.
    pub(crate) completes_at: SimTime,
}

/// Aggregate results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// The paper's objective bookkeeping (delivery rate, earning).
    pub tracker: ObjectiveTracker,
    /// Per-broker counters, indexed by broker id.
    pub broker_counters: Vec<BrokerCounters>,
    /// Number of messages published.
    pub published: u64,
    /// Number of link transmissions started.
    pub transmissions: u64,
    /// Transmissions whose copy reached the downstream broker (the rest were
    /// requeued after a link failure or were still in flight at the end).
    pub completed_transfers: u64,
    /// Summary of end-to-end delays of on-time deliveries (ms).
    pub valid_delays_ms: Summary,
    /// The simulated time at which the run ended.
    pub finished_at: SimTime,
    /// Copies still waiting in output queues when the run ended.
    pub queued_at_end: u64,
    /// Copies still in flight on links when the run ended.
    pub in_flight_at_end: u64,
    /// Copies received but still inside a broker's processing module (`PD`)
    /// when the run ended.
    pub pending_process_at_end: u64,
    /// Per-phase metric breakdown (a single "run" phase for static scenarios).
    pub phases: Vec<PhaseOutcome>,
    /// Total events the loop processed — the numerator of the events/sec
    /// throughput metric the `scale` bench tracks.
    pub events_processed: u64,
    /// The deepest the pending-event set ever got (scheduler load indicator).
    pub peak_pending_events: u64,
    /// Scope-set interns served / interns that reused an existing
    /// allocation (see [`ScopeInterner`]).
    pub scope_interns: u64,
    /// Interner hits (shared allocations) out of [`scope_interns`](Self::scope_interns).
    pub scope_intern_hits: u64,
    /// Broker tables rebuilt from the full population after link events:
    /// every broker on every coalesced link batch under
    /// [`RebuildPolicy::Full`], plus the brokers whose mass reachability
    /// transitions the incremental path chose to bulk-rebuild (cheaper than
    /// entry-at-a-time patching when most destinations moved at once).
    /// Under [`TableLayout::Sparse`] the rebuilt unit is the broker's
    /// aggregate set.
    pub tables_rebuilt_full: u64,
    /// Table entries patched by the incremental rebuild path — retargeted in
    /// place, inserted on recovered reachability or removed on lost
    /// reachability (non-zero only under [`RebuildPolicy::Incremental`]).
    /// Under [`TableLayout::Sparse`] the patched unit is one aggregate
    /// entry per changed `(broker, destination)` pair, not one entry per
    /// subscription.
    pub entries_retargeted: u64,
    /// Aggregate table entries held across all brokers when the run ended —
    /// non-zero only under [`TableLayout::Sparse`], where interior brokers
    /// store one covering-aggregated entry per reachable destination
    /// instead of one entry per subscription.
    pub aggregate_entries: u64,
    /// Rough bytes of subscription-table state at the end of the run: the
    /// sum of every broker's own table plus (under the sparse layout) the
    /// shared population registry, counted once. The memory axis the
    /// `scale` bench tracks per layout.
    pub table_bytes_estimate: u64,
    /// Per-link utilisation/queueing counters, indexed by link id, with
    /// the busy/flow-time integrals closed at `finished_at`.
    pub link_loads: Vec<LinkLoad>,
}

impl SimulationOutcome {
    /// The paper's "message number" metric: total messages received by all brokers.
    pub fn message_number(&self) -> u64 {
        self.broker_counters.iter().map(|c| c.received).sum()
    }

    /// Total copies dropped because they expired.
    pub fn dropped_expired(&self) -> u64 {
        self.broker_counters.iter().map(|c| c.dropped_expired).sum()
    }

    /// Total copies dropped as unlikely to make their deadline (eq. 11).
    pub fn dropped_unlikely(&self) -> u64 {
        self.broker_counters
            .iter()
            .map(|c| c.dropped_unlikely)
            .sum()
    }

    /// Total copies dropped because every target unsubscribed mid-run.
    pub fn dropped_unsubscribed(&self) -> u64 {
        self.broker_counters
            .iter()
            .map(|c| c.dropped_unsubscribed)
            .sum()
    }

    /// Total copies enqueued towards downstream neighbours.
    pub fn enqueued(&self) -> u64 {
        self.broker_counters.iter().map(|c| c.enqueued).sum()
    }

    /// Total copies requeued after their link failed mid-transfer.
    pub fn requeued(&self) -> u64 {
        self.broker_counters.iter().map(|c| c.requeued).sum()
    }

    /// Total local deliveries produced by expanding a covering aggregate at
    /// an edge broker — non-zero only under [`TableLayout::Sparse`], where
    /// it equals the local delivery count (interior brokers route on
    /// aggregates, only edge brokers expand to concrete subscribers).
    pub fn expanded_at_edge(&self) -> u64 {
        self.broker_counters
            .iter()
            .map(|c| c.expanded_at_edge)
            .sum()
    }

    /// Total copies handed to links.
    pub fn sent(&self) -> u64 {
        self.broker_counters.iter().map(|c| c.sent).sum()
    }

    /// Copies that crossed at least one link only to expand to zero members
    /// at their edge broker — the traffic cost of covering-aggregate false
    /// positives (non-zero only under [`ForwardingMode::Aggregate`]).
    pub fn false_positive_forwards(&self) -> u64 {
        self.broker_counters
            .iter()
            .map(|c| c.false_positive_forwards)
            .sum()
    }

    /// Edge expansions that resolved zero members (includes the publisher's
    /// own broker, where no link was wasted; always ≥
    /// [`false_positive_forwards`](Self::false_positive_forwards)).
    pub fn false_positive_drops_at_edge(&self) -> u64 {
        self.broker_counters
            .iter()
            .map(|c| c.false_positive_drops_at_edge)
            .sum()
    }

    /// Checks the copy-conservation invariants and returns a structured
    /// report of the first violated one, if any. Two balances must hold at
    /// the end of every run, static or dynamic:
    ///
    /// 1. **Queue balance** — every copy put into an output queue (enqueued
    ///    or requeued) was either transmitted, dropped (expired / unlikely /
    ///    unsubscribed) or is still queued;
    /// 2. **Transfer balance** — every transmission either completed,
    ///    was requeued after a link failure, or is still in flight.
    pub fn check_conservation(&self) -> Result<(), ConservationViolation> {
        let inserted = self.enqueued() + self.requeued();
        let removed = self.sent()
            + self.dropped_expired()
            + self.dropped_unlikely()
            + self.dropped_unsubscribed()
            + self.queued_at_end;
        if inserted != removed {
            return Err(ConservationViolation {
                balance: ConservationBalance::Queue,
                inserted,
                removed,
                terms: vec![
                    ("enqueued", self.enqueued()),
                    ("requeued", self.requeued()),
                    ("sent", self.sent()),
                    ("dropped_expired", self.dropped_expired()),
                    ("dropped_unlikely", self.dropped_unlikely()),
                    ("dropped_unsubscribed", self.dropped_unsubscribed()),
                    ("queued_at_end", self.queued_at_end),
                ],
            });
        }
        let transfers = self.completed_transfers + self.requeued() + self.in_flight_at_end;
        if self.transmissions != transfers {
            return Err(ConservationViolation {
                balance: ConservationBalance::Transfer,
                inserted: self.transmissions,
                removed: transfers,
                terms: vec![
                    ("transmissions", self.transmissions),
                    ("completed_transfers", self.completed_transfers),
                    ("requeued", self.requeued()),
                    ("in_flight_at_end", self.in_flight_at_end),
                ],
            });
        }
        Ok(())
    }

    /// Checks the no-duplicate-delivery audit: every (message, subscriber)
    /// pair was delivered at most once. Returns a structured report naming
    /// the offending pairs (up to the tracker's sample cap) on violation.
    pub fn check_no_duplicates(&self) -> Result<(), DuplicateDeliveryViolation> {
        let count = self.tracker.duplicate_deliveries();
        if count == 0 {
            return Ok(());
        }
        Err(DuplicateDeliveryViolation {
            count,
            samples: self.tracker.duplicate_samples().to_vec(),
        })
    }
}

/// Which conservation balance a [`ConservationViolation`] broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConservationBalance {
    /// Copies inserted into output queues vs copies leaving them.
    Queue,
    /// Transmissions started vs transfers completed / requeued / in flight.
    Transfer,
}

impl ConservationBalance {
    /// Stable report name (`"queue"` / `"transfer"`).
    pub fn name(self) -> &'static str {
        match self {
            ConservationBalance::Queue => "queue",
            ConservationBalance::Transfer => "transfer",
        }
    }
}

/// A violated copy-conservation balance, with the counters behind it —
/// self-explaining in test failures and machine-readable in model-checking
/// counterexample traces (see `bdps-mc`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConservationViolation {
    /// Which balance broke.
    pub balance: ConservationBalance,
    /// The insertion side of the balance (what went in / started).
    pub inserted: u64,
    /// The removal side of the balance (where every copy must be accounted).
    pub removed: u64,
    /// Every counter contributing to the balance, by name — the full
    /// breakdown, so a report never needs re-deriving from the outcome.
    pub terms: Vec<(&'static str, u64)>,
}

impl fmt::Display for ConservationViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} balance violated: {} inserted != {} accounted (",
            self.balance.name(),
            self.inserted,
            self.removed
        )?;
        for (i, (name, value)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name} {value}")?;
        }
        write!(f, ")")
    }
}

/// A violated no-duplicate-delivery audit: at least one (message,
/// subscriber) pair was delivered more than once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DuplicateDeliveryViolation {
    /// Total duplicate deliveries recorded.
    pub count: u64,
    /// The first few offending (message, subscriber) pairs.
    pub samples: Vec<(MessageId, SubscriberId)>,
}

impl fmt::Display for DuplicateDeliveryViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} duplicate deliveries (first pairs:", self.count)?;
        for (m, s) in &self.samples {
            write!(f, " {m}->{s}")?;
        }
        write!(f, ")")
    }
}

/// A fully constructed simulation, ready to [`run`](Simulation::run).
pub struct Simulation {
    pub(crate) topology: Topology,
    pub(crate) brokers: Vec<BrokerState>,
    subscriptions: Vec<(Subscription, BrokerId)>,
    pub(crate) global_index: MatchIndex,
    /// The graph the schedulers and routing believe in (identical to the true
    /// graph unless an estimation error is configured). Kept so routing can
    /// be recomputed when links fail or recover.
    believed_graph: OverlayGraph,
    routing: Routing,
    pub(crate) link_busy: Vec<bool>,
    /// Which link transfer-time model this run uses (constant by default).
    pub(crate) link_model_kind: LinkModelKind,
    /// The model instance every transfer-time computation goes through —
    /// stateless (all flow bookkeeping lives in the engine), so forks
    /// rebuild it from `link_model_kind`.
    pub(crate) link_model: Box<dyn LinkModel>,
    /// In-flight flows per link under a sharing link model (always empty
    /// under the exclusive constant-delay model, where `link_busy` and the
    /// copy-carrying `SendComplete` event do the bookkeeping).
    pub(crate) link_flows: Vec<Vec<LinkFlow>>,
    /// When each link's in-flight set last changed — the left edge of the
    /// open busy/flow-time integral interval in `link_load`.
    pub(crate) link_last_change: Vec<SimTime>,
    /// Per-link utilisation/queueing counters (see [`LinkLoad`]).
    pub(crate) link_load: Vec<LinkLoad>,
    /// Nested failure depth per link; a link is alive iff its depth is 0.
    pub(crate) link_down_depth: Vec<u32>,
    /// Failure generation per link, bumped on every `LinkDown`; a transfer
    /// whose start generation differs at completion was interrupted by a
    /// failure (even one that already recovered) and is void.
    pub(crate) link_fail_gen: Vec<u64>,
    /// Set when link liveness changed since the last routing rebuild.
    routing_dirty: bool,
    /// Links whose liveness toggled since the last rebuild (deduplicated via
    /// `link_dirty`); the incremental path diffs them against
    /// `link_alive_at_rebuild` to find the net removed/restored sets.
    dirty_links: Vec<LinkId>,
    link_dirty: Vec<bool>,
    /// Per-link liveness as of the last routing rebuild.
    link_alive_at_rebuild: Vec<bool>,
    /// How routing and tables are brought in line after link events.
    rebuild_policy: RebuildPolicy,
    /// How brokers materialise their subscription tables (dense replicated
    /// entries, or sparse covering aggregates over the shared registry).
    table_layout: TableLayout,
    /// How publish-time matching scopes copies (exact subscription sets, or
    /// covering aggregates expanded at the edge). `pub(crate)` so the
    /// sharded executor can reject the aggregate mode up front.
    pub(crate) forwarding: ForwardingMode,
    /// Population epoch frozen per message at publication time (aggregate
    /// forwarding only): edge expansion delivers only to members whose join
    /// epoch is at or below the publish epoch, reproducing exact mode's
    /// "a subscription joining a microsecond later must not receive this
    /// message" freeze without materialising the member set.
    publish_epoch: HashMap<MessageId, u64>,
    /// The shared population registry (sparse layout only), referenced by
    /// every broker's table.
    population: Option<PopulationHandle>,
    /// Set once [`build_brokers`](Self::build_brokers) materialised the
    /// per-broker state for the configured layout.
    brokers_built: bool,
    tables_rebuilt_full: u64,
    entries_retargeted: u64,
    pub(crate) link_of: Vec<Vec<Option<LinkId>>>,
    pub(crate) workload: WorkloadConfig,
    pub(crate) scheduler: SchedulerConfig,
    rng: SimRng,
    /// Per-publisher RNG streams (publication gaps and message content) and
    /// per-link streams (transfer-time sampling). Each stream has exactly
    /// one owner entity, so the draw sequence it produces depends only on
    /// the seed and that entity's own event history — never on how events of
    /// *other* entities interleave. This is what lets the sharded executor
    /// replay the sequential run bit-for-bit: a shard owns its entities'
    /// streams outright.
    pub(crate) publisher_rng: Vec<SimRng>,
    pub(crate) link_rng: Vec<SimRng>,
    pub(crate) events: Box<dyn EventQueue<EventKind> + Send>,
    /// Which scheduler implementation `events` is — kept so [`fork`](Self::fork)
    /// can rebuild an identical queue for the branch.
    pub(crate) queue_kind: EventQueueKind,
    pub(crate) events_processed: u64,
    pub(crate) peak_pending_events: usize,
    /// Hash-consing pool for copy scopes; all copies of one message (and all
    /// messages matching the same population subset) share one allocation.
    scope_interner: ScopeInterner,
    /// Scratch id buffer reused across events so scope construction does not
    /// allocate on the hot path.
    scope_scratch: Vec<SubscriptionId>,
    /// Per-publisher message counters ([`key::message_id`] combines the
    /// publisher index and counter into the partition-independent id).
    pub(crate) next_message: Vec<u64>,
    pub(crate) end: SimTime,
    drain_grace: Duration,
    pub(crate) tracker: ObjectiveTracker,
    pub(crate) published: u64,
    pub(crate) transmissions: u64,
    pub(crate) completed_transfers: u64,
    pub(crate) valid_delays_ms: Summary,
    pub(crate) now: SimTime,
    /// Per-publisher rate multiplier (scenario-controlled; 1.0 = base rate).
    pub(crate) rate_multiplier: Vec<f64>,
    /// Per-publisher rate generation; pending publish events from older
    /// generations are ignored when popped.
    pub(crate) publish_gen: Vec<u64>,
    pub(crate) phases: Vec<PhaseOutcome>,
    /// Deliberately broken invariant, if armed (see [`InjectedFault`]).
    /// `None` keeps behaviour bit-identical to a build without the feature.
    #[cfg(feature = "fault-injection")]
    injected_fault: Option<InjectedFault>,
}

/// A deliberately broken protocol invariant, compiled in only under the
/// `fault-injection` feature and armed via [`Simulation::inject_fault`].
///
/// The faults recreate the *classes* of the two historical oracle-found bugs
/// so the model-checking explorer (`bdps-mc`) can prove it detects real
/// violations: a conservation break (copies vanishing) and a duplicate
/// delivery. An unarmed build behaves bit-identically to one without the
/// feature.
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A transfer voided by a link failure silently drops its copy instead
    /// of requeueing it — breaking the transfer-balance conservation law
    /// (the historical flap-voiding bug class).
    VoidedTransferVanishes,
    /// Every local delivery is recorded twice — breaking the
    /// no-duplicate-delivery audit.
    DoubleDelivery,
}

/// Compares a broker's live dense (or sparse-local) table against a
/// from-scratch rebuild, reporting the first divergent entry. Entries are
/// matched by subscription id; the routed fields (edge broker, next hop,
/// next link, path statistics) must agree exactly.
fn compare_dense_tables(
    broker: BrokerId,
    live: &SubscriptionTable,
    fresh: &SubscriptionTable,
) -> Result<(), String> {
    if live.len() != fresh.len() {
        return Err(format!(
            "broker {broker} table holds {} entries, scratch rebuild has {}",
            live.len(),
            fresh.len()
        ));
    }
    for e in fresh.entries() {
        let id = e.subscription.id;
        let Some(l) = live.entry(id) else {
            return Err(format!(
                "broker {broker} table is missing entry {id} present in a scratch rebuild"
            ));
        };
        if l.edge_broker != e.edge_broker
            || l.next_hop != e.next_hop
            || l.next_link != e.next_link
            || l.stats != e.stats
        {
            return Err(format!(
                "broker {broker} entry {id} drifted from the scratch rebuild: \
                 live (edge {}, hop {:?}, link {:?}) vs fresh (edge {}, hop {:?}, link {:?})",
                l.edge_broker, l.next_hop, l.next_link, e.edge_broker, e.next_hop, e.next_link
            ));
        }
    }
    Ok(())
}

impl Simulation {
    /// Builds a simulation over the given topology, workload and scheduler
    /// configuration. All randomness is derived from `rng`.
    pub fn new(
        topology: Topology,
        workload: WorkloadConfig,
        scheduler: SchedulerConfig,
        rng: SimRng,
    ) -> Self {
        Self::with_estimation_error(topology, workload, scheduler, rng, EstimationError::NONE)
    }

    /// Like [`new`](Self::new), but the routing tables, path statistics and
    /// `FT` estimates are computed from *biased* link parameters while the
    /// actual transfers still follow the true link model — reproducing a
    /// system whose bandwidth measurement is systematically wrong (the
    /// `ablation_estimation` experiment).
    pub fn with_estimation_error(
        topology: Topology,
        workload: WorkloadConfig,
        scheduler: SchedulerConfig,
        rng: SimRng,
        estimation_error: EstimationError,
    ) -> Self {
        Self::with_scenario(
            topology,
            workload,
            scheduler,
            rng,
            estimation_error,
            DynamicScenario::static_scenario(),
        )
    }

    /// The full constructor: like
    /// [`with_estimation_error`](Self::with_estimation_error) plus a
    /// [`DynamicScenario`] whose materialised events are injected into the
    /// event loop. The scenario draws from an RNG stream derived from `rng`'s
    /// seed, so the main simulation stream is untouched — a static scenario
    /// run is bit-for-bit identical to one built through
    /// [`new`](Self::new).
    pub fn with_scenario(
        topology: Topology,
        workload: WorkloadConfig,
        scheduler: SchedulerConfig,
        mut rng: SimRng,
        estimation_error: EstimationError,
        scenario: DynamicScenario,
    ) -> Self {
        workload.validate().expect("invalid workload");
        scheduler.validate().expect("invalid scheduler config");

        // The graph the *schedulers believe in*: identical structure, link
        // rate parameters perturbed by the estimation error. Link identifiers
        // are preserved because links are re-added in the original order.
        let believed_graph = if estimation_error.is_none() {
            topology.graph.clone()
        } else {
            let mut g = bdps_overlay::graph::OverlayGraph::new();
            for b in topology.graph.brokers() {
                g.add_broker(b.layer);
            }
            for l in topology.graph.links() {
                let believed = estimation_error.apply(l.quality.rate_distribution());
                let quality =
                    bdps_net::link::LinkQuality::new(bdps_net::bandwidth::NormalRate::new(
                        believed.mean().max(0.01),
                        believed.std_dev(),
                    ))
                    .with_propagation(l.quality.propagation);
                g.add_link(l.from, l.to, quality);
            }
            g
        };

        let routing = Routing::compute(&believed_graph);

        // Subscription population: one subscription per subscriber.
        let mut subscriptions = Vec::with_capacity(topology.subscribers.len());
        for (i, (subscriber, broker)) in topology.subscribers.iter().enumerate() {
            let sub = workload.generate_subscription(
                SubscriptionId::new(i as u32),
                *subscriber,
                &mut rng,
            );
            subscriptions.push((sub, *broker));
        }

        // The scenario event stream, drawn from an independent seed-derived
        // stream so it neither perturbs nor depends on the main simulation
        // randomness (replay stays exact whatever the scenario does).
        let mut scenario_rng = rng.split(0x5CE7_A210);
        let scenario_events = scenario.materialize(&topology, &workload, &mut scenario_rng);

        // Per-broker subscription tables and broker state machines are built
        // lazily (see [`build_brokers`](Self::build_brokers)): the layout may
        // still change through `with_table_layout`, and at 10⁵+ subscribers
        // building dense tables only to discard them for sparse ones would
        // dominate construction. Both are built from the believed graph
        // (what measurement reports), while actual transfer times are
        // sampled from the true graph.

        // Global filter index used to count ts_i at publication time.
        let global_index =
            MatchIndex::from_subscriptions(subscriptions.iter().map(|(s, _)| (s.id, &s.filter)));

        // Link bookkeeping.
        let n = topology.graph.broker_count();
        let mut link_of = vec![vec![None; n]; n];
        for l in topology.graph.links() {
            link_of[l.from.index()][l.to.index()] = Some(l.id);
        }
        let link_count = topology.graph.link_count();
        let link_busy = vec![false; link_count];
        let link_down_depth = vec![0u32; topology.graph.link_count()];
        let link_fail_gen = vec![0u64; topology.graph.link_count()];
        let link_dirty = vec![false; topology.graph.link_count()];
        let link_alive_at_rebuild = vec![true; topology.graph.link_count()];

        let publisher_slots = topology
            .publishers
            .iter()
            .map(|(p, _)| p.index() + 1)
            .max()
            .unwrap_or(0);
        assert!(
            publisher_slots <= key::MAX_PUBLISHER_SLOTS,
            "canonical event keys support at most {} publisher slots",
            key::MAX_PUBLISHER_SLOTS
        );
        assert!(
            topology.graph.link_count() <= key::MAX_LINKS,
            "canonical event keys support at most {} links",
            key::MAX_LINKS
        );

        // One independent, seed-derived RNG stream per publisher and per
        // link (`SimRng::split` derives from the seed alone, so the streams
        // are fixed the moment the seed is). Distinct tag bases keep them
        // disjoint from the builder's topology/sim splits (0, 1) and the
        // scenario stream (0x5CE7_A210).
        const PUBLISHER_STREAM_BASE: u64 = 0x70B1_0000_0000;
        const LINK_STREAM_BASE: u64 = 0x114B_0000_0000;
        let publisher_rng: Vec<SimRng> = (0..publisher_slots)
            .map(|i| rng.split(PUBLISHER_STREAM_BASE + i as u64))
            .collect();
        let link_rng: Vec<SimRng> = (0..topology.graph.link_count())
            .map(|i| rng.split(LINK_STREAM_BASE + i as u64))
            .collect();

        let end = SimTime::ZERO + workload.duration;
        let mut sim = Simulation {
            topology,
            brokers: Vec::new(),
            subscriptions,
            global_index,
            believed_graph,
            routing,
            link_busy,
            link_model_kind: LinkModelKind::default(),
            link_model: LinkModelKind::default().create(),
            link_flows: vec![Vec::new(); link_count],
            link_last_change: vec![SimTime::ZERO; link_count],
            link_load: vec![LinkLoad::default(); link_count],
            link_down_depth,
            link_fail_gen,
            routing_dirty: false,
            dirty_links: Vec::new(),
            link_dirty,
            link_alive_at_rebuild,
            rebuild_policy: RebuildPolicy::default(),
            table_layout: TableLayout::default(),
            forwarding: ForwardingMode::default(),
            publish_epoch: HashMap::new(),
            population: None,
            brokers_built: false,
            tables_rebuilt_full: 0,
            entries_retargeted: 0,
            link_of,
            workload,
            scheduler,
            rng,
            publisher_rng,
            link_rng,
            events: EventQueueKind::default().create(),
            queue_kind: EventQueueKind::default(),
            events_processed: 0,
            peak_pending_events: 0,
            scope_interner: ScopeInterner::new(),
            scope_scratch: Vec::new(),
            next_message: vec![0; publisher_slots],
            end,
            drain_grace: Duration::from_secs(120),
            tracker: ObjectiveTracker::new(),
            published: 0,
            transmissions: 0,
            completed_transfers: 0,
            valid_delays_ms: Summary::new(),
            now: SimTime::ZERO,
            rate_multiplier: vec![1.0; publisher_slots],
            publish_gen: vec![0; publisher_slots],
            phases: vec![PhaseOutcome::new("run".into(), SimTime::ZERO)],
            #[cfg(feature = "fault-injection")]
            injected_fault: None,
        };

        // Scenario keys rank lowest, so at equal times a scenario action
        // applies before publications and transfers.
        for (idx, ev) in scenario_events.into_iter().enumerate() {
            sim.push_event(
                SimTime::ZERO + ev.at,
                key::scenario(idx as u64),
                EventKind::Scenario { action: ev.action },
            );
        }

        // Seed the publishers.
        let publishers: Vec<PublisherId> =
            sim.topology.publishers.iter().map(|(p, _)| *p).collect();
        for p in publishers {
            sim.schedule_next_publication(p, SimTime::ZERO);
        }
        sim
    }

    /// Sets how long after the publication period the simulator keeps
    /// processing in-flight messages (default two minutes).
    pub fn with_drain_grace(mut self, grace: Duration) -> Self {
        self.drain_grace = grace;
        self
    }

    /// Swaps the event scheduler implementation (see [`EventQueueKind`]).
    /// Both schedulers pop in identical `(time, seq)` order, so the choice
    /// changes throughput, never results. Call before [`run`](Self::run);
    /// already-scheduled events (scenario stream, publisher seeds) carry
    /// over.
    pub fn with_event_queue(mut self, kind: EventQueueKind) -> Self {
        let mut replacement = kind.create();
        while let Some(event) = self.events.pop() {
            replacement.push(event);
        }
        self.events = replacement;
        self.queue_kind = kind;
        self
    }

    /// Selects the routing/table rebuild policy applied after link events
    /// (see [`RebuildPolicy`]; incremental by default). Both policies yield
    /// bit-identical results, so the choice only affects wall-clock time —
    /// the equivalence suite runs the same seeds under both.
    pub fn with_rebuild_policy(mut self, policy: RebuildPolicy) -> Self {
        self.rebuild_policy = policy;
        self
    }

    /// Selects how brokers materialise their subscription tables (see
    /// [`TableLayout`]; dense by default). Both layouts yield bit-identical
    /// results — the dense replicated table survives as the differential
    /// oracle (`tests/layout_equivalence.rs`) — so the choice trades memory
    /// (`O(brokers × subscriptions)` dense vs `O(population + brokers²)`
    /// sparse) and maintenance cost, never outcomes. Call before
    /// [`run`](Self::run) or [`prepare`](Self::prepare).
    pub fn with_table_layout(mut self, layout: TableLayout) -> Self {
        assert!(
            !self.brokers_built,
            "table layout must be chosen before broker state is materialised"
        );
        self.table_layout = layout;
        self
    }

    /// Selects the link transfer-time model (see
    /// [`LinkModelKind`]; constant delay by default). Every transfer-time
    /// computation goes through the chosen [`LinkModel`] trait object —
    /// the constant model is the differential oracle, bit-identical to the
    /// pre-trait engine (`tests/linkmodel_equivalence.rs` pins it) — so a
    /// direct `LinkQuality::sample_transfer` call in the engine would
    /// bypass the sharing discipline and is no longer allowed. Call before
    /// [`run`](Self::run), while no traffic has flowed.
    pub fn with_link_model(mut self, kind: LinkModelKind) -> Self {
        assert!(
            self.transmissions == 0 && self.link_flows.iter().all(Vec::is_empty),
            "link model must be chosen before any transfer starts"
        );
        self.link_model_kind = kind;
        self.link_model = kind.create();
        self
    }

    /// The link transfer-time model this run uses.
    pub fn link_model(&self) -> LinkModelKind {
        self.link_model_kind
    }

    /// Selects how publish-time matching scopes copies (see
    /// [`ForwardingMode`]; exact by default). Aggregate forwarding requires
    /// the sparse table layout — the combination with a dense layout is
    /// rejected as a structured error when the run starts. Call before
    /// [`run`](Self::run).
    pub fn with_forwarding(mut self, mode: ForwardingMode) -> Self {
        assert!(
            self.published == 0,
            "forwarding mode must be chosen before any message is published"
        );
        self.forwarding = mode;
        self
    }

    /// The forwarding mode this run uses.
    pub fn forwarding(&self) -> ForwardingMode {
        self.forwarding
    }

    /// The objective bookkeeping accumulated so far — the mid-run view the
    /// model-checking explorer reads to collect terminal delivery sets.
    pub fn tracker(&self) -> &ObjectiveTracker {
        &self.tracker
    }

    /// Materialises the per-broker state (tables and queues) for the
    /// configured layout. The builder calls this so construction cost is
    /// paid in the build phase rather than inside the first instants of
    /// [`run`](Self::run); `run` calls it automatically when skipped.
    pub fn prepare(mut self) -> Self {
        self.build_brokers();
        self
    }

    pub(crate) fn build_brokers(&mut self) {
        if self.brokers_built {
            return;
        }
        self.brokers_built = true;
        match self.table_layout {
            TableLayout::Dense => {
                let tables = SubscriptionTable::build_all(
                    &self.believed_graph,
                    &self.routing,
                    &self.subscriptions,
                );
                self.brokers = tables
                    .into_iter()
                    .map(|table| {
                        BrokerState::from_overlay(
                            &self.believed_graph,
                            table.broker(),
                            table,
                            self.scheduler.clone(),
                        )
                    })
                    .collect();
            }
            TableLayout::Sparse => {
                let population: PopulationHandle = Arc::new(RwLock::new(
                    SharedPopulation::from_population(&self.subscriptions),
                ));
                self.brokers = (0..self.believed_graph.broker_count())
                    .map(|i| {
                        let id = BrokerId::new(i as u32);
                        BrokerState::from_overlay(
                            &self.believed_graph,
                            id,
                            SparseTable::build(id, &self.routing, &population),
                            self.scheduler.clone(),
                        )
                    })
                    .collect();
                self.population = Some(population);
            }
        }
    }

    /// The table layout this run uses.
    pub fn table_layout(&self) -> TableLayout {
        self.table_layout
    }

    /// The subscription population of this run (changes under churn).
    pub fn subscriptions(&self) -> &[(Subscription, BrokerId)] {
        &self.subscriptions
    }

    /// The scheduler configuration of this run.
    pub fn scheduler(&self) -> &SchedulerConfig {
        &self.scheduler
    }

    fn push_event(&mut self, time: SimTime, key: u64, kind: EventKind) {
        self.events.push(Scheduled {
            time,
            seq: key,
            item: kind,
        });
        self.peak_pending_events = self.peak_pending_events.max(self.events.len());
    }

    fn schedule_next_publication(&mut self, publisher: PublisherId, after: SimTime) {
        let multiplier = self.rate_multiplier[publisher.index()];
        let Some(gap) = self
            .workload
            .next_publication_gap_scaled(multiplier, &mut self.publisher_rng[publisher.index()])
        else {
            return; // zero effective publishing rate: the chain goes dormant
        };
        let t = after + gap;
        if t < self.end {
            let gen = self.publish_gen[publisher.index()];
            self.push_event(
                t,
                key::publish(publisher, gen),
                EventKind::Publish { publisher, gen },
            );
        }
    }

    fn link_between(&self, from: BrokerId, to: BrokerId) -> Option<LinkId> {
        self.link_of[from.index()][to.index()]
    }

    fn link_alive(&self, link: LinkId) -> bool {
        self.link_down_depth[link.index()] == 0
    }

    fn current_phase(&mut self) -> &mut PhaseOutcome {
        self.phases.last_mut().expect("at least one phase")
    }

    /// Advances `link`'s busy/flow-time integrals to `now` and, under a
    /// sharing model, drains the equal share of elapsed service from every
    /// active flow's remaining work. Must be called before the link's
    /// in-flight set changes (flow admitted, completed or voided; exclusive
    /// transfer started or finished).
    fn touch_link(&mut self, link: LinkId, now: SimTime) {
        let i = link.index();
        let elapsed = now.duration_since(self.link_last_change[i]).as_micros();
        self.link_last_change[i] = now;
        if elapsed == 0 {
            return;
        }
        // Under the exclusive model the busy flag is the flow count; under
        // a sharing model the flow table is (and the flag stays false).
        let active = self.link_flows[i].len().max(self.link_busy[i] as usize) as u64;
        if active == 0 {
            return;
        }
        let load = &mut self.link_load[i];
        load.busy_us += elapsed;
        load.flow_time_us += active * elapsed;
        let share = elapsed as f64 / active as f64;
        for f in &mut self.link_flows[i] {
            f.remaining_us -= share;
        }
    }

    /// Recomputes and (re-)schedules the completion of every active flow on
    /// `link`. Assumes [`touch_link`](Self::touch_link) already advanced
    /// remaining work to `now`: with `n` flows each receiving an equal
    /// share, a flow owing `w` µs of dedicated service completes `w·n` µs
    /// from now. A fresh [`EventKind::FlowComplete`] is pushed only for
    /// flows whose completion time actually moved; the superseded event is
    /// recognised (and ignored) at pop by its outdated `resched` stamp.
    fn reschedule_flows(&mut self, link: LinkId, now: SimTime) {
        let i = link.index();
        let n = self.link_flows[i].len();
        if n == 0 {
            return;
        }
        let mut moved: Vec<(SimTime, MessageId, u64)> = Vec::new();
        for f in &mut self.link_flows[i] {
            let wait_us = f.remaining_us.max(0.0) * n as f64;
            let completes = now + Duration::from_millis_f64(wait_us / 1_000.0);
            if completes != f.completes_at {
                f.resched += 1;
                f.completes_at = completes;
                moved.push((completes, f.queued.message.id, f.resched));
            }
        }
        for (at, message, resched) in moved {
            self.push_event(
                at,
                key::send(link, message),
                EventKind::FlowComplete {
                    link,
                    message,
                    resched,
                },
            );
        }
    }

    /// Records the depth of the sender's output queue behind `link` into
    /// the link's peak-queue counter — called wherever copies enter that
    /// queue (enqueue after processing, requeue after a voided transfer).
    fn note_queue_peak(&mut self, link: LinkId, from: BrokerId, to: BrokerId) {
        let depth = self.brokers[from.index()]
            .queue(to)
            .map(|q| q.len() as u64)
            .unwrap_or(0);
        let load = &mut self.link_load[link.index()];
        load.peak_queue = load.peak_queue.max(depth);
    }

    /// Runs the simulation to completion and returns the outcome, panicking
    /// on the (thread-environment-only) failures [`try_run`](Self::try_run)
    /// surfaces as [`SimError`].
    pub fn run(self) -> SimulationOutcome {
        match self.try_run() {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the simulation to completion, surfacing structured
    /// [`SimError`]s (e.g. a population registry lock poisoned by a sibling
    /// thread) instead of panicking.
    pub fn try_run(mut self) -> Result<SimulationOutcome, SimError> {
        if self.forwarding == ForwardingMode::Aggregate && self.table_layout == TableLayout::Dense {
            return Err(SimError::AggregateForwardingNeedsSparseLayout);
        }
        self.build_brokers();
        let hard_stop = self.hard_stop();
        while let Some(entry) = self.events.pop_if_at_or_before(hard_stop) {
            self.try_apply(entry)?;
        }
        Ok(self.into_outcome())
    }

    /// The time past which [`run`](Self::run) stops popping events: the end
    /// of the publication period plus the drain grace.
    pub fn hard_stop(&self) -> SimTime {
        self.end + self.drain_grace
    }

    /// The current simulation time (the time of the last applied event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// The time of the earliest pending event at or before `limit`, if any.
    pub fn peek_next_time(&self, limit: SimTime) -> Option<SimTime> {
        self.events.peek().map(|(t, _)| t).filter(|&t| t <= limit)
    }

    /// Pops and applies the next event if it is at or before `limit`.
    /// Returns false when nothing was applied (run over, or the next event
    /// is past the limit). The run loop is exactly `while self.step_next(..)`.
    pub fn step_next(&mut self, limit: SimTime) -> bool {
        match self.events.pop_if_at_or_before(limit) {
            Some(entry) => {
                self.apply(entry);
                true
            }
            None => false,
        }
    }

    /// Removes every pending event scheduled at the earliest pending time at
    /// or before `limit` — the *same-instant frontier*, in deterministic
    /// `(time, seq)` order (the order the plain run loop would process them
    /// in). The model-checking explorer branches here: each frontier
    /// permutation is a distinct legal interleaving. Events not chosen for
    /// [`apply`](Self::apply) must be re-inserted with
    /// [`push_back`](Self::push_back).
    ///
    /// Requires [`prepare`](Self::prepare) (or a prior event) so broker
    /// state exists before the first frontier is taken.
    pub fn take_frontier(&mut self, limit: SimTime) -> Vec<Scheduled<EventKind>> {
        self.build_brokers();
        self.events.take_frontier(limit)
    }

    /// Re-inserts an event taken with [`take_frontier`](Self::take_frontier)
    /// without assigning a new sequence number, so the deterministic
    /// `(time, seq)` order among the re-inserted events is preserved.
    pub fn push_back(&mut self, event: Scheduled<EventKind>) {
        self.events.push(event);
    }

    /// Applies one event: advances the clock to the event's time and runs
    /// its handler, scheduling any follow-up events. This is the engine's
    /// single step; [`run`](Self::run) is a loop of these, and the
    /// model-checking explorer calls it directly with events chosen from a
    /// [`take_frontier`](Self::take_frontier) batch.
    pub fn apply(&mut self, entry: Scheduled<EventKind>) {
        if let Err(e) = self.try_apply(entry) {
            panic!("{e}");
        }
    }

    /// Like [`apply`](Self::apply), but surfaces structured [`SimError`]s
    /// instead of panicking.
    pub fn try_apply(&mut self, entry: Scheduled<EventKind>) -> Result<(), SimError> {
        debug_assert!(entry.time >= self.now, "events must not run backwards");
        self.now = entry.time;
        self.events_processed += 1;
        let seq = entry.seq;
        match entry.item {
            EventKind::Publish { publisher, gen } => self.on_publish(publisher, gen, entry.time),
            EventKind::Process {
                broker,
                message,
                scope,
            } => self.on_process(
                broker,
                message,
                scope,
                entry.time,
                key::process_via_link(seq),
            ),
            EventKind::SendComplete { link, queued, gen } => {
                self.on_send_complete(link, queued, gen, entry.time)
            }
            EventKind::FlowComplete {
                link,
                message,
                resched,
            } => self.on_flow_complete(link, message, resched, entry.time),
            EventKind::Scenario { action } => return self.on_scenario(action, entry.time),
        }
        Ok(())
    }

    /// Computes the end-of-run outcome from the current state without
    /// consuming the simulation — the explorer snapshots outcomes at
    /// quiescence while keeping the state for further checks.
    pub fn outcome_snapshot(&self) -> SimulationOutcome {
        // End-of-run accounting for the conservation invariants: whatever is
        // left in the event queue is either in flight on a link or inside a
        // broker's processing module; whatever sits in output queues is
        // queued.
        let queued_at_end: u64 = self.brokers.iter().map(|b| b.queued_total() as u64).sum();
        let mut in_flight_at_end = 0u64;
        let mut pending_process_at_end = 0u64;
        self.events.for_each(&mut |entry| match entry.item {
            EventKind::SendComplete { .. } => in_flight_at_end += 1,
            EventKind::Process { .. } => pending_process_at_end += 1,
            // FlowComplete events are not counted: under a sharing model
            // the flow table is authoritative (stale rescheduled events
            // would otherwise inflate the in-flight count).
            _ => {}
        });
        in_flight_at_end += self.link_flows.iter().map(|f| f.len() as u64).sum::<u64>();
        let mut phases = self.phases.clone();
        for i in 0..phases.len() {
            phases[i].end = if i + 1 < phases.len() {
                phases[i + 1].start
            } else {
                self.now
            };
        }

        let aggregate_entries: u64 = self
            .brokers
            .iter()
            .map(|b| b.table().aggregate_entries())
            .sum();
        let table_bytes_estimate: u64 = self
            .brokers
            .iter()
            .map(|b| b.table().bytes_estimate())
            .sum::<u64>()
            + self
                .population
                .as_ref()
                .map(|p| bdps_overlay::sparse::read_population(p).bytes_estimate())
                .unwrap_or(0);

        SimulationOutcome {
            tracker: self.tracker.clone(),
            broker_counters: self.brokers.iter().map(|b| b.counters).collect(),
            published: self.published,
            transmissions: self.transmissions,
            completed_transfers: self.completed_transfers,
            valid_delays_ms: self.valid_delays_ms.clone(),
            finished_at: self.now,
            queued_at_end,
            in_flight_at_end,
            pending_process_at_end,
            phases,
            events_processed: self.events_processed,
            peak_pending_events: self.peak_pending_events as u64,
            scope_interns: self.scope_interner.interns(),
            scope_intern_hits: self.scope_interner.hits(),
            tables_rebuilt_full: self.tables_rebuilt_full,
            entries_retargeted: self.entries_retargeted,
            aggregate_entries,
            table_bytes_estimate,
            link_loads: self.link_loads_snapshot(),
        }
    }

    /// The per-link counters with the open busy/flow-time integral interval
    /// closed at the current clock (the stored accumulators only advance
    /// when a link's in-flight set changes).
    fn link_loads_snapshot(&self) -> Vec<LinkLoad> {
        self.link_load
            .iter()
            .enumerate()
            .map(|(i, load)| {
                let mut load = load.clone();
                let elapsed = self
                    .now
                    .duration_since(self.link_last_change[i])
                    .as_micros();
                let active = self.link_flows[i].len().max(self.link_busy[i] as usize) as u64;
                if elapsed > 0 && active > 0 {
                    load.busy_us += elapsed;
                    load.flow_time_us += active * elapsed;
                }
                load
            })
            .collect()
    }

    /// Consumes the simulation and returns the outcome (the tail of
    /// [`run`](Self::run)).
    pub fn into_outcome(self) -> SimulationOutcome {
        self.outcome_snapshot()
    }

    /// Deep-clones the simulation into an independent branch: every piece of
    /// mutable state — broker tables and queues, the event set, the RNG, the
    /// objective tracker, and (under the sparse layout) the shared
    /// population registry — is copied, so stepping the branch can never
    /// perturb the original. This is the branching primitive of the
    /// model-checking explorer.
    pub fn fork(&self) -> Simulation {
        let mut brokers = self.brokers.clone();
        // The sparse layout shares one population registry behind an
        // `Arc<RwLock>`; a branch must get its own deep copy, and every
        // cloned broker table must be re-pointed at it.
        let population = self.population.as_ref().map(|p| {
            Arc::new(RwLock::new(
                bdps_overlay::sparse::read_population(p).clone(),
            )) as PopulationHandle
        });
        if let Some(pop) = &population {
            for b in &mut brokers {
                b.repoint_population(pop);
            }
        }
        let mut events = self.queue_kind.create();
        self.events.for_each(&mut |e| events.push(e.clone()));
        Simulation {
            topology: self.topology.clone(),
            brokers,
            subscriptions: self.subscriptions.clone(),
            global_index: self.global_index.clone(),
            believed_graph: self.believed_graph.clone(),
            routing: self.routing.clone(),
            link_busy: self.link_busy.clone(),
            link_model_kind: self.link_model_kind,
            link_model: self.link_model_kind.create(),
            link_flows: self.link_flows.clone(),
            link_last_change: self.link_last_change.clone(),
            link_load: self.link_load.clone(),
            link_down_depth: self.link_down_depth.clone(),
            link_fail_gen: self.link_fail_gen.clone(),
            routing_dirty: self.routing_dirty,
            dirty_links: self.dirty_links.clone(),
            link_dirty: self.link_dirty.clone(),
            link_alive_at_rebuild: self.link_alive_at_rebuild.clone(),
            rebuild_policy: self.rebuild_policy,
            table_layout: self.table_layout,
            forwarding: self.forwarding,
            publish_epoch: self.publish_epoch.clone(),
            population,
            brokers_built: self.brokers_built,
            tables_rebuilt_full: self.tables_rebuilt_full,
            entries_retargeted: self.entries_retargeted,
            link_of: self.link_of.clone(),
            workload: self.workload.clone(),
            scheduler: self.scheduler.clone(),
            rng: self.rng.clone(),
            publisher_rng: self.publisher_rng.clone(),
            link_rng: self.link_rng.clone(),
            events,
            queue_kind: self.queue_kind,
            events_processed: self.events_processed,
            peak_pending_events: self.peak_pending_events,
            scope_interner: self.scope_interner.clone(),
            scope_scratch: Vec::new(),
            next_message: self.next_message.clone(),
            end: self.end,
            drain_grace: self.drain_grace,
            tracker: self.tracker.clone(),
            published: self.published,
            transmissions: self.transmissions,
            completed_transfers: self.completed_transfers,
            valid_delays_ms: self.valid_delays_ms.clone(),
            now: self.now,
            rate_multiplier: self.rate_multiplier.clone(),
            publish_gen: self.publish_gen.clone(),
            phases: self.phases.clone(),
            #[cfg(feature = "fault-injection")]
            injected_fault: self.injected_fault,
        }
    }

    /// Hashes the complete *logical* state of the simulation — clock,
    /// pending events (ignoring scheduling sequence numbers), broker
    /// counters, queues and tables, link liveness, RNG stream position and
    /// objective bookkeeping — into one `u64`. Two states with equal digests
    /// behave identically under any same-instant frontier permutation, which
    /// is what lets the model-checking explorer deduplicate branches that
    /// converge after commuting events.
    ///
    /// Sequence numbers are deliberately excluded: the explorer enumerates
    /// every frontier permutation anyway, so the relative seq order of
    /// same-instant events never narrows the set of explored behaviours.
    pub fn state_digest(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write_u64(self.now.as_micros());
        for &counter in &self.next_message {
            h.write_u64(counter);
        }
        h.write_u64(self.published);
        h.write_u64(self.transmissions);
        h.write_u64(self.completed_transfers);
        for r in std::iter::once(&self.rng)
            .chain(self.publisher_rng.iter())
            .chain(self.link_rng.iter())
        {
            for w in r.state_words() {
                h.write_u64(w);
            }
        }
        // Pending events as a sorted multiset of (time, content digest).
        let mut pending: Vec<(u64, u64)> = Vec::with_capacity(self.events.len());
        self.events.for_each(&mut |e| {
            let mut eh = std::collections::hash_map::DefaultHasher::new();
            e.item.digest_into(&mut eh);
            pending.push((e.time.as_micros(), eh.finish()));
        });
        pending.sort_unstable();
        h.write_usize(pending.len());
        for (t, d) in pending {
            h.write_u64(t);
            h.write_u64(d);
        }
        // Link state.
        for (i, busy) in self.link_busy.iter().enumerate() {
            h.write_u8(*busy as u8);
            h.write_u32(self.link_down_depth[i]);
            h.write_u64(self.link_fail_gen[i]);
            h.write_u8(self.link_alive_at_rebuild[i] as u8);
            h.write_u64(self.link_last_change[i].as_micros());
            let load = &self.link_load[i];
            h.write_u64(load.transmissions);
            h.write_u64(load.completed_transfers);
            h.write_u64(load.busy_us);
            h.write_u64(load.flow_time_us);
            h.write_u64(load.peak_flows);
            h.write_u64(load.peak_queue);
            h.write_u64(load.work_done_us.to_bits());
            // Flows as an id-sorted multiset: the Vec order is admission
            // order, which is not logical state.
            let mut flows: Vec<&LinkFlow> = self.link_flows[i].iter().collect();
            flows.sort_unstable_by_key(|f| f.queued.message.id.raw());
            h.write_usize(flows.len());
            for f in flows {
                h.write_u64(f.queued.message.id.raw());
                h.write_u64(f.nominal_us.to_bits());
                h.write_u64(f.remaining_us.to_bits());
                h.write_u64(f.resched);
                h.write_u64(f.completes_at.as_micros());
            }
        }
        h.write_u8(self.link_model_kind as u8);
        h.write_u8(self.forwarding as u8);
        // Publish epochs as a sorted list (aggregate forwarding only; the
        // map is insertion-ordered-free but iteration order is not logical
        // state).
        let mut epochs: Vec<(u64, u64)> = self
            .publish_epoch
            .iter()
            .map(|(m, e)| (m.raw(), *e))
            .collect();
        epochs.sort_unstable();
        h.write_usize(epochs.len());
        for (m, e) in epochs {
            h.write_u64(m);
            h.write_u64(e);
        }
        h.write_u8(self.routing_dirty as u8);
        // Brokers: counters, queues and tables.
        for b in &self.brokers {
            h.write_u64(b.state_digest());
        }
        if let Some(pop) = &self.population {
            h.write_u64(bdps_overlay::sparse::read_population(pop).state_digest());
        }
        // Population membership (the dense layout has no registry).
        h.write_usize(self.subscriptions.len());
        for (sub, edge) in &self.subscriptions {
            h.write_u32(sub.id.raw());
            h.write_u32(edge.raw());
        }
        h.write_u64(self.tracker.state_digest());
        h.finish()
    }

    /// Verifies that routing and every broker's subscription table agree
    /// with a from-scratch rebuild — the table/routing-consistency invariant
    /// the model checker asserts in every interleaving.
    ///
    /// The reference point is the link liveness **as of the last rebuild**
    /// (`link_alive_at_rebuild`): while a coalesced same-instant link batch
    /// is still in flight the engine intentionally defers the rebuild, so
    /// tables lag the instantaneous liveness but must always equal what a
    /// scratch rebuild at the last-rebuilt liveness produces.
    pub fn audit_tables(&self) -> Result<(), String> {
        let alive = &self.link_alive_at_rebuild;
        let fresh_routing = Routing::compute_filtered(&self.believed_graph, |l| alive[l.index()]);
        if fresh_routing != self.routing {
            return Err(
                "routing disagrees with a from-scratch recompute at the last-rebuilt liveness"
                    .to_string(),
            );
        }
        for broker in &self.brokers {
            match broker.table() {
                BrokerTable::Dense(table) => {
                    let fresh =
                        SubscriptionTable::build(broker.id, &self.routing, &self.subscriptions);
                    compare_dense_tables(broker.id, table, &fresh)?;
                }
                BrokerTable::Sparse(table) => {
                    let fresh = SparseTable::build(broker.id, &self.routing, table.population());
                    compare_dense_tables(broker.id, table.local(), fresh.local())?;
                    let current: Vec<_> = table.aggregates().collect();
                    let rebuilt: Vec<_> = fresh.aggregates().collect();
                    if current.len() != rebuilt.len() {
                        return Err(format!(
                            "broker {} holds {} aggregates, scratch rebuild has {}",
                            broker.id,
                            current.len(),
                            rebuilt.len()
                        ));
                    }
                    for ((dest_a, a), (dest_b, b)) in current.iter().zip(rebuilt.iter()) {
                        if dest_a != dest_b || a != b {
                            return Err(format!(
                                "broker {} aggregate for {} drifted from the scratch rebuild",
                                broker.id, dest_a
                            ));
                        }
                    }
                    // Envelope-vs-members invariant: every aggregate's QoS
                    // envelope must be *exactly* the fold over the
                    // destination group's current members. The scratch fold
                    // iterates member records directly — independent of the
                    // prefix-fold machinery the table's envelope came from —
                    // so a prefix-maintenance bug cannot agree with it.
                    {
                        let pop = bdps_overlay::sparse::read_population(table.population());
                        let epoch = pop.epoch();
                        for (dest, a) in &current {
                            let scratch = pop.scratch_envelope(*dest, epoch);
                            if a.envelope != scratch {
                                return Err(format!(
                                    "broker {} envelope for {} is {:?}, but the fold over \
                                     current members gives {:?}",
                                    broker.id, dest, a.envelope, scratch
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Total duplicate deliveries recorded so far (the mid-run view of the
    /// audit behind [`SimulationOutcome::check_no_duplicates`]).
    pub fn duplicate_deliveries_so_far(&self) -> u64 {
        self.tracker.duplicate_deliveries()
    }

    /// Arms a deliberately broken invariant, proving the model-checking
    /// explorer catches real violations (see `bdps-mc`'s fault-injection
    /// suite). Compiled only with the `fault-injection` feature; without the
    /// fault armed, behaviour is untouched.
    #[cfg(feature = "fault-injection")]
    pub fn inject_fault(&mut self, fault: InjectedFault) {
        self.injected_fault = Some(fault);
    }

    fn on_publish(&mut self, publisher: PublisherId, gen: u64, time: SimTime) {
        if self.publish_gen[publisher.index()] != gen {
            return; // stale event from before a rate change
        }
        let Some(broker) = self.topology.publisher_broker(publisher) else {
            return;
        };
        let counter = self.next_message[publisher.index()];
        self.next_message[publisher.index()] += 1;
        let id = key::message_id(publisher, counter);
        let message = Arc::new(self.workload.generate_message(
            id,
            publisher,
            time,
            &mut self.publisher_rng[publisher.index()],
        ));
        self.published += 1;
        self.current_phase().published += 1;

        let scope = match self.forwarding {
            ForwardingMode::Exact => {
                // ts_i: how many subscribers are interested in this message.
                // The matching set doubles as the copy's scope, freezing the
                // interested population at publication time — under churn a
                // subscription joining a microsecond later must not receive
                // (nor re-route) this message.
                let mut ids = std::mem::take(&mut self.scope_scratch);
                self.global_index.matching_into(&message.head, &mut ids);
                self.tracker.register_message(id, ids.len() as u32);
                let scope = self.scope_interner.intern(&ids);
                self.scope_scratch = ids;
                scope
            }
            ForwardingMode::Aggregate => {
                // No global index walk: consult only each edge group's
                // covering summary — O(brokers), not O(population) — and
                // scope the copy with one sentinel per candidate edge.
                // Membership is frozen by epoch instead of by value; the
                // interested count starts at 0 and accumulates as edges
                // expand (see `on_process`).
                let mut ids = std::mem::take(&mut self.scope_scratch);
                ids.clear();
                let epoch = {
                    let pop = bdps_overlay::sparse::read_population(
                        self.population
                            .as_ref()
                            .expect("aggregate forwarding runs on the sparse layout"),
                    );
                    // BTreeMap iteration is ascending in the edge broker id
                    // and the sentinel encoding is monotone in it, so the
                    // scope ids come out ascending as ScopeSet requires.
                    for (dest, group) in pop.groups() {
                        if group.summary_matches(&message.head) {
                            ids.push(bdps_overlay::sparse::aggregate_scope_id(dest));
                        }
                    }
                    pop.epoch()
                };
                self.tracker.register_message(id, 0);
                self.publish_epoch.insert(id, epoch);
                let scope = self.scope_interner.intern(&ids);
                self.scope_scratch = ids;
                scope
            }
        };

        // Hand the message to the attached broker; processing takes PD.
        let done = time + self.scheduler.processing_delay;
        self.push_event(
            done,
            key::process(None, id),
            EventKind::Process {
                broker,
                message,
                scope,
            },
        );
        self.schedule_next_publication(publisher, time);
    }

    fn on_process(
        &mut self,
        broker: BrokerId,
        message: Arc<Message>,
        scope: ScopeSet,
        time: SimTime,
        via_link: bool,
    ) {
        let outcome = match self.forwarding {
            ForwardingMode::Exact => self.brokers[broker.index()].handle_arrival_scoped(
                Arc::clone(&message),
                time,
                Some(&scope),
            ),
            ForwardingMode::Aggregate => {
                let epoch = self.publish_epoch.get(&message.id).copied().unwrap_or(0);
                let outcome = self.brokers[broker.index()].handle_arrival_aggregate(
                    Arc::clone(&message),
                    time,
                    &scope,
                    epoch,
                    via_link,
                );
                // The interested count accumulates edge by edge: each
                // expansion contributes exactly the members it resolved, so
                // once every copy lands total_interested equals the delivered
                // count (aggregate mode has no "interested but undelivered"
                // notion — the oracle compares delivery sets, not rates).
                self.tracker
                    .add_interested(message.id, outcome.local.len() as u32);
                outcome
            }
        };
        for d in &outcome.local {
            self.tracker
                .record_delivery(message.id, d.subscriber, d.price, d.delay, d.on_time);
            #[cfg(feature = "fault-injection")]
            if self.injected_fault == Some(InjectedFault::DoubleDelivery) {
                // Deliberately record the delivery a second time — the
                // duplicate audit must flag this in every interleaving.
                self.tracker
                    .record_delivery(message.id, d.subscriber, d.price, d.delay, d.on_time);
            }
            let phase = self.phases.last_mut().expect("at least one phase");
            if d.on_time {
                phase.on_time += 1;
                phase.delays_ms.observe(d.delay.as_millis_f64());
                self.valid_delays_ms.observe(d.delay.as_millis_f64());
            } else {
                phase.late += 1;
            }
        }
        for neighbor in outcome.enqueued_to {
            if let Some(link) = self.link_between(broker, neighbor) {
                self.note_queue_peak(link, broker, neighbor);
            }
            self.try_send(broker, neighbor, time);
        }
    }

    fn on_send_complete(&mut self, link: LinkId, queued: QueuedMessage, gen: u64, time: SimTime) {
        let (from, to) = {
            let l = self.topology.graph.link(link);
            (l.from, l.to)
        };
        self.touch_link(link, time);
        self.link_busy[link.index()] = false;
        if !self.link_alive(link) || gen != self.link_fail_gen[link.index()] {
            #[cfg(feature = "fault-injection")]
            if self.injected_fault == Some(InjectedFault::VoidedTransferVanishes) {
                // Deliberately drop the voided copy instead of requeueing it
                // — the transfer-balance conservation law must flag this.
                return;
            }
            // The link died while the copy was in flight (possibly flapping
            // back up before completion — the generation check catches that
            // case): the transfer is void and the copy goes back into the
            // sender's queue, where it waits for recovery (or a rerouted
            // purge) like any other copy.
            let accepted = self.brokers[from.index()].requeue(to, queued);
            debug_assert!(accepted, "sender must have a queue for its own link");
            self.note_queue_peak(link, from, to);
            if self.link_alive(link) {
                // Flap already over: restart the queue immediately.
                self.try_send(from, to, time);
            }
            return;
        }
        self.completed_transfers += 1;
        self.link_load[link.index()].completed_transfers += 1;
        // The copy arrives at the downstream broker; processing takes PD.
        // Target lists are built in ascending subscription order and every
        // later mutation preserves it, so the ids intern without sorting;
        // thanks to the hash-consing pool the scope of a copy travelling a
        // multi-hop path is allocated once, not once per hop.
        let mut ids = std::mem::take(&mut self.scope_scratch);
        ids.clear();
        ids.extend(queued.targets.iter().map(|t| t.subscription));
        let scope = self.scope_interner.intern(&ids);
        self.scope_scratch = ids;
        let done = time + self.scheduler.processing_delay;
        self.push_event(
            done,
            key::process(Some(link), queued.message.id),
            EventKind::Process {
                broker: to,
                message: queued.message,
                scope,
            },
        );
        // Keep the link busy with the next scheduled message, if any.
        self.try_send(from, to, time);
    }

    fn try_send(&mut self, from: BrokerId, to: BrokerId, now: SimTime) {
        let Some(link) = self.link_between(from, to) else {
            return;
        };
        if !self.link_alive(link) {
            return;
        }
        match self.link_model.sharing() {
            LinkSharing::Exclusive => {
                if self.link_busy[link.index()] {
                    return;
                }
                let decision = self.brokers[from.index()].next_to_send(to, now);
                self.current_phase().dropped += decision.dropped.len() as u64;
                let Some(queued) = decision.message else {
                    return;
                };
                let transfer = {
                    let l = self.topology.graph.link(link);
                    self.link_model.sample_transfer(
                        &l.quality,
                        queued.message.size_kb,
                        &mut self.link_rng[link.index()],
                    )
                };
                self.touch_link(link, now);
                self.link_busy[link.index()] = true;
                let load = &mut self.link_load[link.index()];
                load.transmissions += 1;
                load.peak_flows = load.peak_flows.max(1);
                self.transmissions += 1;
                self.current_phase().transmissions += 1;
                let gen = self.link_fail_gen[link.index()];
                self.push_event(
                    now + transfer,
                    key::send(link, queued.message.id),
                    EventKind::SendComplete { link, queued, gen },
                );
            }
            LinkSharing::FairShare { max_flows } => {
                // Admit queued copies as concurrent flows up to the cap;
                // each admission slows every in-flight flow, so all
                // completion times on the link are recomputed.
                while self.link_flows[link.index()].len() < max_flows {
                    let decision = self.brokers[from.index()].next_to_send(to, now);
                    self.current_phase().dropped += decision.dropped.len() as u64;
                    let Some(queued) = decision.message else {
                        break;
                    };
                    let nominal = {
                        let l = self.topology.graph.link(link);
                        self.link_model.sample_transfer(
                            &l.quality,
                            queued.message.size_kb,
                            &mut self.link_rng[link.index()],
                        )
                    };
                    self.touch_link(link, now);
                    let nominal_us = nominal.as_micros() as f64;
                    self.link_flows[link.index()].push(LinkFlow {
                        queued,
                        nominal_us,
                        remaining_us: nominal_us,
                        resched: 0,
                        completes_at: SimTime::MAX,
                    });
                    let flows = self.link_flows[link.index()].len() as u64;
                    let load = &mut self.link_load[link.index()];
                    load.transmissions += 1;
                    load.peak_flows = load.peak_flows.max(flows);
                    self.transmissions += 1;
                    self.current_phase().transmissions += 1;
                    self.reschedule_flows(link, now);
                }
            }
        }
    }

    /// Completion of one flow under a sharing link model. A popped event
    /// whose `resched` stamp no longer matches a live flow is stale — the
    /// flow completed earlier, was voided by a link failure, or had its
    /// completion moved by a later arrival/departure — and is ignored.
    fn on_flow_complete(&mut self, link: LinkId, message: MessageId, resched: u64, time: SimTime) {
        let i = link.index();
        let Some(pos) = self.link_flows[i]
            .iter()
            .position(|f| f.queued.message.id == message && f.resched == resched)
        else {
            return; // stale completion event
        };
        self.touch_link(link, time);
        let flow = self.link_flows[i].remove(pos);
        let load = &mut self.link_load[i];
        load.completed_transfers += 1;
        load.work_done_us += flow.nominal_us - flow.remaining_us.max(0.0);
        self.completed_transfers += 1;
        let (from, to) = {
            let l = self.topology.graph.link(link);
            (l.from, l.to)
        };
        let queued = flow.queued;
        // The copy arrives downstream exactly as in `on_send_complete`.
        let mut ids = std::mem::take(&mut self.scope_scratch);
        ids.clear();
        ids.extend(queued.targets.iter().map(|t| t.subscription));
        let scope = self.scope_interner.intern(&ids);
        self.scope_scratch = ids;
        let done = time + self.scheduler.processing_delay;
        self.push_event(
            done,
            key::process(Some(link), queued.message.id),
            EventKind::Process {
                broker: to,
                message: queued.message,
                scope,
            },
        );
        // The departure speeds up the remaining flows; then refill the
        // freed admission slot from the sender's queue.
        self.reschedule_flows(link, time);
        self.try_send(from, to, time);
    }

    fn on_scenario(&mut self, action: ScenarioAction, time: SimTime) -> Result<(), SimError> {
        match action {
            ScenarioAction::SubscriptionJoin {
                subscription,
                broker,
            } => {
                self.global_index
                    .insert(subscription.id, subscription.filter.clone());
                match self.table_layout {
                    TableLayout::Dense => {
                        for i in 0..self.brokers.len() {
                            if let Some(entry) = SubscriptionTable::entry_for(
                                self.brokers[i].id,
                                &self.routing,
                                &subscription,
                                broker,
                            ) {
                                self.brokers[i].insert_subscription(entry);
                            }
                        }
                    }
                    TableLayout::Sparse => {
                        // Register once globally, expand only at the edge;
                        // interior brokers just refresh their aggregate's
                        // group size (and routed fields, unchanged here).
                        // A poisoned write lock is not recoverable here — a
                        // half-registered subscription would desynchronise
                        // the registry from the broker tables — so surface
                        // it as a structured error instead of a panic.
                        self.population
                            .as_ref()
                            .expect("sparse layout has a population registry")
                            .write()
                            .map_err(|_| SimError::PopulationPoisoned {
                                during: "subscription join",
                            })?
                            .insert(subscription.clone(), broker);
                        let routing = &self.routing;
                        for b in &mut self.brokers {
                            if b.id == broker {
                                b.insert_local_subscription(subscription.clone());
                            } else {
                                b.sync_aggregate(routing, broker);
                            }
                        }
                    }
                }
                self.subscriptions.push((subscription, broker));
            }
            ScenarioAction::SubscriptionLeave { subscription } => {
                self.global_index.remove(subscription);
                let mut edge = None;
                if let Some(pos) = self
                    .subscriptions
                    .iter()
                    .position(|(s, _)| s.id == subscription)
                {
                    edge = Some(self.subscriptions[pos].1);
                    self.subscriptions.remove(pos);
                }
                if self.table_layout == TableLayout::Sparse {
                    self.population
                        .as_ref()
                        .expect("sparse layout has a population registry")
                        .write()
                        .map_err(|_| SimError::PopulationPoisoned {
                            during: "subscription leave",
                        })?
                        .remove(subscription);
                }
                let sparse_edge = match self.table_layout {
                    TableLayout::Sparse => edge,
                    TableLayout::Dense => None,
                };
                let routing = &self.routing;
                let mut orphaned = 0;
                for b in &mut self.brokers {
                    // Strips the local/dense row and every queued copy's
                    // target under both layouts.
                    orphaned += b.remove_subscription(subscription);
                    if let Some(dest) = sparse_edge {
                        // Shrink (or drop) the aggregate towards the edge
                        // the subscription left.
                        if b.id != dest {
                            b.sync_aggregate(routing, dest);
                        }
                    }
                }
                self.current_phase().dropped += orphaned;
            }
            ScenarioAction::PublisherRate {
                publisher,
                multiplier,
            } => {
                let targets: Vec<PublisherId> = match publisher {
                    Some(p) => vec![p],
                    None => self.topology.publishers.iter().map(|(p, _)| *p).collect(),
                };
                for p in targets {
                    if p.index() >= self.rate_multiplier.len() {
                        continue;
                    }
                    self.rate_multiplier[p.index()] = multiplier.max(0.0);
                    // Invalidate the pending publication drawn at the old
                    // rate and restart the chain at the new one.
                    self.publish_gen[p.index()] += 1;
                    self.schedule_next_publication(p, time);
                }
            }
            ScenarioAction::LinkDown { link } => {
                // Bump the failure generation so transfers in flight right
                // now are voided when their SendComplete pops, even if the
                // link flaps back up before they complete. Queued copies
                // simply wait behind the dead link.
                self.link_fail_gen[link.index()] += 1;
                // Under a sharing link model flows are voided eagerly: the
                // copies return to the sender's queue at the failure
                // instant (the sender knows its link died) and the pending
                // FlowComplete events go stale — no live flow will match
                // them at pop.
                if !self.link_flows[link.index()].is_empty() {
                    self.touch_link(link, time);
                    let (from, to) = {
                        let l = self.topology.graph.link(link);
                        (l.from, l.to)
                    };
                    let flows = std::mem::take(&mut self.link_flows[link.index()]);
                    for flow in flows {
                        self.link_load[link.index()].work_done_us +=
                            flow.nominal_us - flow.remaining_us.max(0.0);
                        let accepted = self.brokers[from.index()].requeue(to, flow.queued);
                        debug_assert!(accepted, "sender must have a queue for its own link");
                    }
                    self.note_queue_peak(link, from, to);
                }
                if self.link_down_depth[link.index()] == 0 {
                    self.routing_dirty = true;
                    self.mark_link_dirty(link);
                }
                self.link_down_depth[link.index()] += 1;
                self.maybe_rebuild_routing();
            }
            ScenarioAction::LinkUp { link } => {
                let depth = &mut self.link_down_depth[link.index()];
                if *depth > 0 {
                    *depth -= 1;
                    if *depth == 0 {
                        self.routing_dirty = true;
                        self.mark_link_dirty(link);
                    }
                }
                self.maybe_rebuild_routing();
                if self.link_down_depth[link.index()] == 0 {
                    // Pump the queue that was waiting behind the outage.
                    let (from, to) = {
                        let l = self.topology.graph.link(link);
                        (l.from, l.to)
                    };
                    self.try_send(from, to, time);
                }
            }
            ScenarioAction::PhaseMark { label } => {
                self.phases.push(PhaseOutcome::new(label, time));
            }
        }
        Ok(())
    }

    /// Records a link whose liveness just toggled, for the incremental
    /// rebuild's net removed/restored diff.
    fn mark_link_dirty(&mut self, link: LinkId) {
        if !self.link_dirty[link.index()] {
            self.link_dirty[link.index()] = true;
            self.dirty_links.push(link);
        }
    }

    /// Brings routing and every broker's subscription table back in line
    /// with current link liveness (queues and counters untouched), if any
    /// link's liveness changed since the last rebuild.
    ///
    /// Every link event calls this; when the immediately following event is
    /// another link change at the same instant (a blackout floods hundreds
    /// of them), the rebuild is deferred to the batch's last link event —
    /// pure coalescing, the dirty flag guarantees it cannot be lost even if
    /// that last event is itself a liveness no-op (e.g. the second down of a
    /// nested failure).
    ///
    /// Under [`RebuildPolicy::Full`] routing is recomputed from scratch and
    /// every table rebuilt from the full population; under
    /// [`RebuildPolicy::Incremental`] only the destinations the batch can
    /// affect are recomputed and only the entries whose route entry changed
    /// are patched. Both paths leave routing and tables in identical states.
    fn maybe_rebuild_routing(&mut self) {
        if !self.routing_dirty {
            return;
        }
        if let Some((time, kind)) = self.events.peek() {
            if time == self.now
                && matches!(
                    kind,
                    EventKind::Scenario {
                        action: ScenarioAction::LinkDown { .. } | ScenarioAction::LinkUp { .. }
                    }
                )
            {
                return;
            }
        }
        self.routing_dirty = false;
        match self.rebuild_policy {
            RebuildPolicy::Full => self.rebuild_routing_full(),
            RebuildPolicy::Incremental => self.rebuild_routing_incremental(),
        }
    }

    /// Resolves the dirty-link set against the liveness snapshot of the last
    /// rebuild, returning the links that net-failed and net-recovered since
    /// then (a link that flapped down and back up within one coalesced batch
    /// appears in neither) and refreshing the snapshot.
    fn drain_dirty_links(&mut self) -> (Vec<LinkId>, Vec<LinkId>) {
        let mut removed = Vec::new();
        let mut added = Vec::new();
        for &link in &self.dirty_links {
            let i = link.index();
            self.link_dirty[i] = false;
            let alive = self.link_down_depth[i] == 0;
            if alive == self.link_alive_at_rebuild[i] {
                continue;
            }
            self.link_alive_at_rebuild[i] = alive;
            if alive {
                added.push(link);
            } else {
                removed.push(link);
            }
        }
        self.dirty_links.clear();
        (removed, added)
    }

    /// The original rebuild: all-pairs routing recompute plus a from-scratch
    /// table rebuild on every broker — `O(brokers × subscriptions)` per
    /// coalesced link batch. Kept as the differential oracle behind
    /// [`RebuildPolicy::Full`].
    fn rebuild_routing_full(&mut self) {
        let _ = self.drain_dirty_links(); // keep the snapshot coherent
        let depth = std::mem::take(&mut self.link_down_depth);
        self.routing = Routing::compute_filtered(&self.believed_graph, |l| depth[l.index()] == 0);
        self.link_down_depth = depth;
        match self.table_layout {
            TableLayout::Dense => {
                for i in 0..self.brokers.len() {
                    let table = SubscriptionTable::build(
                        self.brokers[i].id,
                        &self.routing,
                        &self.subscriptions,
                    );
                    self.brokers[i].set_table(table);
                }
            }
            TableLayout::Sparse => {
                // The sparse analogue of a full table rebuild: every
                // broker's aggregate set from scratch — `O(brokers ×
                // destinations)` instead of `O(brokers × population)`.
                let routing = &self.routing;
                for b in &mut self.brokers {
                    b.rebuild_aggregates(routing);
                }
            }
        }
        self.tables_rebuilt_full += self.brokers.len() as u64;
    }

    /// The incremental rebuild: recompute only the destination trees the
    /// link batch can affect, then patch only the `(broker, destination)`
    /// table entries whose route entry changed — work proportional to the
    /// change, not the population.
    fn rebuild_routing_incremental(&mut self) {
        let (removed, added) = self.drain_dirty_links();
        if removed.is_empty() && added.is_empty() {
            return; // the batch was a net liveness no-op
        }
        let depth = std::mem::take(&mut self.link_down_depth);
        let delta = self.routing.update_for_link_change(
            &self.believed_graph,
            |l| depth[l.index()] == 0,
            &removed,
            &added,
        );
        self.link_down_depth = depth;
        if delta.is_empty() {
            return;
        }
        match self.table_layout {
            TableLayout::Dense => self.patch_dense_tables(&delta),
            TableLayout::Sparse => self.patch_sparse_tables(&delta),
        }
    }

    /// The sparse incremental patch: one [`BrokerState::sync_aggregate`]
    /// call per changed `(broker, destination)` pair — `O(changed pairs)`
    /// total, with no population-grouping pass and no mass-transition
    /// fallback (removing or inserting an aggregate is `O(log dests)`, so
    /// the blackout worst case the dense path must special-case is already
    /// cheap here).
    fn patch_sparse_tables(&mut self, delta: &RouteDelta) {
        let routing = &self.routing;
        let mut patched = RetargetOutcome::default();
        for (i, broker) in self.brokers.iter_mut().enumerate() {
            let source = BrokerId::new(i as u32);
            for &dest in delta.changed_dests(source) {
                patched.absorb(broker.sync_aggregate(routing, dest));
            }
        }
        self.entries_retargeted += patched.total();
    }

    /// The dense incremental patch (see [`SubscriptionTable::retarget_entries`]).
    fn patch_dense_tables(&mut self, delta: &RouteDelta) {
        // Group the population by edge broker, but only for the destinations
        // that actually appear in the delta — one pass over the population
        // instead of one pass per broker.
        let mut attached: HashMap<BrokerId, Vec<&Subscription>> = delta
            .changed_dests_union()
            .iter()
            .map(|&dest| (dest, Vec::new()))
            .collect();
        for (sub, edge) in &self.subscriptions {
            if let Some(list) = attached.get_mut(edge) {
                list.push(sub);
            }
        }
        let routing = &self.routing;
        let population = self.subscriptions.len();
        let mut patched = RetargetOutcome::default();
        let mut bulk_rebuilt = 0u64;
        for (i, broker) in self.brokers.iter_mut().enumerate() {
            let source = BrokerId::new(i as u32);
            let dests = delta.changed_dests(source);
            // Retargeting an entry in place is O(1), but a reachability
            // transition removes or inserts it — O(population) each through
            // the ordered entry vector and the matching index, O(n²) across
            // a mass transition (a blackout severing everything, a
            // partition healing). Estimate the transition volume first:
            // reachability is per (broker, destination), so probing one
            // subscription per changed destination classifies the whole
            // group. When transitions reach an eighth of the population,
            // one bulk O(n log n) rebuild is cheaper than patching — and
            // produces the identical table, so the fallback can never
            // change results, only wall-clock.
            let mut transitions = 0usize;
            for &dest in dests {
                let subs = attached.get(&dest).map(Vec::as_slice).unwrap_or(&[]);
                let Some(first) = subs.first() else { continue };
                let present = broker
                    .table()
                    .as_dense()
                    .expect("dense patch path runs under the dense layout")
                    .entry(first.id)
                    .is_some();
                let reachable = dest == source || routing.route(source, dest).is_some();
                if present != reachable {
                    transitions += subs.len();
                }
            }
            if transitions * 8 >= population.max(1) {
                let table = SubscriptionTable::build(source, routing, &self.subscriptions);
                broker.set_table(table);
                bulk_rebuilt += 1;
                continue;
            }
            for &dest in dests {
                let subs = attached.get(&dest).map(Vec::as_slice).unwrap_or(&[]);
                patched.absorb(broker.retarget_entries(routing, dest, subs.iter().copied()));
            }
        }
        self.entries_retargeted += patched.total();
        self.tables_rebuilt_full += bulk_rebuilt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioRegistry;
    use crate::workload::{
        ArrivalKind, BlackoutWindow, BurstConfig, ChurnConfig, LinkFailureConfig, Scenario,
    };
    use bdps_core::config::StrategyKind;
    use bdps_net::bandwidth::FixedRate;
    use bdps_net::link::LinkQuality;
    use bdps_overlay::topology::LayeredMeshConfig;
    use bdps_types::id::SubscriberId;

    fn fast_quality(_rng: &mut SimRng) -> LinkQuality {
        // 10 ms/KB -> a 50 KB message takes 500 ms per hop.
        LinkQuality::new(FixedRate::new(10.0))
    }

    fn small_topology(seed: u64) -> Topology {
        Topology::layered_mesh(
            &LayeredMeshConfig::small(),
            &mut SimRng::seed_from(seed),
            fast_quality,
        )
        .unwrap()
    }

    fn short_workload(scenario: Scenario, rate: f64) -> WorkloadConfig {
        let mut w = match scenario {
            Scenario::SubscriberSpecified => WorkloadConfig::paper_ssd(rate),
            _ => WorkloadConfig::paper_psd(rate),
        };
        w.scenario = scenario;
        w.duration = Duration::from_secs(300);
        w.arrivals = ArrivalKind::Deterministic;
        w
    }

    fn scenario_run(
        scenario: DynamicScenario,
        strategy: StrategyKind,
        seed: u64,
    ) -> SimulationOutcome {
        let topo = small_topology(seed);
        let mut w = WorkloadConfig::paper_ssd(8.0);
        w.duration = Duration::from_secs(300);
        Simulation::with_scenario(
            topo,
            w,
            SchedulerConfig::paper(strategy),
            SimRng::seed_from(seed),
            EstimationError::NONE,
            scenario,
        )
        .run()
    }

    #[test]
    fn uncongested_run_delivers_almost_everything() {
        let topo = small_topology(1);
        let workload = short_workload(Scenario::PublisherSpecified, 4.0);
        let sim = Simulation::new(
            topo,
            workload,
            SchedulerConfig::paper(StrategyKind::MaxEb),
            SimRng::seed_from(2),
        );
        let out = sim.run();
        assert!(out.published > 0);
        assert!(out.tracker.total_interested() > 0);
        let rate = out.tracker.delivery_rate();
        assert!(
            rate > 0.95,
            "expected near-perfect delivery on an idle network, got {rate}"
        );
        assert!(out.message_number() > out.published);
        assert!(out.transmissions > 0);
        assert_eq!(out.dropped_expired() + out.dropped_unlikely(), 0);
        assert!(out.valid_delays_ms.count() > 0);
        assert!(out.valid_delays_ms.mean() > 0.0);
        // Static runs still satisfy the conservation balances and produce a
        // single "run" phase covering the whole run.
        out.check_conservation().unwrap();
        assert_eq!(out.phases.len(), 1);
        assert_eq!(out.phases[0].label, "run");
        assert_eq!(out.phases[0].published, out.published);
        assert_eq!(out.phases[0].end, out.finished_at);
        assert_eq!(out.tracker.duplicate_deliveries(), 0);
    }

    #[test]
    fn runs_are_deterministic_for_a_given_seed() {
        let run = |seed: u64| {
            let topo = small_topology(seed);
            let workload = short_workload(Scenario::SubscriberSpecified, 6.0);
            Simulation::new(
                topo,
                workload,
                SchedulerConfig::paper(StrategyKind::MaxEbpc),
                SimRng::seed_from(seed),
            )
            .run()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.published, b.published);
        assert_eq!(a.message_number(), b.message_number());
        assert_eq!(a.tracker.total_on_time(), b.tracker.total_on_time());
        assert_eq!(
            a.tracker.total_earning().millis(),
            b.tracker.total_earning().millis()
        );
        let c = run(8);
        assert_ne!(
            (a.published, a.tracker.total_on_time()),
            (c.published, c.tracker.total_on_time()),
            "different seeds should differ"
        );
    }

    #[test]
    fn zero_rate_produces_no_traffic() {
        let topo = small_topology(3);
        let workload = short_workload(Scenario::PublisherSpecified, 0.0);
        let out = Simulation::new(
            topo,
            workload,
            SchedulerConfig::paper(StrategyKind::Fifo),
            SimRng::seed_from(4),
        )
        .run();
        assert_eq!(out.published, 0);
        assert_eq!(out.message_number(), 0);
        assert_eq!(out.tracker.delivery_rate(), 0.0);
    }

    #[test]
    fn ssd_earning_is_positive_and_bounded_by_perfect_delivery() {
        let topo = small_topology(5);
        let workload = short_workload(Scenario::SubscriberSpecified, 6.0);
        let out = Simulation::new(
            topo,
            workload,
            SchedulerConfig::paper(StrategyKind::MaxEb),
            SimRng::seed_from(6),
        )
        .run();
        let earning = out.tracker.total_earning().as_f64();
        assert!(earning > 0.0);
        // Perfect delivery would earn at most 3 units per interested pair.
        let upper = 3.0 * out.tracker.total_interested() as f64;
        assert!(earning <= upper);
        // Every on-time delivery is also counted in the delivery-rate bookkeeping.
        assert!(out.tracker.total_on_time() > 0);
        assert!(out.tracker.delivery_rate() <= 1.0);
    }

    #[test]
    fn no_duplicate_deliveries_per_subscriber_and_message() {
        // With scoped forwarding each (message, subscriber) pair is delivered
        // at most once, so on-time + late deliveries never exceed interested
        // pairs (ts_i counts exactly the matching subscribers).
        let topo = small_topology(9);
        let workload = short_workload(Scenario::PublisherSpecified, 8.0);
        let out = Simulation::new(
            topo,
            workload,
            SchedulerConfig::paper(StrategyKind::Fifo),
            SimRng::seed_from(10),
        )
        .run();
        let delivered = out.tracker.total_on_time() + out.tracker.total_late();
        assert!(
            delivered <= out.tracker.total_interested(),
            "delivered {delivered} > interested {}",
            out.tracker.total_interested()
        );
        assert_eq!(out.tracker.duplicate_deliveries(), 0);
    }

    #[test]
    fn congestion_lowers_delivery_rate_and_eb_beats_fifo() {
        // Slow links + high rate -> congestion. EB should deliver at least as
        // much as FIFO (usually strictly more).
        let slow_quality = |_rng: &mut SimRng| LinkQuality::new(FixedRate::new(80.0));
        let make = |strategy| {
            let topo = Topology::layered_mesh(
                &LayeredMeshConfig::small(),
                &mut SimRng::seed_from(11),
                slow_quality,
            )
            .unwrap();
            let mut w = WorkloadConfig::paper_psd(12.0);
            w.duration = Duration::from_secs(600);
            Simulation::new(
                topo,
                w,
                SchedulerConfig::paper(strategy),
                SimRng::seed_from(12),
            )
            .run()
        };
        let eb = make(StrategyKind::MaxEb);
        let fifo = make(StrategyKind::Fifo);
        assert!(
            eb.tracker.delivery_rate() < 1.0,
            "there should be congestion"
        );
        assert!(
            eb.tracker.delivery_rate() >= fifo.tracker.delivery_rate(),
            "EB {} should not be worse than FIFO {}",
            eb.tracker.delivery_rate(),
            fifo.tracker.delivery_rate()
        );
    }

    #[test]
    fn subscription_population_matches_subscribers() {
        let topo = small_topology(13);
        let n_subs = topo.subscribers.len();
        let workload = short_workload(Scenario::SubscriberSpecified, 1.0);
        let sim = Simulation::new(
            topo,
            workload,
            SchedulerConfig::paper(StrategyKind::MaxPc),
            SimRng::seed_from(14),
        );
        assert_eq!(sim.subscriptions().len(), n_subs);
        assert_eq!(sim.scheduler().strategy, StrategyKind::MaxPc);
        // Each subscription belongs to a distinct subscriber.
        let mut seen = std::collections::HashSet::new();
        for (s, _) in sim.subscriptions() {
            assert!(seen.insert(s.subscriber));
        }
        assert!(seen.contains(&SubscriberId::new(0)));
    }

    #[test]
    fn churn_scenario_changes_traffic_but_keeps_invariants() {
        let churn = DynamicScenario::named("churn").with_churn(ChurnConfig {
            joins_per_min: 6.0,
            leaves_per_min: 6.0,
        });
        let dynamic = scenario_run(churn, StrategyKind::MaxEb, 21);
        let baseline = scenario_run(DynamicScenario::static_scenario(), StrategyKind::MaxEb, 21);
        // Publications draw from the same stream in both runs.
        assert_eq!(dynamic.published, baseline.published);
        // Churn must actually change what gets matched and delivered.
        assert_ne!(
            dynamic.tracker.total_interested(),
            baseline.tracker.total_interested()
        );
        dynamic.check_conservation().unwrap();
        assert_eq!(dynamic.tracker.duplicate_deliveries(), 0);
        let delivered = dynamic.tracker.total_on_time() + dynamic.tracker.total_late();
        assert!(delivered <= dynamic.tracker.total_interested());
    }

    #[test]
    fn burst_scenario_raises_publication_count_and_marks_phases() {
        let bursts = DynamicScenario::named("bursty").with_bursts(BurstConfig {
            mean_calm_secs: 60.0,
            mean_burst_secs: 60.0,
            multiplier: 5.0,
        });
        let dynamic = scenario_run(bursts, StrategyKind::MaxEb, 22);
        let baseline = scenario_run(DynamicScenario::static_scenario(), StrategyKind::MaxEb, 22);
        assert!(
            dynamic.published > baseline.published,
            "bursts should add publications: {} vs {}",
            dynamic.published,
            baseline.published
        );
        assert!(dynamic.phases.len() > 1, "burst phases must be recorded");
        assert!(dynamic.phases.iter().any(|p| p.label == "burst"));
        // Published totals across phases account for every message.
        let phase_sum: u64 = dynamic.phases.iter().map(|p| p.published).sum();
        assert_eq!(phase_sum, dynamic.published);
        dynamic.check_conservation().unwrap();
    }

    #[test]
    fn publisher_pause_and_resume_honour_generations() {
        // Pause every publisher for the middle of the run, then resume.
        let scenario = DynamicScenario::named("pause")
            .at(
                Duration::from_secs(100),
                ScenarioAction::PublisherRate {
                    publisher: None,
                    multiplier: 0.0,
                },
            )
            .at(
                Duration::from_secs(200),
                ScenarioAction::PublisherRate {
                    publisher: None,
                    multiplier: 1.0,
                },
            );
        let out = scenario_run(scenario, StrategyKind::Fifo, 23);
        let baseline = scenario_run(DynamicScenario::static_scenario(), StrategyKind::Fifo, 23);
        assert!(out.published < baseline.published);
        assert!(out.published > 0);
        out.check_conservation().unwrap();
        // The pause phase publishes nothing: verify via per-phase counts.
        let paused = DynamicScenario::named("pause-marked")
            .at(
                Duration::from_secs(100),
                ScenarioAction::PublisherRate {
                    publisher: None,
                    multiplier: 0.0,
                },
            )
            .at(
                Duration::from_secs(100),
                ScenarioAction::PhaseMark {
                    label: "silence".into(),
                },
            )
            .at(
                Duration::from_secs(200),
                ScenarioAction::PublisherRate {
                    publisher: None,
                    multiplier: 1.0,
                },
            )
            .at(
                Duration::from_secs(200),
                ScenarioAction::PhaseMark {
                    label: "resumed".into(),
                },
            );
        let out = scenario_run(paused, StrategyKind::Fifo, 23);
        let silence = out
            .phases
            .iter()
            .find(|p| p.label == "silence")
            .expect("silence phase present");
        assert_eq!(silence.published, 0, "no publications while paused");
        assert!(out
            .phases
            .iter()
            .any(|p| p.label == "resumed" && p.published > 0));
    }

    #[test]
    fn link_failures_requeue_in_flight_copies_and_recover() {
        // Slow links (50 KB × 80 ms/KB = 4 s per hop) keep links busy, so a
        // failure almost always catches a copy mid-transfer.
        let topo = Topology::layered_mesh(
            &LayeredMeshConfig::small(),
            &mut SimRng::seed_from(24),
            |_rng| LinkQuality::new(FixedRate::new(80.0)),
        )
        .unwrap();
        let mut w = WorkloadConfig::paper_ssd(10.0);
        w.duration = Duration::from_secs(300);
        let flaky = DynamicScenario::named("flaky").with_link_failures(LinkFailureConfig {
            mean_time_between_failures_secs: 10.0,
            mean_downtime_secs: 10.0,
        });
        let out = Simulation::with_scenario(
            topo,
            w,
            SchedulerConfig::paper(StrategyKind::MaxEb),
            SimRng::seed_from(24),
            EstimationError::NONE,
            flaky,
        )
        .run();
        out.check_conservation().unwrap();
        assert_eq!(out.tracker.duplicate_deliveries(), 0);
        assert!(out.requeued() > 0, "flaky links should void some transfers");
        assert!(out.tracker.total_on_time() > 0, "system must keep working");
    }

    #[test]
    fn blackout_halts_delivery_then_recovers() {
        let blackout = DynamicScenario::named("blackout").with_blackout(BlackoutWindow {
            start_frac: 0.3,
            duration_frac: 0.3,
        });
        let out = scenario_run(blackout, StrategyKind::MaxEb, 25);
        out.check_conservation().unwrap();
        let dark = out
            .phases
            .iter()
            .find(|p| p.label == "blackout")
            .expect("blackout phase recorded");
        assert_eq!(
            dark.transmissions, 0,
            "nothing can be transmitted with every link down"
        );
        let restored = out
            .phases
            .iter()
            .find(|p| p.label == "restored")
            .expect("restored phase recorded");
        assert!(
            restored.transmissions > 0,
            "traffic must resume after the blackout"
        );
        assert!(out.tracker.total_on_time() > 0);
    }

    #[test]
    fn nested_same_instant_link_downs_still_reroute_traffic() {
        // Diamond: B0 -(cheap)- B1 - B3 and B0 -(pricey)- B2 - B3. Taking
        // the whole cheap path down TWICE in the same instant ends the
        // event batch on a liveness no-op; the rebuild must still happen
        // (dirty-flag regression test) so traffic detours via B2.
        let mut graph = bdps_overlay::graph::OverlayGraph::new();
        let b0 = graph.add_broker(None);
        let b1 = graph.add_broker(None);
        let b2 = graph.add_broker(None);
        let b3 = graph.add_broker(None);
        // Links 0..=1, 2..=3 form the cheap path; 4..=7 the detour.
        graph.add_bidirectional_link(b0, b1, LinkQuality::new(FixedRate::new(40.0)));
        graph.add_bidirectional_link(b1, b3, LinkQuality::new(FixedRate::new(40.0)));
        graph.add_bidirectional_link(b0, b2, LinkQuality::new(FixedRate::new(60.0)));
        graph.add_bidirectional_link(b2, b3, LinkQuality::new(FixedRate::new(60.0)));
        graph.attach_publisher(b0, PublisherId::new(0));
        let subscriber = bdps_types::id::SubscriberId::new(0);
        graph.attach_subscriber(b3, subscriber);
        let topo = Topology {
            graph,
            publishers: vec![(PublisherId::new(0), b0)],
            subscribers: vec![(subscriber, b3)],
        };
        let mut w = WorkloadConfig::paper_psd(30.0);
        w.duration = Duration::from_secs(300);
        let mut scenario = DynamicScenario::named("double-down");
        for raw in 0..4u32 {
            for _ in 0..2 {
                scenario = scenario.at(
                    Duration::from_secs(1),
                    ScenarioAction::LinkDown {
                        link: LinkId::new(raw),
                    },
                );
            }
        }
        let out = Simulation::with_scenario(
            topo,
            w,
            SchedulerConfig::paper(StrategyKind::MaxEb),
            SimRng::seed_from(41),
            EstimationError::NONE,
            scenario,
        )
        .run();
        assert!(
            out.tracker.total_on_time() > 0,
            "messages must detour via B2 after the cheap path dies"
        );
        out.check_conservation().unwrap();
    }

    #[test]
    fn flap_contained_within_a_transfer_voids_it() {
        // Slow links (4 s per hop) and a 1.2 s blackout: many copies are in
        // flight across the window, flap fully inside their transfer. The
        // failure-generation check must void those transfers even though the
        // link is alive again when the SendComplete pops.
        let topo = Topology::layered_mesh(
            &LayeredMeshConfig::small(),
            &mut SimRng::seed_from(42),
            |_rng| LinkQuality::new(FixedRate::new(80.0)),
        )
        .unwrap();
        let mut w = WorkloadConfig::paper_ssd(10.0);
        w.duration = Duration::from_secs(300);
        let blink = DynamicScenario::named("blink").with_blackout(BlackoutWindow {
            start_frac: 0.1,
            duration_frac: 0.004, // 1.2 s, far below the 4 s per-hop transfer
        });
        let out = Simulation::with_scenario(
            topo,
            w,
            SchedulerConfig::paper(StrategyKind::MaxEb),
            SimRng::seed_from(42),
            EstimationError::NONE,
            blink,
        )
        .run();
        assert!(
            out.requeued() > 0,
            "transfers spanning the blink must be voided and requeued"
        );
        out.check_conservation().unwrap();
        assert_eq!(out.tracker.duplicate_deliveries(), 0);
    }

    #[test]
    fn rebuild_policies_agree_and_report_their_counters() {
        let run = |policy: RebuildPolicy| {
            let topo = small_topology(26);
            let mut w = WorkloadConfig::paper_ssd(10.0);
            w.duration = Duration::from_secs(300);
            let flaky = DynamicScenario::named("flaky").with_link_failures(LinkFailureConfig {
                mean_time_between_failures_secs: 15.0,
                mean_downtime_secs: 15.0,
            });
            Simulation::with_scenario(
                topo,
                w,
                SchedulerConfig::paper(StrategyKind::MaxEb),
                SimRng::seed_from(26),
                EstimationError::NONE,
                flaky,
            )
            .with_rebuild_policy(policy)
            .run()
        };
        let full = run(RebuildPolicy::Full);
        let incremental = run(RebuildPolicy::Incremental);
        // Bit-identical results whichever policy rebuilds the tables.
        assert_eq!(full.published, incremental.published);
        assert_eq!(full.transmissions, incremental.transmissions);
        assert_eq!(full.message_number(), incremental.message_number());
        assert_eq!(
            full.tracker.total_on_time(),
            incremental.tracker.total_on_time()
        );
        assert_eq!(
            full.tracker.total_earning().millis(),
            incremental.tracker.total_earning().millis()
        );
        assert_eq!(full.queued_at_end, incremental.queued_at_end);
        assert_eq!(full.requeued(), incremental.requeued());
        // The oracle only ever rebuilds whole tables; the incremental path
        // does the bulk of its work through in-place retargets and falls
        // back to bulk rebuilds only for brokers caught in reachability
        // transitions — always strictly fewer than rebuilding everyone on
        // every batch.
        assert!(full.tables_rebuilt_full > 0);
        assert_eq!(full.entries_retargeted, 0);
        assert!(incremental.entries_retargeted > 0);
        assert!(incremental.tables_rebuilt_full < full.tables_rebuilt_full);
        incremental.check_conservation().unwrap();
    }

    #[test]
    fn blackouts_trigger_the_bulk_rebuild_fallback_with_identical_results() {
        // A blackout flips every broker's routes towards (almost) every
        // destination at once — the mass-transition case the incremental
        // path hands to the bulk table builder instead of patching entry by
        // entry (`O(n²)` in removals at scale). Results must stay
        // bit-identical to the full-rebuild oracle.
        let run = |policy: RebuildPolicy| {
            let blackout = DynamicScenario::named("blackout").with_blackout(BlackoutWindow {
                start_frac: 0.3,
                duration_frac: 0.2,
            });
            let topo = small_topology(27);
            let mut w = WorkloadConfig::paper_ssd(10.0);
            w.duration = Duration::from_secs(300);
            Simulation::with_scenario(
                topo,
                w,
                SchedulerConfig::paper(StrategyKind::MaxEb),
                SimRng::seed_from(27),
                EstimationError::NONE,
                blackout,
            )
            .with_rebuild_policy(policy)
            .run()
        };
        let full = run(RebuildPolicy::Full);
        let incremental = run(RebuildPolicy::Incremental);
        assert_eq!(full.published, incremental.published);
        assert_eq!(full.transmissions, incremental.transmissions);
        assert_eq!(
            full.tracker.total_on_time(),
            incremental.tracker.total_on_time()
        );
        assert_eq!(full.queued_at_end, incremental.queued_at_end);
        assert!(
            incremental.tables_rebuilt_full > 0,
            "an every-link outage must route through the bulk fallback"
        );
        incremental.check_conservation().unwrap();
    }

    #[test]
    fn table_layouts_agree_and_report_their_counters() {
        let run = |layout: TableLayout| {
            let topo = small_topology(28);
            let mut w = WorkloadConfig::paper_ssd(10.0);
            w.duration = Duration::from_secs(300);
            let registry = ScenarioRegistry::builtin();
            Simulation::with_scenario(
                topo,
                w,
                SchedulerConfig::paper(StrategyKind::MaxEb),
                SimRng::seed_from(28),
                EstimationError::NONE,
                registry.resolve("chaos").expect("chaos is builtin"),
            )
            .with_table_layout(layout)
            .run()
        };
        let dense = run(TableLayout::Dense);
        let sparse = run(TableLayout::Sparse);
        // Bit-identical results whichever layout the brokers store.
        assert_eq!(dense.published, sparse.published);
        assert_eq!(dense.transmissions, sparse.transmissions);
        assert_eq!(dense.message_number(), sparse.message_number());
        assert_eq!(
            dense.tracker.total_on_time(),
            sparse.tracker.total_on_time()
        );
        assert_eq!(dense.tracker.total_late(), sparse.tracker.total_late());
        assert_eq!(
            dense.tracker.total_earning().millis(),
            sparse.tracker.total_earning().millis()
        );
        assert_eq!(dense.queued_at_end, sparse.queued_at_end);
        assert_eq!(dense.requeued(), sparse.requeued());
        assert_eq!(
            dense.dropped_unsubscribed(),
            sparse.dropped_unsubscribed(),
            "churn bookkeeping must match across layouts"
        );
        sparse.check_conservation().unwrap();
        // Layout observability: only the sparse run stores aggregates and
        // expands them at edge brokers; its tables are much smaller.
        assert_eq!(dense.aggregate_entries, 0);
        assert_eq!(dense.expanded_at_edge(), 0);
        assert!(sparse.aggregate_entries > 0);
        assert_eq!(
            sparse.expanded_at_edge(),
            sparse.tracker.total_on_time() + sparse.tracker.total_late(),
            "every sparse local delivery is an edge expansion"
        );
        // The factor is modest only because this model is tiny: the
        // registry's fixed per-member cost (including the QoS envelope
        // bookkeeping, paid once globally) dominates at this size, while the
        // dense layout's per-broker replication dominates at scale (173x at
        // 100k; see README).
        assert!(
            sparse.table_bytes_estimate * 3 / 2 <= dense.table_bytes_estimate,
            "sparse tables must be substantially smaller: {} vs {}",
            sparse.table_bytes_estimate,
            dense.table_bytes_estimate
        );
    }

    #[test]
    fn scenario_runs_replay_bit_for_bit() {
        let registry = ScenarioRegistry::builtin();
        for name in ["churn", "flash-crowd", "link-flap", "chaos"] {
            let a = scenario_run(registry.resolve(name).unwrap(), StrategyKind::MaxEbpc, 31);
            let b = scenario_run(registry.resolve(name).unwrap(), StrategyKind::MaxEbpc, 31);
            assert_eq!(a.published, b.published, "{name}");
            assert_eq!(a.transmissions, b.transmissions, "{name}");
            assert_eq!(a.message_number(), b.message_number(), "{name}");
            assert_eq!(
                a.tracker.total_on_time(),
                b.tracker.total_on_time(),
                "{name}"
            );
            assert_eq!(
                a.tracker.total_earning().millis(),
                b.tracker.total_earning().millis(),
                "{name}"
            );
            assert_eq!(a.queued_at_end, b.queued_at_end, "{name}");
        }
    }

    #[test]
    fn static_scenario_is_bit_identical_to_plain_construction() {
        let plain = {
            let topo = small_topology(33);
            Simulation::new(
                topo,
                short_workload(Scenario::SubscriberSpecified, 6.0),
                SchedulerConfig::paper(StrategyKind::MaxEb),
                SimRng::seed_from(33),
            )
            .run()
        };
        let via_scenario = {
            let topo = small_topology(33);
            Simulation::with_scenario(
                topo,
                short_workload(Scenario::SubscriberSpecified, 6.0),
                SchedulerConfig::paper(StrategyKind::MaxEb),
                SimRng::seed_from(33),
                EstimationError::NONE,
                DynamicScenario::static_scenario(),
            )
            .run()
        };
        assert_eq!(plain.published, via_scenario.published);
        assert_eq!(plain.transmissions, via_scenario.transmissions);
        assert_eq!(
            plain.tracker.total_on_time(),
            via_scenario.tracker.total_on_time()
        );
        assert_eq!(
            plain.tracker.total_earning().millis(),
            via_scenario.tracker.total_earning().millis()
        );
    }
}
