//! Pluggable event schedulers for the discrete-event core.
//!
//! The simulator's pending-event set is the one data structure every single
//! event passes through. A [`BinaryHeap`] costs `O(log n)` per operation and
//! its comparison-heavy pops dominate the loop once the horizon holds
//! hundreds of thousands of events (10⁵-subscriber runs). The classic
//! alternative is Brown's **calendar queue** (CACM 1988, the scheduler of
//! most production DES engines): events hash into time-bucketed "days" of a
//! circular "year", giving `O(1)` amortised enqueue/dequeue as long as the
//! bucket width tracks the event density — which the implementation
//! maintains by resizing when the population doubles or collapses.
//!
//! Both schedulers implement [`EventQueue`] and pop in **exactly** the same
//! order — ascending `(time, seq)`, the engine's deterministic tie-break —
//! so a run is bit-for-bit identical whichever is plugged in; the golden
//! and property suites assert that. [`EventQueueKind`] selects the
//! implementation through
//! [`SimulationBuilder::event_queue`](crate::builder::SimulationBuilder::event_queue)
//! and is carried by [`SimulationConfig`](crate::runner::SimulationConfig).

use bdps_types::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// One scheduled event: a payload tagged with its firing time and a `u64`
/// key (the deterministic tie-break for simultaneous events).
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Tie-break key; lower keys pop first among equal times. The engine
    /// derives it canonically from the event's content (see
    /// `engine::key`), so the `(time, seq)` total order is independent of
    /// scheduling order — and of which shard scheduled the event.
    pub seq: u64,
    /// The event payload.
    pub item: T,
}

impl<T> Scheduled<T> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// The scheduler interface of the simulation engine.
///
/// Implementations must pop in ascending `(time, seq)` order — the total
/// order replays depend on. The engine only ever schedules at or after the
/// time of the last popped event (a discrete-event simulator cannot
/// schedule into the past); implementations may rely on that for
/// amortisation but must stay correct without it.
pub trait EventQueue<T> {
    /// Inserts an event.
    fn push(&mut self, event: Scheduled<T>);

    /// Removes and returns the earliest event if its time is at or before
    /// `limit`; leaves the queue untouched otherwise.
    fn pop_if_at_or_before(&mut self, limit: SimTime) -> Option<Scheduled<T>>;

    /// Removes and returns the earliest event.
    fn pop(&mut self) -> Option<Scheduled<T>> {
        self.pop_if_at_or_before(SimTime::MAX)
    }

    /// The earliest event's time and payload, without removing it.
    fn peek(&self) -> Option<(SimTime, &T)>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Returns true when no event is pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every pending event in unspecified order (end-of-run
    /// accounting of in-flight work).
    fn for_each(&self, f: &mut dyn FnMut(&Scheduled<T>));

    /// Removes and returns **every** event scheduled at the earliest pending
    /// time — the *same-instant frontier* — in ascending `seq` order. Returns
    /// an empty vector when the queue is empty or the earliest event is after
    /// `limit`.
    ///
    /// This is the branching primitive of the model-checking explorer
    /// (`bdps-mc`): the events of one frontier are exactly the events whose
    /// relative order the `(time, seq)` tie-break decides arbitrarily, so a
    /// bounded exhaustive search replays every permutation of each frontier.
    /// Callers re-insert unconsumed frontier events with
    /// [`push`](Self::push), preserving their original `seq`.
    fn take_frontier(&mut self, limit: SimTime) -> Vec<Scheduled<T>>;
}

// ---------------------------------------------------------------------------
// Binary heap (the original scheduler, kept as the reference fallback).
// ---------------------------------------------------------------------------

/// Max-heap wrapper inverting the order so the earliest `(time, seq)` pops
/// first.
struct HeapEntry<T>(Scheduled<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.key().cmp(&self.0.key())
    }
}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The `O(log n)`-per-operation reference scheduler: a [`BinaryHeap`] keyed
/// by `(time, seq)`.
pub struct BinaryHeapQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
}

impl<T> BinaryHeapQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T> Default for BinaryHeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> for BinaryHeapQueue<T> {
    fn push(&mut self, event: Scheduled<T>) {
        self.heap.push(HeapEntry(event));
    }

    fn pop_if_at_or_before(&mut self, limit: SimTime) -> Option<Scheduled<T>> {
        if self.heap.peek()?.0.time > limit {
            return None;
        }
        self.heap.pop().map(|e| e.0)
    }

    fn peek(&self) -> Option<(SimTime, &T)> {
        self.heap.peek().map(|e| (e.0.time, &e.0.item))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(&Scheduled<T>)) {
        for e in self.heap.iter() {
            f(&e.0);
        }
    }

    fn take_frontier(&mut self, limit: SimTime) -> Vec<Scheduled<T>> {
        let mut frontier = Vec::new();
        let Some((head, _)) = self.peek() else {
            return frontier;
        };
        if head > limit {
            return frontier;
        }
        while let Some(e) = self.pop_if_at_or_before(head) {
            frontier.push(e);
        }
        frontier
    }
}

// ---------------------------------------------------------------------------
// Calendar queue.
// ---------------------------------------------------------------------------

/// Smallest number of buckets (power of two for mask-based indexing).
const MIN_BUCKETS: usize = 16;
/// Bucket width the queue starts with before any density estimate exists
/// (1 ms in simulation time).
const INITIAL_WIDTH_MICROS: u64 = 1_000;

/// Brown's calendar queue: `O(1)` amortised push/pop.
///
/// Events hash by time into one of `n` buckets of `width` microseconds (a
/// "day"); the `n · width` span is a "year". Each bucket keeps its events
/// sorted by `(time, seq)`, so with the width tuned to the event density a
/// bucket holds `O(1)` events and both operations touch `O(1)` of them. A
/// pop scans at most one year of days from the cursor before falling back to
/// a direct minimum search (handles sparse tails); pushes and pops trigger a
/// resize — doubling or halving the bucket count and re-estimating the width
/// from the live span — whenever the population outgrows or underflows the
/// current calendar.
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<Scheduled<T>>>,
    /// Power of two; `bucket_mask = buckets.len() - 1`.
    bucket_mask: usize,
    /// Bucket width in microseconds (≥ 1).
    width: u64,
    count: usize,
    /// The day the cursor is on.
    cursor_bucket: usize,
    /// Exclusive upper time edge of the cursor's day in the current year.
    cursor_top: u64,
    /// Consecutive pops that needed the direct-search fallback — a sign the
    /// bucket width is stale (too narrow for the live event spacing), which
    /// happens when the population stays level so no resize re-estimates it.
    sparse_pops: u32,
}

/// Direct-search fallbacks tolerated before the width is re-estimated.
const SPARSE_POPS_BEFORE_REWIDTH: u32 = 8;

/// Where [`CalendarQueue::find_next`] located the minimum event.
struct Found {
    bucket: usize,
    cursor_bucket: usize,
    cursor_top: u64,
    /// True when the year scan came up empty and the direct search ran.
    fallback: bool,
}

impl<T> CalendarQueue<T> {
    /// Creates an empty calendar queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            bucket_mask: MIN_BUCKETS - 1,
            width: INITIAL_WIDTH_MICROS,
            count: 0,
            cursor_bucket: 0,
            cursor_top: INITIAL_WIDTH_MICROS,
            sparse_pops: 0,
        }
    }

    fn bucket_of(&self, micros: u64) -> usize {
        ((micros / self.width) as usize) & self.bucket_mask
    }

    /// Locates the next event to pop without mutating anything: first a scan
    /// of at most one year of days starting at the cursor, then a direct
    /// minimum search over all bucket heads for sparse calendars.
    fn find_next(&self) -> Option<Found> {
        if self.count == 0 {
            return None;
        }
        let n = self.buckets.len();
        let mut bucket = self.cursor_bucket;
        let mut top = self.cursor_top;
        for _ in 0..n {
            if let Some(head) = self.buckets[bucket].first() {
                if head.time.as_micros() < top {
                    return Some(Found {
                        bucket,
                        cursor_bucket: bucket,
                        cursor_top: top,
                        fallback: false,
                    });
                }
            }
            bucket = (bucket + 1) & self.bucket_mask;
            top = top.saturating_add(self.width);
        }
        // Nothing due within a year of the cursor: jump straight to the
        // global minimum (every bucket head is a candidate because buckets
        // are sorted).
        let (bucket, head_time) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.first().map(|h| (i, h.key())))
            .min_by_key(|&(_, key)| key)
            .map(|(i, (t, _))| (i, t.as_micros()))
            .expect("count > 0 implies a non-empty bucket");
        let cursor_top = (head_time / self.width)
            .saturating_add(1)
            .saturating_mul(self.width);
        Some(Found {
            bucket,
            cursor_bucket: self.bucket_of(head_time),
            cursor_top,
            fallback: true,
        })
    }

    /// Doubles or halves the calendar and re-estimates the bucket width so
    /// the live events spread to about one per day.
    fn resize(&mut self, new_len: usize) {
        let mut events: Vec<Scheduled<T>> = Vec::with_capacity(self.count);
        for bucket in &mut self.buckets {
            events.append(bucket);
        }
        let (min_t, max_t) = events.iter().fold((u64::MAX, 0u64), |(lo, hi), e| {
            let t = e.time.as_micros();
            (lo.min(t), hi.max(t))
        });
        let span = max_t.saturating_sub(min_t);
        self.width = (span / events.len().max(1) as u64).max(1);
        self.buckets = (0..new_len).map(|_| Vec::new()).collect();
        self.bucket_mask = new_len - 1;
        self.sparse_pops = 0;
        // Re-anchor the cursor at the earliest live event (or keep time zero
        // for an empty calendar).
        let anchor = if events.is_empty() { 0 } else { min_t };
        self.cursor_bucket = self.bucket_of(anchor);
        self.cursor_top = (anchor / self.width + 1).saturating_mul(self.width);
        let count = self.count;
        for event in events {
            self.insert(event);
        }
        self.count = count;
    }

    /// Inserts into the right bucket, keeping it sorted by `(time, seq)`.
    fn insert(&mut self, event: Scheduled<T>) {
        let idx = self.bucket_of(event.time.as_micros());
        let bucket = &mut self.buckets[idx];
        let key = event.key();
        let pos = bucket.partition_point(|e| e.key() < key);
        bucket.insert(pos, event);
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> for CalendarQueue<T> {
    fn push(&mut self, event: Scheduled<T>) {
        let micros = event.time.as_micros();
        self.insert(event);
        self.count += 1;
        // An event scheduled on a day before the cursor's would be invisible
        // to the year scan (which only looks forward): pull the cursor back
        // to that day. Happens when earlier-time events are enqueued after a
        // resize anchored the cursor further ahead — e.g. publisher seeds
        // pushed after a far-future scenario stream at construction. The
        // guard is "micros lies on a day strictly before the cursor's",
        // i.e. `micros < cursor_top - width`, rearranged so the subtraction
        // cannot underflow when `cursor_top < width` (a t=0-anchored cursor
        // after a wide resize): saturating the subtraction instead would
        // clamp the threshold to 0 and misclassify early enqueues.
        if micros.saturating_add(self.width) < self.cursor_top {
            self.cursor_bucket = self.bucket_of(micros);
            self.cursor_top = (micros / self.width)
                .saturating_add(1)
                .saturating_mul(self.width);
        }
        if self.count > 2 * self.buckets.len() {
            let new_len = self.buckets.len() * 2;
            self.resize(new_len);
        }
    }

    fn pop_if_at_or_before(&mut self, limit: SimTime) -> Option<Scheduled<T>> {
        if self.sparse_pops >= SPARSE_POPS_BEFORE_REWIDTH && self.count > 0 {
            // The year scan keeps missing: the width no longer matches the
            // live event spacing (the population stayed level, so no resize
            // refreshed it). Re-estimate at the current bucket count.
            let len = self.buckets.len();
            self.resize(len);
        }
        let found = self.find_next()?;
        if found.fallback {
            self.sparse_pops += 1;
        } else {
            self.sparse_pops = 0;
        }
        let head_time = self.buckets[found.bucket]
            .first()
            .expect("find_next returned a non-empty bucket")
            .time;
        if head_time > limit {
            return None;
        }
        // Commit the cursor so the next scan resumes where this one ended.
        self.cursor_bucket = found.cursor_bucket;
        self.cursor_top = found.cursor_top;
        let event = self.buckets[found.bucket].remove(0);
        self.count -= 1;
        if self.buckets.len() > MIN_BUCKETS && self.count < self.buckets.len() / 4 {
            let new_len = (self.buckets.len() / 2).max(MIN_BUCKETS);
            self.resize(new_len);
        }
        Some(event)
    }

    fn peek(&self) -> Option<(SimTime, &T)> {
        let found = self.find_next()?;
        self.buckets[found.bucket]
            .first()
            .map(|e| (e.time, &e.item))
    }

    fn len(&self) -> usize {
        self.count
    }

    fn for_each(&self, f: &mut dyn FnMut(&Scheduled<T>)) {
        for bucket in &self.buckets {
            for e in bucket {
                f(e);
            }
        }
    }

    fn take_frontier(&mut self, limit: SimTime) -> Vec<Scheduled<T>> {
        let mut frontier = Vec::new();
        let Some((head, _)) = self.peek() else {
            return frontier;
        };
        if head > limit {
            return frontier;
        }
        // Same-instant events hash into the same day and buckets are kept
        // sorted, so after the first pop locates the day the rest of the
        // frontier drains from the front of one bucket.
        while let Some(e) = self.pop_if_at_or_before(head) {
            frontier.push(e);
        }
        frontier
    }
}

// ---------------------------------------------------------------------------
// Selection.
// ---------------------------------------------------------------------------

/// Which scheduler implementation a simulation uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventQueueKind {
    /// The original [`BinaryHeapQueue`] (`O(log n)` per operation).
    BinaryHeap,
    /// The [`CalendarQueue`] (`O(1)` amortised) — the default.
    #[default]
    Calendar,
}

impl EventQueueKind {
    /// Every selectable kind, in comparison order for benches.
    pub const ALL: [EventQueueKind; 2] = [EventQueueKind::BinaryHeap, EventQueueKind::Calendar];

    /// Stable CLI/report name (`"heap"` / `"calendar"`).
    pub fn name(self) -> &'static str {
        match self {
            EventQueueKind::BinaryHeap => "heap",
            EventQueueKind::Calendar => "calendar",
        }
    }

    /// Resolves a CLI name (case-insensitive; `"heap"`, `"binary-heap"`,
    /// `"calendar"`, `"cq"`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "heap" | "binary-heap" | "binaryheap" => Some(EventQueueKind::BinaryHeap),
            "calendar" | "calendar-queue" | "cq" => Some(EventQueueKind::Calendar),
            _ => None,
        }
    }

    /// Instantiates an empty scheduler of this kind. The queue is `Send` so
    /// the sharded executor can hand per-shard queues to worker threads.
    pub fn create<T: Send + 'static>(self) -> Box<dyn EventQueue<T> + Send> {
        match self {
            EventQueueKind::BinaryHeap => Box::new(BinaryHeapQueue::new()),
            EventQueueKind::Calendar => Box::new(CalendarQueue::new()),
        }
    }
}

impl fmt::Display for EventQueueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdps_stats::rng::SimRng;

    fn ev(time_us: u64, seq: u64) -> Scheduled<u64> {
        Scheduled {
            time: SimTime::from_micros(time_us),
            seq,
            item: seq,
        }
    }

    fn drain<T>(q: &mut dyn EventQueue<T>) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time, e.seq));
        }
        out
    }

    #[test]
    fn both_kinds_pop_in_time_then_seq_order() {
        for kind in EventQueueKind::ALL {
            let mut q = kind.create::<u64>();
            q.push(ev(50, 3));
            q.push(ev(10, 4));
            q.push(ev(50, 1));
            q.push(ev(10, 2));
            q.push(ev(0, 5));
            let order = drain(q.as_mut());
            let mut sorted = order.clone();
            sorted.sort();
            assert_eq!(order, sorted, "{}", kind.name());
            assert_eq!(order.len(), 5);
            assert_eq!(order[0], (SimTime::ZERO, 5));
        }
    }

    #[test]
    fn pop_respects_the_limit() {
        for kind in EventQueueKind::ALL {
            let mut q = kind.create::<u64>();
            q.push(ev(100, 1));
            q.push(ev(300, 2));
            assert!(
                q.pop_if_at_or_before(SimTime::from_micros(50)).is_none(),
                "{}",
                kind.name()
            );
            assert_eq!(q.len(), 2);
            let first = q.pop_if_at_or_before(SimTime::from_micros(100)).unwrap();
            assert_eq!(first.seq, 1);
            assert!(q.pop_if_at_or_before(SimTime::from_micros(100)).is_none());
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn peek_matches_pop_and_never_removes() {
        for kind in EventQueueKind::ALL {
            let mut q = kind.create::<u64>();
            assert!(q.peek().is_none());
            q.push(ev(70, 1));
            q.push(ev(20, 2));
            let (t, item) = q.peek().expect("non-empty");
            assert_eq!((t, *item), (SimTime::from_micros(20), 2));
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop().unwrap().seq, 2, "{}", kind.name());
        }
    }

    #[test]
    fn for_each_visits_every_pending_event() {
        for kind in EventQueueKind::ALL {
            let mut q = kind.create::<u64>();
            for seq in 0..100 {
                q.push(ev(seq * 37 % 1000, seq));
            }
            let mut seen = 0u64;
            q.for_each(&mut |e| seen += e.item);
            assert_eq!(seen, (0..100).sum::<u64>(), "{}", kind.name());
        }
    }

    /// The headline property: the calendar queue replays the heap's order
    /// exactly under an interleaved, clustered, monotone-pop workload shaped
    /// like the simulator's (pushes only at or after the last popped time).
    #[test]
    fn calendar_and_heap_orders_are_identical() {
        for seed in 1..=5u64 {
            let mut rng = SimRng::seed_from(seed);
            let mut heap = BinaryHeapQueue::new();
            let mut calendar = CalendarQueue::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut heap_order = Vec::new();
            let mut calendar_order = Vec::new();
            // Far-future batch first (a materialised scenario stream), so
            // later near-term pushes land behind the resize-anchored cursor
            // — the regression the engine's blackout scenario caught.
            for k in 0..50 {
                seq += 1;
                let e = ev(120_000_000 + k * 1_000_000, seq);
                heap.push(e.clone());
                calendar.push(e);
            }
            for _ in 0..5_000 {
                let burst = rng.uniform_usize(0, 4);
                for _ in 0..burst {
                    seq += 1;
                    // Clustered offsets: many ties, a few far-future tails.
                    let offset = match rng.uniform_usize(0, 10) {
                        0 => 0,
                        1..=6 => rng.uniform_usize(0, 2_000) as u64,
                        _ => rng.uniform_usize(0, 2_000_000) as u64,
                    };
                    let e = ev(now + offset, seq);
                    heap.push(e.clone());
                    calendar.push(e);
                }
                if rng.uniform_usize(0, 3) > 0 {
                    let a = heap.pop();
                    let b = calendar.pop();
                    match (a, b) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert_eq!(a.key(), b.key(), "seed {seed}");
                            now = a.time.as_micros();
                            heap_order.push(a.key());
                            calendar_order.push(b.key());
                        }
                        (a, b) => panic!(
                            "queues disagree on emptiness: heap={:?} calendar={:?}",
                            a.map(|e| e.key()),
                            b.map(|e| e.key())
                        ),
                    }
                }
            }
            let rest_a = drain(&mut heap);
            let rest_b = drain(&mut calendar);
            assert_eq!(rest_a, rest_b, "seed {seed}");
            assert_eq!(heap_order, calendar_order, "seed {seed}");
        }
    }

    /// Regression for the cursor pull-back guard (the `cursor_top - width`
    /// threshold used to be computed with a saturating subtraction, which
    /// clamps to 0 whenever `cursor_top < width` and silently skips the
    /// pull-back): events enqueued at t=0 *after* pops have advanced the
    /// cursor far past the first day must still pop in exact heap order.
    #[test]
    fn t0_enqueues_behind_an_advanced_cursor_match_the_heap() {
        let mut heap = BinaryHeapQueue::new();
        let mut calendar = CalendarQueue::new();
        let mut seq = 0u64;
        for k in 0..100u64 {
            seq += 1;
            let e = ev(10_000 + k * 1_000, seq);
            heap.push(e.clone());
            calendar.push(e);
        }
        // Drain most of the population so the committed cursor sits many
        // days past t=0 (and shrink resizes re-anchor it along the way).
        for _ in 0..80 {
            let a = heap.pop().expect("heap has events");
            let b = calendar.pop().expect("calendar has events");
            assert_eq!(a.key(), b.key());
        }
        // Now enqueue at and around t=0 — a day strictly before the
        // cursor's, exactly the pull-back case.
        for t in [0u64, 0, 1, 5, 0, 3] {
            seq += 1;
            let e = ev(t, seq);
            heap.push(e.clone());
            calendar.push(e);
        }
        assert_eq!(drain(&mut heap), drain(&mut calendar));
    }

    /// The construction-order variant: a sparse far-future stream first
    /// (forcing growth resizes that re-estimate a huge bucket width, the
    /// regime where `cursor_top` and `width` are closest), then a burst of
    /// t=0 enqueues that must surface before everything else.
    #[test]
    fn wide_resize_then_t0_burst_matches_the_heap() {
        let mut heap = BinaryHeapQueue::new();
        let mut calendar = CalendarQueue::new();
        let mut seq = 0u64;
        for k in 0..40u64 {
            seq += 1;
            let e = ev(3_600_000_000 * (k + 1), seq);
            heap.push(e.clone());
            calendar.push(e);
        }
        for _ in 0..10 {
            seq += 1;
            let e = ev(0, seq);
            heap.push(e.clone());
            calendar.push(e);
        }
        let order = drain(&mut calendar);
        assert_eq!(order, drain(&mut heap));
        assert!(
            order[..10].iter().all(|&(t, _)| t == SimTime::ZERO),
            "the t=0 burst must pop first: {order:?}"
        );
    }

    #[test]
    fn calendar_resizes_up_and_down_without_losing_events() {
        let mut q = CalendarQueue::new();
        for seq in 0..10_000u64 {
            q.push(ev(seq * 13, seq));
        }
        assert_eq!(q.len(), 10_000);
        assert!(q.buckets.len() > MIN_BUCKETS, "must have grown");
        let order = drain(&mut q);
        assert_eq!(order.len(), 10_000);
        assert!(order.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert_eq!(q.buckets.len(), MIN_BUCKETS, "must have shrunk back");
        assert!(q.pop().is_none());
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        let mut q = CalendarQueue::new();
        // One event years beyond the initial calendar span.
        q.push(ev(10_000_000_000, 1));
        q.push(ev(5, 2));
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.pop().unwrap().seq, 1, "direct search must find the tail");
        assert!(q.pop().is_none());
    }

    #[test]
    fn take_frontier_returns_all_same_instant_events_in_seq_order() {
        for kind in EventQueueKind::ALL {
            let mut q = kind.create::<u64>();
            q.push(ev(100, 3));
            q.push(ev(100, 1));
            q.push(ev(200, 2));
            q.push(ev(100, 4));
            let frontier = q.take_frontier(SimTime::MAX);
            assert_eq!(
                frontier.iter().map(|e| e.seq).collect::<Vec<_>>(),
                vec![1, 3, 4],
                "{}",
                kind.name()
            );
            assert!(frontier.iter().all(|e| e.time.as_micros() == 100));
            assert_eq!(q.len(), 1, "{}", kind.name());
            // Re-inserting with the original seq restores the pop order.
            for e in frontier {
                q.push(e);
            }
            assert_eq!(q.pop().unwrap().seq, 1, "{}", kind.name());
        }
    }

    #[test]
    fn take_frontier_respects_the_limit_and_empty_queue() {
        for kind in EventQueueKind::ALL {
            let mut q = kind.create::<u64>();
            assert!(q.take_frontier(SimTime::MAX).is_empty(), "{}", kind.name());
            q.push(ev(500, 1));
            assert!(
                q.take_frontier(SimTime::from_micros(499)).is_empty(),
                "{}",
                kind.name()
            );
            assert_eq!(q.len(), 1);
            assert_eq!(q.take_frontier(SimTime::from_micros(500)).len(), 1);
            assert!(q.is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in EventQueueKind::ALL {
            assert_eq!(EventQueueKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(
            EventQueueKind::from_name("CQ"),
            Some(EventQueueKind::Calendar)
        );
        assert!(EventQueueKind::from_name("bogus").is_none());
        assert_eq!(EventQueueKind::default(), EventQueueKind::Calendar);
        assert_eq!(EventQueueKind::Calendar.to_string(), "calendar");
    }
}
