//! Workload configuration and generators (§6.1).

use bdps_filter::filter::Filter;
use bdps_filter::predicate::Predicate;
use bdps_filter::subscription::Subscription;
use bdps_stats::process::{ArrivalProcess, PoissonArrivals};
use bdps_stats::rng::SimRng;
use bdps_types::error::{BdpsError, Result};
use bdps_types::id::{MessageId, PublisherId, SubscriberId, SubscriptionId};
use bdps_types::message::{Message, MessageHead};
use bdps_types::qos::{DelayBound, QosClass};
use bdps_types::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Which side specifies the delay requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// Publisher-specified delay (PSD): each message carries a bound drawn
    /// uniformly from the configured range; subscriptions are best effort.
    PublisherSpecified,
    /// Subscriber-specified delay (SSD): each subscription carries a QoS
    /// class (delay bound + price); messages carry no bound.
    SubscriberSpecified,
    /// Both sides specify bounds (the paper's "easily extended" case).
    Combined,
    /// No bounds at all.
    BestEffort,
}

impl Scenario {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::PublisherSpecified => "PSD",
            Scenario::SubscriberSpecified => "SSD",
            Scenario::Combined => "PSD+SSD",
            Scenario::BestEffort => "best-effort",
        }
    }
}

/// How publication instants are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalKind {
    /// Poisson process at the configured rate (default reading of
    /// "continuously publishes messages at a certain rate").
    Poisson,
    /// Evenly spaced publications.
    Deterministic,
}

/// The workload of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// The delay-requirement scenario.
    pub scenario: Scenario,
    /// Messages published per publisher per minute (the paper's x-axis).
    pub publishing_rate_per_min: f64,
    /// Length of the publication period (2 hours in the paper).
    pub duration: Duration,
    /// Message size in KB (50 in the paper).
    pub message_size_kb: f64,
    /// Number of head attributes (`A1..An`; 2 in the paper).
    pub num_attributes: usize,
    /// Range attribute values (and filter thresholds) are drawn from ((0, 10)).
    pub attribute_range: (f64, f64),
    /// PSD: the range the per-message allowed delay is drawn from, in seconds
    /// ([10, 30] in the paper).
    pub psd_delay_range_secs: (f64, f64),
    /// SSD: the QoS classes subscriptions are drawn from uniformly
    /// ({10 s/3, 30 s/2, 60 s/1} in the paper).
    pub ssd_classes: Vec<QosClass>,
    /// The arrival process.
    pub arrivals: ArrivalKind,
}

impl WorkloadConfig {
    /// The paper's PSD workload at the given publishing rate.
    pub fn paper_psd(publishing_rate_per_min: f64) -> Self {
        WorkloadConfig {
            scenario: Scenario::PublisherSpecified,
            publishing_rate_per_min,
            duration: Duration::from_secs(2 * 3600),
            message_size_kb: 50.0,
            num_attributes: 2,
            attribute_range: (0.0, 10.0),
            psd_delay_range_secs: (10.0, 30.0),
            ssd_classes: QosClass::paper_tiers().to_vec(),
            arrivals: ArrivalKind::Poisson,
        }
    }

    /// The paper's SSD workload at the given publishing rate.
    pub fn paper_ssd(publishing_rate_per_min: f64) -> Self {
        WorkloadConfig {
            scenario: Scenario::SubscriberSpecified,
            ..Self::paper_psd(publishing_rate_per_min)
        }
    }

    /// Shrinks the run to the given duration (useful for tests and smoke runs).
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Validates the workload.
    pub fn validate(&self) -> Result<()> {
        if self.publishing_rate_per_min < 0.0 || !self.publishing_rate_per_min.is_finite() {
            return Err(BdpsError::InvalidConfig(
                "publishing rate must be non-negative".into(),
            ));
        }
        if self.message_size_kb <= 0.0 {
            return Err(BdpsError::InvalidConfig(
                "message size must be positive".into(),
            ));
        }
        if self.num_attributes == 0 {
            return Err(BdpsError::InvalidConfig(
                "at least one attribute is required".into(),
            ));
        }
        if self.attribute_range.1 <= self.attribute_range.0 {
            return Err(BdpsError::InvalidConfig(
                "attribute range must be non-empty".into(),
            ));
        }
        if self.psd_delay_range_secs.1 < self.psd_delay_range_secs.0 {
            return Err(BdpsError::InvalidConfig(
                "PSD delay range must be ordered".into(),
            ));
        }
        if self.scenario == Scenario::SubscriberSpecified && self.ssd_classes.is_empty() {
            return Err(BdpsError::InvalidConfig(
                "SSD scenario requires at least one QoS class".into(),
            ));
        }
        Ok(())
    }

    /// The attribute name of index `i` (`A1`, `A2`, ...).
    pub fn attribute_name(i: usize) -> String {
        format!("A{}", i + 1)
    }

    /// Generates a message head with uniformly drawn attribute values.
    pub fn generate_head(&self, rng: &mut SimRng) -> MessageHead {
        let mut head = MessageHead::with_capacity(self.num_attributes);
        for i in 0..self.num_attributes {
            let v = rng.uniform_range(self.attribute_range.0, self.attribute_range.1);
            head.set(Self::attribute_name(i).as_str(), v);
        }
        head
    }

    /// Generates one message published at `publish_time` by `publisher`.
    pub fn generate_message(
        &self,
        id: MessageId,
        publisher: PublisherId,
        publish_time: SimTime,
        rng: &mut SimRng,
    ) -> Message {
        let mut builder = Message::builder(id, publisher)
            .publish_time(publish_time)
            .size_kb(self.message_size_kb)
            .head(self.generate_head(rng));
        if matches!(
            self.scenario,
            Scenario::PublisherSpecified | Scenario::Combined
        ) {
            let secs = rng.uniform_range(self.psd_delay_range_secs.0, self.psd_delay_range_secs.1);
            builder = builder.publisher_bound(DelayBound::new(Duration::from_secs_f64(secs)));
        }
        builder.build()
    }

    /// Generates the subscription of one subscriber: the paper's conjunction
    /// `A1 < x1 ∧ ... ∧ An < xn` with uniform thresholds, plus the QoS class
    /// demanded by the scenario.
    pub fn generate_subscription(
        &self,
        id: SubscriptionId,
        subscriber: SubscriberId,
        rng: &mut SimRng,
    ) -> Subscription {
        let mut predicates = Vec::with_capacity(self.num_attributes);
        for i in 0..self.num_attributes {
            let threshold = rng.uniform_range(self.attribute_range.0, self.attribute_range.1);
            predicates.push(Predicate::lt(Self::attribute_name(i).as_str(), threshold));
        }
        let filter = Filter::new(predicates);
        match self.scenario {
            Scenario::SubscriberSpecified | Scenario::Combined => {
                let class = *rng.choose(&self.ssd_classes);
                Subscription::with_qos(id, subscriber, filter, class)
            }
            Scenario::PublisherSpecified | Scenario::BestEffort => {
                Subscription::best_effort(id, subscriber, filter)
            }
        }
    }

    /// The mean gap between publications of one publisher at `multiplier`
    /// times the base rate, in seconds; `None` when the effective rate is
    /// zero (or not finite). The single source of truth for gap sampling.
    fn mean_gap_secs(&self, multiplier: f64) -> Option<f64> {
        let rate = self.publishing_rate_per_min * multiplier.max(0.0);
        if rate <= 0.0 || !rate.is_finite() {
            None
        } else {
            Some(60.0 / rate)
        }
    }

    /// The mean gap between publications of one publisher.
    pub fn mean_publication_gap(&self) -> Option<Duration> {
        self.mean_gap_secs(1.0).map(Duration::from_secs_f64)
    }

    /// Draws the gap until a publisher's next publication.
    pub fn next_publication_gap(&self, rng: &mut SimRng) -> Option<Duration> {
        self.next_publication_gap_scaled(1.0, rng)
    }

    /// Draws the gap until a publisher's next publication with the base rate
    /// scaled by `multiplier` — the hook dynamic scenarios use to model
    /// bursts (multiplier > 1) and lulls or pauses (multiplier in [0, 1)).
    /// A zero effective rate yields `None` (the publisher is silent).
    pub fn next_publication_gap_scaled(
        &self,
        multiplier: f64,
        rng: &mut SimRng,
    ) -> Option<Duration> {
        let mean_secs = self.mean_gap_secs(multiplier)?;
        match self.arrivals {
            ArrivalKind::Deterministic => Some(Duration::from_secs_f64(mean_secs)),
            ArrivalKind::Poisson => Some(Duration::from_secs_f64(rng.exponential(1.0 / mean_secs))),
        }
    }
}

/// A subscription churn process: joins and leaves arrive as independent
/// Poisson streams over the publication period (the paper's population is
/// the static special case with both rates zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// New subscriptions per minute (system-wide).
    pub joins_per_min: f64,
    /// Departures per minute (system-wide); departures pick a uniformly
    /// random currently-active subscription.
    pub leaves_per_min: f64,
}

impl ChurnConfig {
    /// A moderate churn level: one join and one leave per minute.
    pub fn moderate() -> Self {
        ChurnConfig {
            joins_per_min: 1.0,
            leaves_per_min: 1.0,
        }
    }

    /// Draws the arrival instants of a Poisson stream at `per_min` events
    /// per minute over `[0, horizon)`, delegating to the workspace's one
    /// Poisson implementation
    /// ([`PoissonArrivals`]).
    pub fn poisson_instants(per_min: f64, horizon: Duration, rng: &mut SimRng) -> Vec<Duration> {
        if per_min <= 0.0 || !per_min.is_finite() {
            return Vec::new();
        }
        PoissonArrivals::per_minute(per_min)
            .arrivals_in(SimTime::ZERO, SimTime::ZERO + horizon, rng)
            .into_iter()
            .map(|t| t.duration_since(SimTime::ZERO))
            .collect()
    }
}

/// A two-state MMPP-style burst process for publishers: calm periods at the
/// base rate alternate with bursts at `multiplier` times the base rate, both
/// with exponentially distributed lengths (a Markov-modulated Poisson
/// process, the standard flash-crowd model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Mean length of a calm period, in seconds.
    pub mean_calm_secs: f64,
    /// Mean length of a burst, in seconds.
    pub mean_burst_secs: f64,
    /// Rate multiplier applied to every publisher while a burst is active.
    pub multiplier: f64,
}

impl BurstConfig {
    /// A flash-crowd profile: five-minute calm stretches interrupted by
    /// one-minute bursts at four times the base rate.
    pub fn flash_crowd() -> Self {
        BurstConfig {
            mean_calm_secs: 300.0,
            mean_burst_secs: 60.0,
            multiplier: 4.0,
        }
    }

    /// Samples the alternating `(burst_start, burst_end)` windows over
    /// `[0, horizon)`, starting in the calm state.
    pub fn sample_windows(&self, horizon: Duration, rng: &mut SimRng) -> Vec<(Duration, Duration)> {
        let mut windows = Vec::new();
        if self.mean_calm_secs <= 0.0 || self.mean_burst_secs <= 0.0 {
            return windows;
        }
        let horizon_secs = horizon.as_secs_f64();
        let mut t = 0.0;
        loop {
            t += rng.exponential(1.0 / self.mean_calm_secs);
            if t >= horizon_secs {
                return windows;
            }
            let start = t;
            t += rng.exponential(1.0 / self.mean_burst_secs);
            let end = t.min(horizon_secs);
            windows.push((Duration::from_secs_f64(start), Duration::from_secs_f64(end)));
            if t >= horizon_secs {
                return windows;
            }
        }
    }
}

/// A link failure process: each failure takes one randomly chosen broker
/// pair down (both directions) for an exponentially distributed repair time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFailureConfig {
    /// Mean time between failures, in seconds (system-wide).
    pub mean_time_between_failures_secs: f64,
    /// Mean downtime of a failed link, in seconds.
    pub mean_downtime_secs: f64,
}

impl LinkFailureConfig {
    /// A flaky network: a failure every two minutes, half a minute down.
    pub fn flaky() -> Self {
        LinkFailureConfig {
            mean_time_between_failures_secs: 120.0,
            mean_downtime_secs: 30.0,
        }
    }

    /// A link-flap storm: a failure every two seconds, ~five seconds down,
    /// so outages overlap and routing is in near-constant flux. The
    /// scenario that makes the rebuild path the bottleneck — the `scale`
    /// bench uses it to compare the rebuild policies at 10⁵ subscribers.
    pub fn storm() -> Self {
        LinkFailureConfig {
            mean_time_between_failures_secs: 2.0,
            mean_downtime_secs: 5.0,
        }
    }

    /// Samples `(failure_start, recovery)` windows over `[0, horizon)`.
    /// Windows may overlap — concurrent failures of different links.
    pub fn sample_windows(&self, horizon: Duration, rng: &mut SimRng) -> Vec<(Duration, Duration)> {
        let mut windows = Vec::new();
        if self.mean_time_between_failures_secs <= 0.0 || self.mean_downtime_secs <= 0.0 {
            return windows;
        }
        let horizon_secs = horizon.as_secs_f64();
        let mut t = 0.0;
        loop {
            t += rng.exponential(1.0 / self.mean_time_between_failures_secs);
            if t >= horizon_secs {
                return windows;
            }
            let down = rng.exponential(1.0 / self.mean_downtime_secs);
            windows.push((
                Duration::from_secs_f64(t),
                Duration::from_secs_f64((t + down).min(horizon_secs)),
            ));
        }
    }
}

/// An explicit outage window during which *every* link is down — the
/// worst-case scenario behind the empty-phase report edge cases. Expressed
/// as fractions of the publication period so registry-built scenarios work
/// at any duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlackoutWindow {
    /// Start of the outage as a fraction of the publication period, in [0, 1].
    pub start_frac: f64,
    /// Length of the outage as a fraction of the publication period.
    pub duration_frac: f64,
}

impl BlackoutWindow {
    /// Resolves the window to absolute simulation times.
    pub fn resolve(&self, horizon: Duration) -> (Duration, Duration) {
        let start = horizon.mul_f64(self.start_frac.clamp(0.0, 1.0));
        let end = horizon.mul_f64((self.start_frac + self.duration_frac).clamp(0.0, 1.0));
        (start, end.max(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdps_types::money::Price;

    #[test]
    fn paper_workloads_validate() {
        assert!(WorkloadConfig::paper_psd(10.0).validate().is_ok());
        assert!(WorkloadConfig::paper_ssd(15.0).validate().is_ok());
        assert_eq!(WorkloadConfig::paper_psd(1.0).scenario.label(), "PSD");
        assert_eq!(WorkloadConfig::paper_ssd(1.0).scenario.label(), "SSD");
    }

    #[test]
    fn invalid_workloads_are_rejected() {
        let mut w = WorkloadConfig::paper_psd(10.0);
        w.publishing_rate_per_min = -1.0;
        assert!(w.validate().is_err());
        let mut w = WorkloadConfig::paper_psd(10.0);
        w.message_size_kb = 0.0;
        assert!(w.validate().is_err());
        let mut w = WorkloadConfig::paper_ssd(10.0);
        w.ssd_classes.clear();
        assert!(w.validate().is_err());
        let mut w = WorkloadConfig::paper_psd(10.0);
        w.attribute_range = (5.0, 5.0);
        assert!(w.validate().is_err());
        let mut w = WorkloadConfig::paper_psd(10.0);
        w.num_attributes = 0;
        assert!(w.validate().is_err());
    }

    #[test]
    fn generated_heads_match_the_paper_format() {
        let w = WorkloadConfig::paper_psd(10.0);
        let mut rng = SimRng::seed_from(1);
        let head = w.generate_head(&mut rng);
        assert_eq!(head.len(), 2);
        for name in ["A1", "A2"] {
            let v = head.get(name).unwrap().as_f64().unwrap();
            assert!((0.0..10.0).contains(&v));
        }
    }

    #[test]
    fn psd_messages_carry_bounds_in_range() {
        let w = WorkloadConfig::paper_psd(10.0);
        let mut rng = SimRng::seed_from(2);
        for i in 0..100u64 {
            let m = w.generate_message(
                MessageId::new(i),
                PublisherId::new(0),
                SimTime::from_secs(i),
                &mut rng,
            );
            let bound = m.publisher_bound.unwrap().duration().as_secs_f64();
            assert!((10.0..30.0).contains(&bound), "bound = {bound}");
            assert_eq!(m.size_kb, 50.0);
        }
    }

    #[test]
    fn ssd_messages_have_no_bound_but_subscriptions_do() {
        let w = WorkloadConfig::paper_ssd(10.0);
        let mut rng = SimRng::seed_from(3);
        let m = w.generate_message(
            MessageId::new(1),
            PublisherId::new(0),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(m.publisher_bound.is_none());
        let mut seen_prices = std::collections::HashSet::new();
        for i in 0..200u32 {
            let s = w.generate_subscription(SubscriptionId::new(i), SubscriberId::new(i), &mut rng);
            assert!(s.is_delay_bounded());
            seen_prices.insert(s.price.millis());
            assert_eq!(s.filter.len(), 2);
        }
        // All three paper tiers show up.
        assert!(seen_prices.contains(&Price::from_units(1).millis()));
        assert!(seen_prices.contains(&Price::from_units(2).millis()));
        assert!(seen_prices.contains(&Price::from_units(3).millis()));
    }

    #[test]
    fn psd_subscriptions_are_best_effort_unit_price() {
        let w = WorkloadConfig::paper_psd(10.0);
        let mut rng = SimRng::seed_from(4);
        let s = w.generate_subscription(SubscriptionId::new(0), SubscriberId::new(0), &mut rng);
        assert!(!s.is_delay_bounded());
        assert_eq!(s.price, Price::unit());
    }

    #[test]
    fn combined_scenario_has_both_bounds() {
        let mut w = WorkloadConfig::paper_psd(10.0);
        w.scenario = Scenario::Combined;
        let mut rng = SimRng::seed_from(5);
        let m = w.generate_message(
            MessageId::new(1),
            PublisherId::new(0),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(m.publisher_bound.is_some());
        let s = w.generate_subscription(SubscriptionId::new(0), SubscriberId::new(0), &mut rng);
        assert!(s.is_delay_bounded());
    }

    #[test]
    fn publication_gaps_follow_the_rate() {
        let w = WorkloadConfig::paper_psd(6.0); // every 10 s on average
        let mut rng = SimRng::seed_from(6);
        assert_eq!(w.mean_publication_gap(), Some(Duration::from_secs(10)));
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|_| w.next_publication_gap(&mut rng).unwrap().as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean = {mean}");

        let mut det = w.clone();
        det.arrivals = ArrivalKind::Deterministic;
        assert_eq!(
            det.next_publication_gap(&mut rng),
            Some(Duration::from_secs(10))
        );

        let zero = WorkloadConfig::paper_psd(0.0);
        assert_eq!(zero.next_publication_gap(&mut rng), None);
    }

    #[test]
    fn scaled_gaps_follow_the_multiplier() {
        let mut w = WorkloadConfig::paper_psd(6.0); // every 10 s at rate 1x
        w.arrivals = ArrivalKind::Deterministic;
        let mut rng = SimRng::seed_from(7);
        assert_eq!(
            w.next_publication_gap_scaled(1.0, &mut rng),
            Some(Duration::from_secs(10))
        );
        assert_eq!(
            w.next_publication_gap_scaled(4.0, &mut rng),
            Some(Duration::from_millis(2_500))
        );
        assert_eq!(w.next_publication_gap_scaled(0.0, &mut rng), None);
        assert_eq!(w.next_publication_gap_scaled(-3.0, &mut rng), None);
    }

    #[test]
    fn poisson_instants_are_sorted_and_respect_the_horizon() {
        let mut rng = SimRng::seed_from(8);
        let horizon = Duration::from_secs(3_600);
        let instants = ChurnConfig::poisson_instants(2.0, horizon, &mut rng);
        // ~2/min over an hour: expect on the order of 120 events.
        assert!(
            instants.len() > 60 && instants.len() < 240,
            "{}",
            instants.len()
        );
        assert!(instants.windows(2).all(|w| w[0] <= w[1]));
        assert!(instants.iter().all(|t| *t < horizon));
        assert!(ChurnConfig::poisson_instants(0.0, horizon, &mut rng).is_empty());
    }

    #[test]
    fn burst_windows_alternate_and_stay_in_range() {
        let mut rng = SimRng::seed_from(9);
        let horizon = Duration::from_secs(3_600);
        let windows = BurstConfig::flash_crowd().sample_windows(horizon, &mut rng);
        assert!(!windows.is_empty());
        let mut last_end = Duration::ZERO;
        for (start, end) in &windows {
            assert!(*start >= last_end);
            assert!(start <= end);
            assert!(*end <= horizon);
            last_end = *end;
        }
    }

    #[test]
    fn link_failure_windows_and_blackout_resolution() {
        let mut rng = SimRng::seed_from(10);
        let horizon = Duration::from_secs(3_600);
        let windows = LinkFailureConfig::flaky().sample_windows(horizon, &mut rng);
        assert!(!windows.is_empty());
        assert!(windows.iter().all(|(s, e)| s <= e && *e <= horizon));

        let w = BlackoutWindow {
            start_frac: 0.25,
            duration_frac: 0.25,
        };
        let (start, end) = w.resolve(Duration::from_secs(1_000));
        assert_eq!(start, Duration::from_secs(250));
        assert_eq!(end, Duration::from_secs(500));
        // Degenerate fractions clamp instead of inverting.
        let w = BlackoutWindow {
            start_frac: 0.9,
            duration_frac: 0.5,
        };
        let (start, end) = w.resolve(Duration::from_secs(1_000));
        assert_eq!(start, Duration::from_secs(900));
        assert_eq!(end, Duration::from_secs(1_000));
    }
}
