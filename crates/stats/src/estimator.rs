//! Online estimators of mean and variance.
//!
//! The paper assumes that "each broker estimates the parameters of the
//! probability distribution of the transmission rate to each neighbor by some
//! tools of network measurement" (§3.2). The network substrate feeds observed
//! per-KB transfer times into these estimators; the scheduler then works with
//! the *estimated* `N(μ̂, σ̂²)` rather than the true link parameters.
//!
//! Three estimators are provided:
//! * [`WelfordEstimator`] — numerically stable running mean/variance over the
//!   whole history (the default);
//! * [`EwmaEstimator`] — exponentially weighted, for links whose quality
//!   drifts over time;
//! * [`SlidingWindowEstimator`] — exact mean/variance over the last `w`
//!   observations.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Welford's online algorithm for running mean and (unbiased) variance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WelfordEstimator {
    count: u64,
    mean: f64,
    m2: f64,
}

impl WelfordEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another estimator into this one (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &WelfordEstimator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Exponentially weighted moving average estimator of mean and variance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EwmaEstimator {
    alpha: f64,
    mean: Option<f64>,
    variance: f64,
    count: u64,
}

impl EwmaEstimator {
    /// Creates an estimator with smoothing factor `alpha` in `(0, 1]`; larger
    /// values react faster to change.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EwmaEstimator {
            alpha,
            mean: None,
            variance: 0.0,
            count: 0,
        }
    }

    /// Adds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        match self.mean {
            None => {
                self.mean = Some(x);
                self.variance = 0.0;
            }
            Some(m) => {
                let delta = x - m;
                let new_mean = m + self.alpha * delta;
                // West (1979) incremental EWMA variance update.
                self.variance = (1.0 - self.alpha) * (self.variance + self.alpha * delta * delta);
                self.mean = Some(new_mean);
            }
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean estimate (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean.unwrap_or(0.0)
    }

    /// Current variance estimate.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Current standard-deviation estimate.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Exact mean/variance over the most recent `window` observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlidingWindowEstimator {
    window: usize,
    values: VecDeque<f64>,
}

impl SlidingWindowEstimator {
    /// Creates an estimator keeping the last `window` observations (`window ≥ 1`).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        SlidingWindowEstimator {
            window,
            values: VecDeque::with_capacity(window),
        }
    }

    /// Adds one observation, evicting the oldest if the window is full.
    pub fn observe(&mut self, x: f64) {
        if self.values.len() == self.window {
            self.values.pop_front();
        }
        self.values.push_back(x);
    }

    /// Number of observations currently held (≤ window).
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Mean of the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Unbiased variance of the window (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        self.values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    }

    /// Standard deviation of the window.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn welford_matches_two_pass() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut est = WelfordEstimator::new();
        for &x in &data {
            est.observe(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((est.mean() - mean).abs() < 1e-12);
        assert!((est.variance() - var).abs() < 1e-12);
        assert_eq!(est.count(), 8);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut est = WelfordEstimator::new();
        assert_eq!(est.mean(), 0.0);
        assert_eq!(est.variance(), 0.0);
        est.observe(3.0);
        assert_eq!(est.mean(), 3.0);
        assert_eq!(est.variance(), 0.0);
        assert_eq!(est.std_dev(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut rng = SimRng::seed_from(3);
        let data: Vec<f64> = (0..1_000).map(|_| rng.uniform_range(0.0, 10.0)).collect();
        let mut whole = WelfordEstimator::new();
        for &x in &data {
            whole.observe(x);
        }
        let mut left = WelfordEstimator::new();
        let mut right = WelfordEstimator::new();
        for &x in &data[..400] {
            left.observe(x);
        }
        for &x in &data[400..] {
            right.observe(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());

        // Merging an empty estimator is a no-op in both directions.
        let mut empty = WelfordEstimator::new();
        empty.merge(&whole);
        assert!((empty.mean() - whole.mean()).abs() < 1e-12);
        let mut whole2 = whole.clone();
        whole2.merge(&WelfordEstimator::new());
        assert!((whole2.mean() - whole.mean()).abs() < 1e-12);
    }

    #[test]
    fn welford_converges_to_true_parameters() {
        // This is exactly the paper's assumption: measurement converges to the
        // true N(mu, sigma^2) of the link.
        let mut rng = SimRng::seed_from(77);
        let true_dist = crate::normal::Normal::new(75.0, 20.0);
        let mut est = WelfordEstimator::new();
        for _ in 0..30_000 {
            est.observe(true_dist.sample(&mut rng));
        }
        assert!((est.mean() - 75.0).abs() < 0.5);
        assert!((est.std_dev() - 20.0).abs() < 0.5);
    }

    #[test]
    fn ewma_tracks_level_shift() {
        let mut est = EwmaEstimator::new(0.2);
        for _ in 0..100 {
            est.observe(10.0);
        }
        assert!((est.mean() - 10.0).abs() < 1e-9);
        for _ in 0..100 {
            est.observe(20.0);
        }
        assert!((est.mean() - 20.0).abs() < 0.1, "mean = {}", est.mean());
        assert!(est.count() == 200);
        assert!(est.std_dev() >= 0.0);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_bad_alpha() {
        let _ = EwmaEstimator::new(0.0);
    }

    #[test]
    fn sliding_window_forgets_old_values() {
        let mut est = SlidingWindowEstimator::new(3);
        for x in [1.0, 2.0, 3.0, 100.0, 101.0, 102.0] {
            est.observe(x);
        }
        assert_eq!(est.count(), 3);
        assert!((est.mean() - 101.0).abs() < 1e-12);
        assert!((est.variance() - 1.0).abs() < 1e-12);
        assert!((est.std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_partial_fill() {
        let mut est = SlidingWindowEstimator::new(10);
        assert_eq!(est.mean(), 0.0);
        est.observe(4.0);
        assert_eq!(est.mean(), 4.0);
        assert_eq!(est.variance(), 0.0);
    }

    #[test]
    #[should_panic]
    fn sliding_window_rejects_zero() {
        let _ = SlidingWindowEstimator::new(0);
    }
}
