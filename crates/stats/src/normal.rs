//! The normal (Gaussian) distribution.
//!
//! The paper models the transmission rate `TR_i` of overlay link `l_i`
//! (milliseconds needed to transmit one kilobyte) as `TR_i ~ N(μ_i, σ_i²)`
//! and relies on the closure of independent normals under addition to obtain
//! the distribution of a whole path: `TR_p ~ N(Σμ_i, Σσ_i²)` (§3.2). The
//! success probability of a message (eq. 5) is a normal CDF evaluation.

use crate::erf::{erf, inverse_erf};
use crate::rng::SimRng;
use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, SQRT_2};

/// A normal distribution parameterised by mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution. The standard deviation must be
    /// non-negative and finite; a zero standard deviation yields a
    /// degenerate (point-mass) distribution, which the path-composition code
    /// uses for idealised fixed-rate links.
    ///
    /// # Panics
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid normal parameters: mean={mean}, std_dev={std_dev}"
        );
        Normal { mean, std_dev }
    }

    /// The standard normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Normal::new(0.0, 1.0)
    }

    /// Creates a normal distribution from mean and variance.
    pub fn from_mean_variance(mean: f64, variance: f64) -> Self {
        assert!(variance >= 0.0, "variance must be non-negative");
        Normal::new(mean, variance.sqrt())
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// The variance of the distribution.
    pub fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x == self.mean { f64::INFINITY } else { 0.0 };
        }
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * PI).sqrt())
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        0.5 * (1.0 + erf((x - self.mean) / (self.std_dev * SQRT_2)))
    }

    /// Survival function `P(X > x) = 1 − cdf(x)`.
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Quantile (inverse CDF): the `p`-quantile of the distribution.
    ///
    /// `p` outside `[0, 1]` is clamped. `p = 0` and `p = 1` map to −∞/+∞ for
    /// non-degenerate distributions.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if self.std_dev == 0.0 {
            return self.mean;
        }
        self.mean + self.std_dev * SQRT_2 * inverse_erf(2.0 * p - 1.0)
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean;
        }
        self.mean + self.std_dev * rng.standard_normal()
    }

    /// Draws one sample truncated below at `lower` (rejection with an
    /// analytic fallback).
    ///
    /// Link transmission rates must be positive; the paper's parameters
    /// (μ ∈ [50, 100] ms/KB, σ = 20 ms/KB) make negative samples rare
    /// (≈ 0.3% at worst), so simple rejection is efficient. If rejection
    /// fails repeatedly (pathological parameters) the sample is clamped.
    pub fn sample_truncated_below(&self, lower: f64, rng: &mut SimRng) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean.max(lower);
        }
        for _ in 0..64 {
            let x = self.sample(rng);
            if x >= lower {
                return x;
            }
        }
        lower
    }

    /// The distribution of the sum of two *independent* normal variables.
    pub fn add_independent(&self, other: &Normal) -> Normal {
        Normal::from_mean_variance(self.mean + other.mean, self.variance() + other.variance())
    }

    /// The distribution of `c · X` for a non-negative constant `c`
    /// (e.g. message size in KB times the per-KB rate).
    pub fn scale(&self, c: f64) -> Normal {
        assert!(c >= 0.0 && c.is_finite(), "scale factor must be >= 0");
        Normal::new(self.mean * c, self.std_dev * c)
    }

    /// The distribution of `X + c` for a constant shift `c`.
    pub fn shift(&self, c: f64) -> Normal {
        Normal::new(self.mean + c, self.std_dev)
    }

    /// Sums a sequence of independent normals; the empty sum is the
    /// degenerate distribution at zero.
    pub fn sum<'a>(terms: impl IntoIterator<Item = &'a Normal>) -> Normal {
        let mut mean = 0.0;
        let mut var = 0.0;
        for t in terms {
            mean += t.mean;
            var += t.variance();
        }
        Normal::from_mean_variance(mean, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_normal_cdf_reference_points() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(1.0) - 0.8413447460685429).abs() < 1e-10);
        assert!((n.cdf(-1.0) - 0.15865525393145707).abs() < 1e-10);
        assert!((n.cdf(1.959963984540054) - 0.975).abs() < 1e-9);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let n = Normal::new(3.0, 2.0);
        // Trapezoidal integration over +-8 sigma.
        let steps = 20_000;
        let lo = 3.0 - 16.0;
        let hi = 3.0 + 16.0;
        let h = (hi - lo) / steps as f64;
        let mut area = 0.0;
        for i in 0..steps {
            let x0 = lo + i as f64 * h;
            area += 0.5 * (n.pdf(x0) + n.pdf(x0 + h)) * h;
        }
        assert!((area - 1.0).abs() < 1e-6, "area = {area}");
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(-2.0, 0.7);
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn degenerate_distribution() {
        let n = Normal::new(5.0, 0.0);
        assert_eq!(n.cdf(4.9), 0.0);
        assert_eq!(n.cdf(5.0), 1.0);
        assert_eq!(n.quantile(0.3), 5.0);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(n.sample(&mut rng), 5.0);
    }

    #[test]
    fn addition_and_scaling() {
        let a = Normal::new(50.0, 20.0);
        let b = Normal::new(75.0, 20.0);
        let s = a.add_independent(&b);
        assert!((s.mean() - 125.0).abs() < 1e-12);
        assert!((s.variance() - 800.0).abs() < 1e-9);

        let scaled = a.scale(50.0); // 50 KB message over a per-KB rate
        assert!((scaled.mean() - 2500.0).abs() < 1e-9);
        assert!((scaled.std_dev() - 1000.0).abs() < 1e-9);

        let shifted = a.shift(8.0);
        assert!((shifted.mean() - 58.0).abs() < 1e-12);
        assert!((shifted.std_dev() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_many() {
        let links = [Normal::new(50.0, 20.0); 4];
        let path = Normal::sum(links.iter());
        assert!((path.mean() - 200.0).abs() < 1e-9);
        assert!((path.variance() - 1600.0).abs() < 1e-9);
        let empty = Normal::sum(std::iter::empty());
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);
    }

    #[test]
    fn sampling_matches_moments() {
        let n = Normal::new(10.0, 3.0);
        let mut rng = SimRng::seed_from(42);
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn truncated_sampling_never_below_bound() {
        // Deliberately nasty parameters: most of the mass is below zero.
        let n = Normal::new(-5.0, 1.0);
        let mut rng = SimRng::seed_from(7);
        for _ in 0..1_000 {
            assert!(n.sample_truncated_below(0.0, &mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn negative_std_dev_panics() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn sf_complements_cdf() {
        let n = Normal::new(1.0, 2.0);
        for x in [-3.0, 0.0, 1.0, 4.0] {
            assert!((n.cdf(x) + n.sf(x) - 1.0).abs() < 1e-12);
        }
    }
}
