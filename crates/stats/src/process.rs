//! Arrival processes for workload generation.
//!
//! The paper states that "each publisher continuously publishes messages at a
//! certain rate", parameterised by the *publishing rate* (messages per
//! publisher per minute). The standard stochastic reading of continuous
//! publication is a Poisson process; a deterministic (fixed-interval) process
//! and a uniform-jitter process are provided as alternatives so experiments
//! can check sensitivity to the arrival model.

use crate::rng::SimRng;
use bdps_types::time::{Duration, SimTime};

/// A source of inter-arrival gaps, driving publication times in the simulator.
pub trait ArrivalProcess {
    /// The time gap until the next arrival after `now`.
    fn next_gap(&mut self, now: SimTime, rng: &mut SimRng) -> Duration;

    /// The long-run average rate in events per second.
    fn rate_per_sec(&self) -> f64;

    /// Convenience: generate all arrival instants in `[start, end)`.
    fn arrivals_in(&mut self, start: SimTime, end: SimTime, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = start;
        loop {
            let gap = self.next_gap(t, rng);
            if gap == Duration::ZERO {
                // A zero rate (or zero gap) would loop forever; bail out.
                break;
            }
            t += gap;
            if t >= end {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// Poisson arrivals: exponential inter-arrival gaps with the given rate.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson process with the given rate in events per second.
    /// A rate of zero produces no arrivals.
    pub fn per_second(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec >= 0.0 && rate_per_sec.is_finite());
        PoissonArrivals { rate_per_sec }
    }

    /// Creates a Poisson process with the given rate in events per minute —
    /// the unit the paper uses for the publishing rate.
    pub fn per_minute(rate_per_min: f64) -> Self {
        Self::per_second(rate_per_min / 60.0)
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_gap(&mut self, _now: SimTime, rng: &mut SimRng) -> Duration {
        if self.rate_per_sec <= 0.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(rng.exponential(self.rate_per_sec))
    }

    fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }
}

/// Deterministic arrivals: fixed inter-arrival gap.
#[derive(Debug, Clone)]
pub struct DeterministicArrivals {
    gap: Duration,
}

impl DeterministicArrivals {
    /// Creates a process with the given fixed gap.
    pub fn with_gap(gap: Duration) -> Self {
        DeterministicArrivals { gap }
    }

    /// Creates a process with the given rate in events per minute.
    pub fn per_minute(rate_per_min: f64) -> Self {
        if rate_per_min <= 0.0 {
            return DeterministicArrivals {
                gap: Duration::ZERO,
            };
        }
        DeterministicArrivals {
            gap: Duration::from_secs_f64(60.0 / rate_per_min),
        }
    }
}

impl ArrivalProcess for DeterministicArrivals {
    fn next_gap(&mut self, _now: SimTime, _rng: &mut SimRng) -> Duration {
        self.gap
    }

    fn rate_per_sec(&self) -> f64 {
        if self.gap.is_zero() {
            0.0
        } else {
            1.0 / self.gap.as_secs_f64()
        }
    }
}

/// Arrivals with a nominal gap perturbed by uniform jitter of ±`jitter_frac`.
#[derive(Debug, Clone)]
pub struct UniformJitterArrivals {
    nominal_gap: Duration,
    jitter_frac: f64,
}

impl UniformJitterArrivals {
    /// Creates a process with the given nominal gap and relative jitter in `[0, 1)`.
    pub fn new(nominal_gap: Duration, jitter_frac: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter_frac));
        UniformJitterArrivals {
            nominal_gap,
            jitter_frac,
        }
    }
}

impl ArrivalProcess for UniformJitterArrivals {
    fn next_gap(&mut self, _now: SimTime, rng: &mut SimRng) -> Duration {
        if self.nominal_gap.is_zero() {
            return Duration::ZERO;
        }
        let factor = rng.uniform_range(1.0 - self.jitter_frac, 1.0 + self.jitter_frac);
        self.nominal_gap.mul_f64(factor)
    }

    fn rate_per_sec(&self) -> f64 {
        if self.nominal_gap.is_zero() {
            0.0
        } else {
            1.0 / self.nominal_gap.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_matches_count() {
        // Publishing rate 10 per minute over 2 hours -> about 1200 events.
        let mut proc = PoissonArrivals::per_minute(10.0);
        let mut rng = SimRng::seed_from(1);
        let arrivals = proc.arrivals_in(SimTime::ZERO, SimTime::from_secs(7200), &mut rng);
        let n = arrivals.len() as f64;
        assert!((n - 1200.0).abs() < 120.0, "n = {n}");
        assert!((proc.rate_per_sec() - 10.0 / 60.0).abs() < 1e-12);
        // Arrivals are strictly inside the interval and increasing.
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        assert!(arrivals.iter().all(|&t| t < SimTime::from_secs(7200)));
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let mut proc = PoissonArrivals::per_minute(0.0);
        let mut rng = SimRng::seed_from(2);
        assert!(proc
            .arrivals_in(SimTime::ZERO, SimTime::from_secs(100), &mut rng)
            .is_empty());
        let mut det = DeterministicArrivals::per_minute(0.0);
        assert!(det
            .arrivals_in(SimTime::ZERO, SimTime::from_secs(100), &mut rng)
            .is_empty());
        assert_eq!(det.rate_per_sec(), 0.0);
    }

    #[test]
    fn deterministic_arrivals_are_evenly_spaced() {
        let mut proc = DeterministicArrivals::per_minute(6.0); // every 10 s
        let mut rng = SimRng::seed_from(3);
        let arrivals = proc.arrivals_in(SimTime::ZERO, SimTime::from_secs(60), &mut rng);
        assert_eq!(arrivals.len(), 5); // 10,20,30,40,50
        assert_eq!(arrivals[0], SimTime::from_secs(10));
        assert_eq!(arrivals[4], SimTime::from_secs(50));
        assert!((proc.rate_per_sec() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn jittered_arrivals_stay_within_bounds() {
        let mut proc = UniformJitterArrivals::new(Duration::from_secs(10), 0.2);
        let mut rng = SimRng::seed_from(4);
        for _ in 0..200 {
            let gap = proc.next_gap(SimTime::ZERO, &mut rng);
            let secs = gap.as_secs_f64();
            assert!((8.0..=12.0).contains(&secs), "gap = {secs}");
        }
        assert!((proc.rate_per_sec() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn poisson_gap_mean_matches_rate() {
        let mut proc = PoissonArrivals::per_second(2.0);
        let mut rng = SimRng::seed_from(5);
        let n = 20_000;
        let mean_gap: f64 = (0..n)
            .map(|_| proc.next_gap(SimTime::ZERO, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean_gap - 0.5).abs() < 0.02, "mean gap = {mean_gap}");
    }
}
