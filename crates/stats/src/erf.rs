//! Error function, complementary error function and their inverses.
//!
//! The normal CDF — the quantity the EB metric evaluates for every queued
//! message — reduces to `erf`. The standard library does not provide it, so
//! we implement the high-accuracy rational approximation of W. J. Cody
//! (as popularised by Numerical Recipes' `erfc` routine), giving roughly
//! 1e-12 relative accuracy over the whole real line, far tighter than the
//! model noise of the simulation.

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Uses a Chebyshev-fitted rational approximation on `t = 2/(2+|x|)`
/// (Numerical Recipes, `erfcc`), then exploits the symmetry
/// `erfc(−x) = 2 − erfc(x)`.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;

    // Chebyshev coefficients for erfc, from Numerical Recipes (3rd edition).
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];

    let mut d = 0.0f64;
    let mut dd = 0.0f64;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The inverse error function: `inverse_erf(erf(x)) == x` for `x` in (−1, 1).
///
/// Uses the initial approximation of Giles (2012) refined by two steps of
/// Newton's method on `erf`, which brings the result to full double
/// precision for arguments away from ±1.
pub fn inverse_erf(p: f64) -> f64 {
    if p.is_nan() {
        return f64::NAN;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    if p <= -1.0 {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return 0.0;
    }

    // Initial guess: Winitzki's approximation.
    let a = 0.147f64;
    let ln_term = (1.0 - p * p).ln();
    let first = 2.0 / (std::f64::consts::PI * a) + ln_term / 2.0;
    let mut x = (p.signum()) * ((first * first - ln_term / a).sqrt() - first).sqrt();

    // Two Newton refinement steps: f(x) = erf(x) - p, f'(x) = 2/sqrt(pi) e^{-x^2}.
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    for _ in 0..2 {
        let err = erf(x) - p;
        let deriv = two_over_sqrt_pi * (-x * x).exp();
        if deriv.abs() < f64::MIN_POSITIVE {
            break;
        }
        x -= err / deriv;
    }
    x
}

/// The inverse complementary error function.
pub fn inverse_erfc(q: f64) -> f64 {
    inverse_erf(1.0 - q)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath (50 digits).
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (-0.5, -0.5204998778130465),
        (-2.0, -0.9953222650189527),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, expected) in ERF_TABLE {
            let got = erf(x);
            assert!(
                (got - expected).abs() < 1e-10,
                "erf({x}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn erfc_is_complement() {
        for x in [-3.0, -1.0, -0.2, 0.0, 0.4, 1.3, 2.7] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn erfc_symmetry() {
        for x in [0.3, 1.1, 2.5] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_tails() {
        assert!(erfc(10.0) < 1e-40);
        assert!(erfc(10.0) > 0.0);
        assert!((erfc(-10.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn inverse_erf_round_trips() {
        for p in [-0.999, -0.9, -0.5, -0.1, 0.0, 0.1, 0.5, 0.9, 0.999] {
            let x = inverse_erf(p);
            assert!((erf(x) - p).abs() < 1e-10, "p = {p}, x = {x}");
        }
    }

    #[test]
    fn inverse_erf_edge_cases() {
        assert_eq!(inverse_erf(1.0), f64::INFINITY);
        assert_eq!(inverse_erf(-1.0), f64::NEG_INFINITY);
        assert_eq!(inverse_erf(0.0), 0.0);
        assert!(erf(f64::NAN).is_nan());
        assert!(inverse_erf(f64::NAN).is_nan());
    }

    #[test]
    fn inverse_erfc_round_trips() {
        for q in [0.001, 0.1, 0.5, 1.0, 1.5, 1.9] {
            let x = inverse_erfc(q);
            assert!((erfc(x) - q).abs() < 1e-9, "q = {q}, x = {x}");
        }
    }

    #[test]
    fn erf_is_monotone() {
        let xs: Vec<f64> = (-40..=40).map(|i| i as f64 * 0.1).collect();
        for w in xs.windows(2) {
            assert!(erf(w[0]) <= erf(w[1]));
        }
    }
}
