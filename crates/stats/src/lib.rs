//! # bdps-stats
//!
//! The probability / statistics substrate of BDPS. The paper's scheduling
//! strategies are built entirely on top of a stochastic link model: the
//! transmission rate of every overlay link is a normal random variable, path
//! rates are sums of independent normals, and the Expected Benefit of a
//! message is a sum of normal tail probabilities. This crate provides:
//!
//! * special functions ([`mod@erf`]) — error function, complementary error
//!   function and their inverses, implemented from scratch;
//! * [`normal`] — the normal distribution (pdf, cdf, quantile, sampling,
//!   closure under addition and positive scaling, truncation at zero);
//! * [`gamma`] — the gamma and *shifted* gamma distributions used by the
//!   paper's Internet-delay citations \[17, 18\];
//! * [`estimator`] — Welford online mean/variance, EWMA and sliding-window
//!   estimators used by the simulated bandwidth-measurement tools;
//! * [`process`] — arrival processes (Poisson, deterministic, uniform-jitter)
//!   used by workload generators;
//! * [`rng`] — a seedable, reproducible RNG wrapper shared by all crates;
//! * [`summary`] — streaming summaries, fixed-bin histograms and confidence
//!   intervals for reporting simulation results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod erf;
pub mod estimator;
pub mod gamma;
pub mod normal;
pub mod process;
pub mod rng;
pub mod summary;

pub use erf::{erf, erfc, inverse_erf};
pub use estimator::{EwmaEstimator, SlidingWindowEstimator, WelfordEstimator};
pub use gamma::{GammaDist, ShiftedGamma};
pub use normal::Normal;
pub use process::{ArrivalProcess, DeterministicArrivals, PoissonArrivals, UniformJitterArrivals};
pub use rng::SimRng;
pub use summary::{ConfidenceInterval, Histogram, Summary};

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::erf::{erf, erfc, inverse_erf};
    pub use crate::estimator::{EwmaEstimator, SlidingWindowEstimator, WelfordEstimator};
    pub use crate::gamma::{GammaDist, ShiftedGamma};
    pub use crate::normal::Normal;
    pub use crate::process::{
        ArrivalProcess, DeterministicArrivals, PoissonArrivals, UniformJitterArrivals,
    };
    pub use crate::rng::SimRng;
    pub use crate::summary::{ConfidenceInterval, Histogram, Summary};
}
