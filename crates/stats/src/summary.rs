//! Streaming summaries, histograms and confidence intervals for reporting.
//!
//! Experiment runs aggregate per-message delivery latencies, queue lengths
//! and per-cell results across seeds. These helpers provide the descriptive
//! statistics printed in EXPERIMENTS.md and by the figure binaries.

use serde::{Deserialize, Serialize};

/// A summary of a set of observations kept in full (suitable for the modest
/// sample counts of a simulation run) with percentile support.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    values: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation (non-finite values are ignored).
    pub fn observe(&mut self, x: f64) {
        if x.is_finite() {
            self.values.push(x);
            self.sorted = false;
        }
    }

    /// Adds many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.observe(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Returns true when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        self.values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (self.values.len() - 1) as f64
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (NaN when empty).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::min)
    }

    /// Maximum observation (NaN when empty).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::max)
    }

    /// The `q`-quantile like [`quantile`](Self::quantile), but `None` when no
    /// observation has been recorded. Reporting code that must never emit NaN
    /// (e.g. a scenario phase during which every link was down and nothing
    /// was delivered) should use this and pick its own default.
    pub fn try_quantile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.quantile(q))
        }
    }

    /// Minimum observation, `None` when empty (NaN-free alternative to
    /// [`min`](Self::min)).
    pub fn try_min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum observation, `None` when empty (NaN-free alternative to
    /// [`max`](Self::max)).
    pub fn try_max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
    /// statistics; NaN when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN stored"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.values[lo]
        } else {
            let frac = pos - lo as f64;
            self.values[lo] * (1.0 - frac) + self.values[hi] * frac
        }
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// A normal-approximation confidence interval for the mean at the given
    /// level (e.g. 0.95).
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        ConfidenceInterval::for_mean(self.mean(), self.std_dev(), self.count(), level)
    }
}

/// A confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Builds a normal-approximation interval `mean ± z · s/√n`.
    pub fn for_mean(mean: f64, std_dev: f64, n: usize, level: f64) -> Self {
        let level = level.clamp(0.0, 0.999_999);
        if n < 2 {
            return ConfidenceInterval {
                mean,
                lower: mean,
                upper: mean,
                level,
            };
        }
        let z = crate::normal::Normal::standard().quantile(0.5 + level / 2.0);
        let half = z * std_dev / (n as f64).sqrt();
        ConfidenceInterval {
            mean,
            lower: mean - half,
            upper: mean + half,
            level,
        }
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Returns true if the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower && x <= self.upper
    }
}

/// A fixed-bin histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins >= 1, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Counts per bin (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Number of observations below the lower bound.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The fraction of in-range observations at or below `x` (empirical CDF).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut below = self.underflow;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let bin_hi = self.lo + (i as f64 + 1.0) * width;
            if bin_hi <= x {
                below += c;
            }
        }
        if x >= self.hi {
            below += self.overflow;
        }
        below as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_statistics() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.quantile(0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let mut s = Summary::new();
        s.extend([1.0, f64::NAN, f64::INFINITY, 3.0]);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_behaviour() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert!(s.quantile(0.5).is_nan());
        assert!(s.min().is_nan());
        // The NaN-free accessors report absence instead.
        assert_eq!(s.try_quantile(0.5), None);
        assert_eq!(s.try_min(), None);
        assert_eq!(s.try_max(), None);
    }

    #[test]
    fn try_accessors_match_plain_ones_when_non_empty() {
        let mut s = Summary::new();
        s.extend([4.0, 1.0, 3.0]);
        assert_eq!(s.try_min(), Some(1.0));
        assert_eq!(s.try_max(), Some(4.0));
        assert_eq!(s.try_quantile(0.5), Some(3.0));
    }

    #[test]
    fn confidence_interval_sanity() {
        let mut s = Summary::new();
        s.extend((0..100).map(|i| i as f64));
        let ci = s.confidence_interval(0.95);
        assert!(ci.contains(s.mean()));
        assert!(ci.lower < s.mean() && ci.upper > s.mean());
        assert!(ci.half_width() > 0.0);
        // Wider confidence level -> wider interval.
        let ci99 = s.confidence_interval(0.99);
        assert!(ci99.half_width() > ci.half_width());
    }

    #[test]
    fn confidence_interval_degenerate() {
        let ci = ConfidenceInterval::for_mean(5.0, 1.0, 1, 0.95);
        assert_eq!(ci.lower, 5.0);
        assert_eq!(ci.upper, 5.0);
    }

    #[test]
    fn histogram_bins_and_cdf() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.observe(i as f64 + 0.5);
        }
        h.observe(-1.0);
        h.observe(42.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 12);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert!(h.bins().iter().all(|&c| c == 1));
        assert!((h.cdf(5.0) - 6.0 / 12.0).abs() < 1e-12); // underflow + 5 bins
        assert!((h.cdf(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_cdf_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.cdf(0.5), 0.0);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
