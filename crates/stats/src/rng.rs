//! Seedable random number generation.
//!
//! All stochastic behaviour in BDPS flows through [`SimRng`] so that a run is
//! fully reproducible from a single `u64` seed. Simulation sweeps derive one
//! independent stream per cell via [`SimRng::split`], which hashes the parent
//! seed with a stream index (SplitMix64) — cells can then run in parallel
//! without sharing any RNG state.

/// A seedable RNG with convenience helpers used throughout the workspace.
///
/// The generator is xoshiro256++ seeded through SplitMix64, implemented
/// in-crate so the workspace stays dependency-free; all that matters for the
/// simulations is determinism and reasonable equidistribution, both of which
/// xoshiro provides.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// The SplitMix64 finaliser, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            seed,
        }
    }

    /// The next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3x = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3x;
        s2 ^= t;
        self.state = [s0, s1, s2, s3x.rotate_left(45)];
        result
    }

    /// The seed this RNG was created from (for reporting / reproducibility).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The current internal state words — the generator's exact stream
    /// position. Used by the model-checking explorer to include RNG
    /// progression in its state digests, so two branches only deduplicate
    /// when their futures draw identical random values.
    pub fn state_words(&self) -> [u64; 4] {
        self.state
    }

    /// Derives an independent child RNG for the given stream index.
    ///
    /// Uses the SplitMix64 finaliser over `seed ⊕ golden-ratio·(index+1)`,
    /// which decorrelates nearby indices.
    pub fn split(&self, stream: u64) -> SimRng {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from(z)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`. `lo` must be `<= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform_range requires lo <= hi");
        if lo == hi {
            lo
        } else {
            let x = lo + self.uniform() * (hi - lo);
            // Floating-point rounding can land exactly on `hi`; clamp to the
            // next representable value below it to keep the interval half-open.
            if x >= hi {
                lo.max(hi.next_down())
            } else {
                x
            }
        }
    }

    /// A uniform integer in `[lo, hi)`. `lo` must be `< hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "uniform_usize requires lo < hi");
        let span = (hi - lo) as u64;
        // Unbiased-enough widening multiply (Lemire reduction without the
        // rejection step; bias is < 2^-64 per draw, far below anything the
        // simulations can resolve).
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as usize
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.uniform() < p
    }

    /// A standard-normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Box-Muller: avoid u1 == 0 so that ln(u1) is finite.
        let u1 = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// An exponential sample with the given rate (events per unit time).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Chooses one element of a non-empty slice uniformly at random.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.uniform_usize(0, items.len())]
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Chooses `k` distinct indices out of `0..n` uniformly at random
    /// (partial Fisher–Yates). Returns fewer than `k` if `k > n`.
    pub fn choose_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        let k = k.min(n);
        for i in 0..k {
            let j = self.uniform_usize(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let root = SimRng::seed_from(99);
        let mut c1 = root.split(0);
        let c2 = root.split(1);
        let mut c1_again = root.split(0);
        assert_eq!(c1.uniform().to_bits(), c1_again.uniform().to_bits());
        assert_ne!(c1.seed(), c2.seed());
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1_000 {
            let x = rng.uniform_range(50.0, 100.0);
            assert!((50.0..100.0).contains(&x));
        }
        assert_eq!(rng.uniform_range(3.0, 3.0), 3.0);
        // The half-open contract holds even when the span is tiny relative
        // to the magnitude (where any fixed-epsilon clamp would round back
        // to `hi`).
        let lo = 1e9f64;
        let hi = lo.next_up();
        for _ in 0..100 {
            assert_eq!(rng.uniform_range(lo, hi), lo);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-5.0));
        assert!(rng.chance(7.0));
    }

    #[test]
    fn exponential_mean_is_one_over_rate() {
        let mut rng = SimRng::seed_from(11);
        let rate = 0.25;
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from(13);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::seed_from(17);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items)));
        }
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "shuffle should change order with overwhelming probability"
        );
    }

    #[test]
    fn choose_distinct_returns_unique_indices() {
        let mut rng = SimRng::seed_from(23);
        for _ in 0..100 {
            let picked = rng.choose_distinct(8, 2);
            assert_eq!(picked.len(), 2);
            assert_ne!(picked[0], picked[1]);
            assert!(picked.iter().all(|&i| i < 8));
        }
        assert_eq!(rng.choose_distinct(3, 10).len(), 3);
        assert!(rng.choose_distinct(0, 2).is_empty());
    }
}
