//! Gamma and shifted-gamma distributions.
//!
//! The paper's delay model cites Internet measurement studies \[17, 18\]
//! showing that one-way IP packet delay follows a *shifted gamma*
//! distribution (a gamma distribution translated by a constant minimum
//! delay). BDPS ships this distribution so that the network substrate can
//! offer a per-packet delay model in addition to the per-KB normal rate model
//! the scheduling strategies use, and so that ablations can swap the two.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Natural logarithm of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEFFS[0];
        let t = x + 7.5;
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularised lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes `gammp`).
pub fn regularized_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_gamma_series(a, x)
    } else {
        1.0 - upper_gamma_cf(a, x)
    }
}

fn lower_gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn upper_gamma_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// A gamma distribution with shape `k` and scale `θ` (mean `kθ`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaDist {
    shape: f64,
    scale: f64,
}

impl GammaDist {
    /// Creates a gamma distribution.
    ///
    /// # Panics
    /// Panics unless both parameters are positive and finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape > 0.0 && shape.is_finite() && scale > 0.0 && scale.is_finite(),
            "invalid gamma parameters: shape={shape}, scale={scale}"
        );
        GammaDist { shape, scale }
    }

    /// Builds the gamma distribution with the given mean and standard deviation.
    pub fn from_mean_std(mean: f64, std_dev: f64) -> Self {
        assert!(mean > 0.0 && std_dev > 0.0);
        let shape = (mean / std_dev).powi(2);
        let scale = std_dev * std_dev / mean;
        GammaDist::new(shape, scale)
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// The variance `kθ²`.
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.shape;
        let t = self.scale;
        ((k - 1.0) * x.ln() - x / t - ln_gamma(k) - k * t.ln()).exp()
    }

    /// Cumulative distribution `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        regularized_lower_gamma(self.shape, x / self.scale)
    }

    /// Draws a sample using the Marsaglia–Tsang method (with the boost to
    /// shape ≥ 1 for small shapes).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let k = self.shape;
        if k < 1.0 {
            // Boost: sample Gamma(k+1) and multiply by U^(1/k).
            let boosted = GammaDist::new(k + 1.0, 1.0).sample(rng);
            let u: f64 = loop {
                let u = rng.uniform();
                if u > f64::MIN_POSITIVE {
                    break u;
                }
            };
            return boosted * u.powf(1.0 / k) * self.scale;
        }
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = rng.standard_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.uniform();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * self.scale;
            }
        }
    }
}

/// A gamma distribution shifted right by a constant minimum value, the model
/// that Internet measurement studies fit to one-way packet delays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShiftedGamma {
    gamma: GammaDist,
    shift: f64,
}

impl ShiftedGamma {
    /// Creates a shifted gamma distribution with the given underlying gamma
    /// and non-negative shift (the deterministic minimum delay).
    pub fn new(gamma: GammaDist, shift: f64) -> Self {
        assert!(shift >= 0.0 && shift.is_finite(), "shift must be >= 0");
        ShiftedGamma { gamma, shift }
    }

    /// Fits a shifted gamma from a minimum delay, mean and standard deviation
    /// (e.g. the cross-Atlantic path of the paper's footnote: mean 108.2 ms,
    /// σ ≈ 3.08 ms over a ~100 ms propagation floor).
    pub fn from_min_mean_std(min: f64, mean: f64, std_dev: f64) -> Self {
        assert!(mean > min, "mean must exceed the minimum delay");
        ShiftedGamma::new(GammaDist::from_mean_std(mean - min, std_dev), min)
    }

    /// The underlying (unshifted) gamma distribution.
    pub fn gamma(&self) -> &GammaDist {
        &self.gamma
    }

    /// The shift (minimum possible value).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// The mean `shift + kθ`.
    pub fn mean(&self) -> f64 {
        self.shift + self.gamma.mean()
    }

    /// The variance (unchanged by the shift).
    pub fn variance(&self) -> f64 {
        self.gamma.variance()
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.gamma.pdf(x - self.shift)
    }

    /// Cumulative distribution `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.gamma.cdf(x - self.shift)
    }

    /// Draws a sample (always ≥ shift).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.shift + self.gamma.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_reference_values() {
        // Gamma(1) = Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn regularized_gamma_known_values() {
        // P(1, x) = 1 - exp(-x).
        for x in [0.1f64, 0.5, 1.0, 2.0, 5.0] {
            let expected = 1.0 - (-x).exp();
            assert!((regularized_lower_gamma(1.0, x) - expected).abs() < 1e-10);
        }
        assert_eq!(regularized_lower_gamma(2.0, 0.0), 0.0);
        // P(a, x) -> 1 for large x.
        assert!((regularized_lower_gamma(3.0, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_moments_and_cdf_median() {
        let g = GammaDist::new(2.0, 3.0);
        assert!((g.mean() - 6.0).abs() < 1e-12);
        assert!((g.variance() - 18.0).abs() < 1e-12);
        // cdf is monotone and hits ~0.5 near the median.
        assert!(g.cdf(1.0) < g.cdf(5.0));
        let median_region = g.cdf(5.0351); // known median of Gamma(2, 3) ~ 5.035
        assert!((median_region - 0.5).abs() < 0.01);
    }

    #[test]
    fn from_mean_std_round_trips() {
        let g = GammaDist::from_mean_std(8.2, 3.1);
        assert!((g.mean() - 8.2).abs() < 1e-9);
        assert!((g.variance().sqrt() - 3.1).abs() < 1e-9);
    }

    #[test]
    fn gamma_sampling_matches_moments() {
        let g = GammaDist::new(3.0, 2.0);
        let mut rng = SimRng::seed_from(31);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 12.0).abs() < 0.6, "var = {var}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn small_shape_sampling_is_positive() {
        let g = GammaDist::new(0.5, 1.0);
        let mut rng = SimRng::seed_from(37);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn shifted_gamma_models_packet_delay() {
        // Paper footnote 3: mean one-way delay 108.2 ms, sigma 3.083 ms.
        let d = ShiftedGamma::from_min_mean_std(100.0, 108.2, 3.083);
        assert!((d.mean() - 108.2).abs() < 1e-9);
        assert!((d.variance().sqrt() - 3.083).abs() < 1e-9);
        assert_eq!(d.cdf(99.0), 0.0);
        assert!(d.cdf(108.2) > 0.4 && d.cdf(108.2) < 0.7);
        let mut rng = SimRng::seed_from(41);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) >= 100.0);
        }
        assert_eq!(d.shift(), 100.0);
        assert!(d.pdf(101.0) > 0.0 || d.pdf(101.0) == 0.0);
        assert!(d.gamma().shape() > 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_gamma_panics() {
        let _ = GammaDist::new(-1.0, 1.0);
    }
}
