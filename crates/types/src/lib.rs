//! # bdps-types
//!
//! Foundation types shared by every crate of the BDPS (Bounded-Delay
//! Publish/Subscribe) workspace: strongly-typed identifiers, a deterministic
//! simulated-time representation, attribute values carried in message heads,
//! fixed-point money for the SSD (subscriber-specified delay) pricing model,
//! QoS descriptors and the common error type.
//!
//! The crate is deliberately dependency-light (only `bytes` and `serde`) so
//! that every other crate can depend on it without pulling in the simulator
//! or the statistics substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod id;
pub mod message;
pub mod money;
pub mod qos;
pub mod time;
pub mod value;

pub use error::{BdpsError, Result};
pub use id::{BrokerId, LinkId, MessageId, PublisherId, SubscriberId, SubscriptionId};
pub use message::{Message, MessageBuilder, MessageHead};
pub use money::{Earning, Price};
pub use qos::{DelayBound, DelayRequirement, QosClass, QosProfile};
pub use time::{Duration, SimTime};
pub use value::{AttrName, AttrValue};

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::error::{BdpsError, Result};
    pub use crate::id::{BrokerId, LinkId, MessageId, PublisherId, SubscriberId, SubscriptionId};
    pub use crate::message::{Message, MessageBuilder, MessageHead};
    pub use crate::money::{Earning, Price};
    pub use crate::qos::{DelayBound, DelayRequirement, QosClass, QosProfile};
    pub use crate::time::{Duration, SimTime};
    pub use crate::value::{AttrName, AttrValue};
}
