//! QoS descriptors: delay bounds, pricing tiers and the PSD/SSD requirement model.
//!
//! The paper studies two scenarios (§4.1):
//!
//! * **PSD** (publisher-specified delay): the publisher attaches an allowed
//!   delay to each message; subscribers specify nothing.
//! * **SSD** (subscriber-specified delay): each subscription carries its own
//!   allowed delay together with the price paid per valid message.
//!
//! The paper also notes that the model "can easily be extended to the case
//! where both publishers and subscribers specify their delay requirements";
//! [`DelayRequirement::effective_deadline`] implements that combined case by
//! taking the tighter of the two bounds.

use crate::money::Price;
use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// The maximum allowed end-to-end delivery delay for a message or subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DelayBound(pub Duration);

impl DelayBound {
    /// Creates a delay bound from a duration.
    pub const fn new(d: Duration) -> Self {
        DelayBound(d)
    }

    /// Creates a delay bound of the given number of seconds.
    pub const fn from_secs(secs: u64) -> Self {
        DelayBound(Duration::from_secs(secs))
    }

    /// Returns the underlying duration.
    pub const fn duration(self) -> Duration {
        self.0
    }

    /// An effectively unbounded delay (used when a party specifies nothing).
    pub const UNBOUNDED: DelayBound = DelayBound(Duration::MAX);
}

/// A (delay bound, price) pair offered by a subscriber in the SSD scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosClass {
    /// The allowed delay for messages delivered to this subscription.
    pub delay: DelayBound,
    /// The price paid for each valid (on-time) message.
    pub price: Price,
}

impl QosClass {
    /// Creates a QoS class.
    pub const fn new(delay: DelayBound, price: Price) -> Self {
        QosClass { delay, price }
    }

    /// The three-tier pricing of the paper's SSD evaluation:
    /// 10 s → price 3, 30 s → price 2, 60 s → price 1 (§6.1).
    pub fn paper_tiers() -> [QosClass; 3] {
        [
            QosClass::new(DelayBound::from_secs(10), Price::from_units(3)),
            QosClass::new(DelayBound::from_secs(30), Price::from_units(2)),
            QosClass::new(DelayBound::from_secs(60), Price::from_units(1)),
        ]
    }

    /// A best-effort class: unbounded delay, unit price.
    pub fn best_effort() -> Self {
        QosClass::new(DelayBound::UNBOUNDED, Price::unit())
    }
}

/// The delay requirements that apply to a particular (message, subscription) pair.
///
/// Either side may leave its bound unspecified; the scheduler always works
/// with the *effective* deadline, which is the tighter of the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayRequirement {
    /// Delay bound attached to the message by its publisher, if any (PSD).
    pub publisher_bound: Option<DelayBound>,
    /// Delay bound attached to the subscription by its subscriber, if any (SSD).
    pub subscriber_bound: Option<DelayBound>,
}

impl DelayRequirement {
    /// A requirement where neither side specified a bound.
    pub const NONE: DelayRequirement = DelayRequirement {
        publisher_bound: None,
        subscriber_bound: None,
    };

    /// Creates a PSD-style requirement (publisher bound only).
    pub fn publisher(bound: DelayBound) -> Self {
        DelayRequirement {
            publisher_bound: Some(bound),
            subscriber_bound: None,
        }
    }

    /// Creates a SSD-style requirement (subscriber bound only).
    pub fn subscriber(bound: DelayBound) -> Self {
        DelayRequirement {
            publisher_bound: None,
            subscriber_bound: Some(bound),
        }
    }

    /// Creates a combined requirement with both bounds.
    pub fn both(publisher: DelayBound, subscriber: DelayBound) -> Self {
        DelayRequirement {
            publisher_bound: Some(publisher),
            subscriber_bound: Some(subscriber),
        }
    }

    /// The effective allowed delay: the tighter of the specified bounds, or
    /// `None` when neither side specified one (best-effort delivery).
    pub fn effective_bound(&self) -> Option<DelayBound> {
        match (self.publisher_bound, self.subscriber_bound) {
            (Some(p), Some(s)) => Some(DelayBound(p.0.min(s.0))),
            (Some(p), None) => Some(p),
            (None, Some(s)) => Some(s),
            (None, None) => None,
        }
    }

    /// The effective allowed delay as a duration, treating "unspecified" as unbounded.
    pub fn effective_deadline(&self) -> Duration {
        self.effective_bound()
            .map(DelayBound::duration)
            .unwrap_or(Duration::MAX)
    }

    /// Returns true if any bound was specified.
    pub fn is_bounded(&self) -> bool {
        self.effective_bound().is_some()
    }
}

/// The scenario-level QoS profile used when generating workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QosProfile {
    /// Publisher-specified delay: every message carries a bound, subscriptions do not.
    PublisherSpecified,
    /// Subscriber-specified delay: every subscription carries a bound and a price.
    SubscriberSpecified,
    /// Both sides specify bounds (paper's "easily extended" combined case).
    Combined,
    /// No delay bounds at all (plain best-effort pub/sub).
    BestEffort,
}

impl QosProfile {
    /// Whether messages should carry a publisher delay bound under this profile.
    pub fn publisher_bounded(self) -> bool {
        matches!(self, QosProfile::PublisherSpecified | QosProfile::Combined)
    }

    /// Whether subscriptions should carry a delay bound (and price) under this profile.
    pub fn subscriber_bounded(self) -> bool {
        matches!(self, QosProfile::SubscriberSpecified | QosProfile::Combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tiers_match_section_6_1() {
        let tiers = QosClass::paper_tiers();
        assert_eq!(tiers[0].delay.duration(), Duration::from_secs(10));
        assert_eq!(tiers[0].price, Price::from_units(3));
        assert_eq!(tiers[2].delay.duration(), Duration::from_secs(60));
        assert_eq!(tiers[2].price, Price::from_units(1));
    }

    #[test]
    fn effective_bound_takes_the_tighter_one() {
        let req = DelayRequirement::both(DelayBound::from_secs(30), DelayBound::from_secs(10));
        assert_eq!(
            req.effective_bound().unwrap().duration(),
            Duration::from_secs(10)
        );
        assert_eq!(req.effective_deadline(), Duration::from_secs(10));
        assert!(req.is_bounded());
    }

    #[test]
    fn single_sided_requirements() {
        let psd = DelayRequirement::publisher(DelayBound::from_secs(20));
        assert_eq!(psd.effective_deadline(), Duration::from_secs(20));
        let ssd = DelayRequirement::subscriber(DelayBound::from_secs(60));
        assert_eq!(ssd.effective_deadline(), Duration::from_secs(60));
    }

    #[test]
    fn unspecified_is_unbounded() {
        assert_eq!(DelayRequirement::NONE.effective_deadline(), Duration::MAX);
        assert!(!DelayRequirement::NONE.is_bounded());
        assert_eq!(DelayBound::UNBOUNDED.duration(), Duration::MAX);
    }

    #[test]
    fn profile_flags() {
        assert!(QosProfile::PublisherSpecified.publisher_bounded());
        assert!(!QosProfile::PublisherSpecified.subscriber_bounded());
        assert!(QosProfile::SubscriberSpecified.subscriber_bounded());
        assert!(QosProfile::Combined.publisher_bounded());
        assert!(QosProfile::Combined.subscriber_bounded());
        assert!(!QosProfile::BestEffort.publisher_bounded());
    }

    #[test]
    fn best_effort_class() {
        let c = QosClass::best_effort();
        assert_eq!(c.delay, DelayBound::UNBOUNDED);
        assert_eq!(c.price, Price::unit());
    }
}
