//! The common error type of the BDPS workspace.

use std::fmt;

/// Convenient result alias using [`BdpsError`].
pub type Result<T> = std::result::Result<T, BdpsError>;

/// Errors produced by the BDPS crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BdpsError {
    /// A filter expression could not be parsed. Carries a human-readable reason.
    FilterParse(String),
    /// A filter referenced an attribute with an incompatible value type.
    TypeMismatch {
        /// The attribute name involved.
        attribute: String,
        /// Description of the expected/found types.
        detail: String,
    },
    /// A topology was structurally invalid (disconnected, self-loop, ...).
    InvalidTopology(String),
    /// A route lookup failed because the destination is unreachable.
    Unreachable {
        /// Origin broker (raw id).
        from: u32,
        /// Destination broker (raw id).
        to: u32,
    },
    /// A configuration value was out of range or inconsistent.
    InvalidConfig(String),
    /// An entity id was unknown in the current context.
    UnknownEntity(String),
    /// A simulation invariant was violated (indicates a bug).
    Internal(String),
}

impl fmt::Display for BdpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BdpsError::FilterParse(msg) => write!(f, "filter parse error: {msg}"),
            BdpsError::TypeMismatch { attribute, detail } => {
                write!(f, "type mismatch on attribute '{attribute}': {detail}")
            }
            BdpsError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            BdpsError::Unreachable { from, to } => {
                write!(f, "broker B{to} is unreachable from B{from}")
            }
            BdpsError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BdpsError::UnknownEntity(msg) => write!(f, "unknown entity: {msg}"),
            BdpsError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for BdpsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            BdpsError::FilterParse("unexpected token".into()).to_string(),
            "filter parse error: unexpected token"
        );
        assert_eq!(
            BdpsError::Unreachable { from: 1, to: 9 }.to_string(),
            "broker B9 is unreachable from B1"
        );
        assert!(BdpsError::InvalidTopology("x".into())
            .to_string()
            .contains("invalid topology"));
        assert!(BdpsError::TypeMismatch {
            attribute: "A1".into(),
            detail: "expected number".into()
        }
        .to_string()
        .contains("A1"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&BdpsError::Internal("boom".into()));
    }

    #[test]
    fn result_alias_works() {
        fn ok() -> Result<u32> {
            Ok(3)
        }
        assert_eq!(ok().unwrap(), 3);
    }
}
