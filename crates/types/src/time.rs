//! Deterministic simulated time.
//!
//! The discrete-event simulator needs a totally ordered, hashable notion of
//! time with exact arithmetic; floating point is unsuitable because ties and
//! accumulated rounding would make runs non-reproducible. Time is therefore
//! kept as an integer number of **microseconds** since the start of the
//! simulation. One microsecond of resolution is three orders of magnitude
//! below the smallest constant of the paper's model (the 2 ms per-broker
//! processing delay), so no modelled quantity is quantized noticeably.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in a millisecond.
const MICROS_PER_MS: u64 = 1_000;
/// Number of microseconds in a second.
const MICROS_PER_SEC: u64 = 1_000_000;

/// A span of simulated time (non-negative), stored in microseconds.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration; used as an "effectively infinite" deadline.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * MICROS_PER_MS)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional milliseconds, rounding to the nearest microsecond.
    ///
    /// Negative and non-finite inputs saturate to zero: the model only ever
    /// produces non-negative delays and this keeps sampling code panic-free.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms.is_nan() || ms <= 0.0 {
            return Duration::ZERO;
        }
        if ms.is_infinite() {
            return Duration::MAX;
        }
        let micros = (ms * MICROS_PER_MS as f64).round();
        if micros >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration(micros as u64)
        }
    }

    /// Creates a duration from fractional seconds, rounding to the nearest microsecond.
    pub fn from_secs_f64(secs: f64) -> Self {
        Self::from_millis_f64(secs * 1_000.0)
    }

    /// Returns the duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MS as f64
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Saturating subtraction: returns zero if `other` is longer than `self`.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Checked addition, returning `None` on overflow.
    pub fn checked_add(self, other: Duration) -> Option<Duration> {
        self.0.checked_add(other.0).map(Duration)
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative scalar, saturating on overflow.
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration::from_millis_f64(self.as_millis_f64() * factor)
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

/// An absolute instant of simulated time (microseconds since simulation start).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from whole milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MICROS_PER_MS)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional seconds since the epoch.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime::ZERO + Duration::from_secs_f64(secs)
    }

    /// Returns the instant in whole microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional milliseconds since the epoch.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MS as f64
    }

    /// Returns the instant as fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the elapsed duration since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the remaining duration until `deadline`, or zero if the
    /// deadline has already passed.
    pub fn remaining_until(self, deadline: SimTime) -> Duration {
        deadline.duration_since(self)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Duration::from_millis(2).as_micros(), 2_000);
        assert_eq!(Duration::from_secs(10).as_millis_f64(), 10_000.0);
        assert_eq!(Duration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(Duration::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn negative_or_nan_saturates_to_zero() {
        assert_eq!(Duration::from_millis_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_millis_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_millis_f64(f64::INFINITY), Duration::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = Duration::from_millis(10);
        let b = Duration::from_millis(4);
        assert_eq!((a + b).as_micros(), 14_000);
        assert_eq!((a - b).as_micros(), 6_000);
        assert_eq!((b - a), Duration::ZERO);
        assert_eq!((a * 3).as_micros(), 30_000);
        assert_eq!((a / 2).as_micros(), 5_000);
        assert_eq!(a.mul_f64(0.5).as_micros(), 5_000);
    }

    #[test]
    fn simtime_arithmetic() {
        let t0 = SimTime::from_secs(5);
        let t1 = t0 + Duration::from_millis(250);
        assert_eq!(t1.as_millis_f64(), 5_250.0);
        assert_eq!(t1.duration_since(t0), Duration::from_millis(250));
        assert_eq!(t0.duration_since(t1), Duration::ZERO);
        assert_eq!(t1 - t0, Duration::from_millis(250));
        assert_eq!(t0.remaining_until(t1), Duration::from_millis(250));
    }

    #[test]
    fn ordering_is_total() {
        let times = [
            SimTime::from_millis(3),
            SimTime::from_millis(1),
            SimTime::from_millis(2),
        ];
        let mut sorted = times;
        sorted.sort();
        assert_eq!(
            sorted,
            [
                SimTime::from_millis(1),
                SimTime::from_millis(2),
                SimTime::from_millis(3)
            ]
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = (1..=4).map(Duration::from_millis).sum();
        assert_eq!(total, Duration::from_millis(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration::from_millis(1).to_string(), "1.000ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_secs(3).to_string(), "t=3.000s");
    }

    #[test]
    fn min_max_helpers() {
        let a = Duration::from_millis(1);
        let b = Duration::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
