//! Attribute names and values carried in message heads.
//!
//! The paper's workload publishes messages whose head is a set of
//! `attribute = value` pairs (e.g. `{A1 = 3.7, A2 = 8.1}`) and subscriptions
//! are predicates over those attributes (e.g. `A1 < 5 ∧ A2 < 2`). The value
//! model supports the numeric attributes used in the evaluation plus strings
//! and booleans so the filter language is useful for realistic applications
//! (stock symbols, road names, severity flags, ...).

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;

/// The name of a message-head attribute.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrName(String);

impl AttrName {
    /// Creates an attribute name.
    pub fn new(name: impl Into<String>) -> Self {
        AttrName(name.into())
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName(s.to_owned())
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName(s)
    }
}

impl Borrow<str> for AttrName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// A value of a message-head attribute.
///
/// Numeric values are comparable across `Int`/`Float` (an integer is promoted
/// to a double before comparison). Strings compare lexicographically and
/// booleans only support equality-style comparison; cross-type comparison
/// returns `None`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AttrValue {
    /// 64-bit floating point value (the paper's evaluation uses doubles).
    Float(f64),
    /// 64-bit signed integer value.
    Int(i64),
    /// UTF-8 string value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl AttrValue {
    /// Returns the value as a double if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Float(v) => Some(*v),
            AttrValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a boolean if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns true if the value is numeric (`Float` or `Int`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, AttrValue::Float(_) | AttrValue::Int(_))
    }

    /// Compares two values, returning `None` when the types are not comparable
    /// (e.g. a string against a number) or when a float comparison involves a NaN.
    pub fn partial_cmp_value(&self, other: &AttrValue) -> Option<Ordering> {
        use AttrValue::*;
        match (self, other) {
            (Float(_) | Int(_), Float(_) | Int(_)) => {
                let a = self.as_f64().expect("numeric");
                let b = other.as_f64().expect("numeric");
                a.partial_cmp(&b)
            }
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Returns true when the two values are equal under the comparison rules
    /// of [`partial_cmp_value`](Self::partial_cmp_value).
    pub fn value_eq(&self, other: &AttrValue) -> bool {
        self.partial_cmp_value(other) == Some(Ordering::Equal)
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Float(_) => "float",
            AttrValue::Int(_) => "int",
            AttrValue::Str(_) => "string",
            AttrValue::Bool(_) => "bool",
        }
    }
}

impl PartialEq for AttrValue {
    fn eq(&self, other: &Self) -> bool {
        self.value_eq(other)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "\"{s}\""),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparison_promotes_ints() {
        let a = AttrValue::Int(3);
        let b = AttrValue::Float(3.0);
        assert_eq!(a.partial_cmp_value(&b), Some(Ordering::Equal));
        assert!(a.value_eq(&b));
        let c = AttrValue::Float(3.5);
        assert_eq!(a.partial_cmp_value(&c), Some(Ordering::Less));
    }

    #[test]
    fn cross_type_comparison_is_none() {
        let a = AttrValue::Int(3);
        let b = AttrValue::Str("3".into());
        assert_eq!(a.partial_cmp_value(&b), None);
        assert!(!a.value_eq(&b));
    }

    #[test]
    fn nan_comparison_is_none() {
        let a = AttrValue::Float(f64::NAN);
        let b = AttrValue::Float(1.0);
        assert_eq!(a.partial_cmp_value(&b), None);
    }

    #[test]
    fn string_and_bool_compare() {
        assert_eq!(
            AttrValue::from("abc").partial_cmp_value(&AttrValue::from("abd")),
            Some(Ordering::Less)
        );
        assert!(AttrValue::from(true).value_eq(&AttrValue::Bool(true)));
    }

    #[test]
    fn accessors() {
        assert_eq!(AttrValue::Int(7).as_f64(), Some(7.0));
        assert_eq!(AttrValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from(true).as_bool(), Some(true));
        assert!(AttrValue::Int(1).is_numeric());
        assert!(!AttrValue::from("x").is_numeric());
    }

    #[test]
    fn display() {
        assert_eq!(AttrValue::Float(1.5).to_string(), "1.5");
        assert_eq!(AttrValue::from("hi").to_string(), "\"hi\"");
        assert_eq!(AttrName::new("A1").to_string(), "A1");
    }

    #[test]
    fn type_names() {
        assert_eq!(AttrValue::Int(1).type_name(), "int");
        assert_eq!(AttrValue::Float(1.0).type_name(), "float");
        assert_eq!(AttrValue::from("s").type_name(), "string");
        assert_eq!(AttrValue::Bool(false).type_name(), "bool");
    }
}
